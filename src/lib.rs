#![forbid(unsafe_code)]
//! # context-aware-compiling
//!
//! A from-scratch Rust reproduction of *"Suppressing Correlated Noise
//! in Quantum Computers via Context-Aware Compiling"* (ISCA 2024):
//! a compiler that suppresses correlated coherent errors on
//! fixed-frequency superconducting devices through context-aware
//! dynamical decoupling (graph-colored Walsh sequences, Algorithm 1)
//! and context-aware error compensation (zero-overhead absorption of
//! known Z/ZZ phases, Algorithm 2), together with every substrate the
//! evaluation needs: circuit IR, device models, a physics-faithful
//! noisy simulator, analysis tooling, and the experiment drivers that
//! regenerate each figure and table of the paper.
//!
//! ## Quick start
//!
//! ```
//! use context_aware_compiling::prelude::*;
//!
//! // A 4-qubit device with always-on ZZ crosstalk.
//! let device = uniform_device(Topology::line(4), 80.0);
//!
//! // A circuit with a jointly idle pair next to a repeated ECR.
//! let mut qc = Circuit::new(4, 0);
//! qc.h(2).h(3);
//! qc.ecr(0, 1).ecr(0, 1);
//! qc.h(2).h(3);
//!
//! // Compile with context-aware dynamical decoupling and simulate.
//! let compiled = compile(&qc, &device, &CompileOptions::untwirled(Strategy::CaDd, 7)).unwrap();
//! let sim = Simulator::with_config(device, NoiseConfig::coherent_only());
//! let z = sim.expect_pauli(&compiled, &PauliString::parse("IIZI").unwrap(), 1, 7).unwrap();
//! assert!(z > 0.99);
//! ```
//!
//! The crates are re-exported under their short names; see DESIGN.md
//! for the architecture and EXPERIMENTS.md for the paper-vs-measured
//! record.

pub use ca_circuit as circuit;
pub use ca_core as core;
pub use ca_device as device;
pub use ca_experiments as experiments;
pub use ca_metrics as metrics;
pub use ca_mitigation as mitigation;
pub use ca_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use ca_circuit::{
        schedule_asap, stratify, Circuit, Gate, GateDurations, Pauli, PauliString, ScheduledCircuit,
    };
    pub use ca_core::{
        ca_dd, ca_ec, compile, pauli_twirl, CaDdConfig, CaEcConfig, CompileOptions, Context,
        PassManager, Strategy,
    };
    pub use ca_device::{
        eagle_like, nazca_like, uniform_device, Calibration, Device, NoiseProfile, Topology,
    };
    pub use ca_experiments::{Budget, Figure, Series};
    pub use ca_metrics::{fit_decay, gamma_from_layer_fidelity, DecayFit};
    pub use ca_sim::{
        BatchedFrameEngine, Engine, NoiseConfig, RunResult, SimEngine, SimError, Simulator,
        StabilizerEngine, State, Tableau,
    };
}

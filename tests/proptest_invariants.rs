//! Property-based tests on the core data structures and compiler
//! invariants.

use ca_circuit::canonical::fragment_unitary;
use ca_circuit::euler::{compose_1q, zsxzsxz_angles, zsxzsxz_sequence};
use ca_circuit::{schedule_asap, stratify, Circuit, Gate, GateDurations, PauliString};
use ca_core::{ca_dd, ca_ec, pauli_twirl, CaDdConfig, CaEcConfig};
use ca_device::{uniform_device, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_1q_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::H),
        Just(Gate::S),
        Just(Gate::Sx),
        (-3.0f64..3.0).prop_map(Gate::Rz),
        (-3.0f64..3.0).prop_map(Gate::Rx),
        ((-3.0f64..3.0), (-3.0f64..3.0), (-3.0f64..3.0)).prop_map(|(theta, phi, lam)| Gate::U {
            theta,
            phi,
            lam
        }),
    ]
}

/// A random small circuit on `n` qubits with 1q gates, ECRs, delays.
fn arb_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    let instr = prop_oneof![
        (arb_1q_gate(), 0..n).prop_map(|(g, q)| (g, q, usize::MAX)),
        (0..n.saturating_sub(1)).prop_map(|q| (Gate::Ecr, q, q + 1)),
        ((200.0f64..2000.0), 0..n).prop_map(|(d, q)| (Gate::Delay(d), q, usize::MAX)),
    ];
    proptest::collection::vec(instr, 1..24).prop_map(move |items| {
        let mut qc = Circuit::new(n, 0);
        for (g, a, b) in items {
            if b == usize::MAX {
                qc.append(g, [a]);
            } else {
                qc.append(g, [a, b]);
            }
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn euler_decomposition_roundtrips(theta in 0.0f64..std::f64::consts::PI,
                                      phi in -6.3f64..6.3,
                                      lam in -6.3f64..6.3) {
        let u = Gate::U { theta, phi, lam }.matrix1().unwrap();
        let rebuilt = compose_1q(&zsxzsxz_sequence(zsxzsxz_angles(&u)));
        prop_assert!(rebuilt.approx_eq_up_to_phase(&u, 1e-8));
    }

    #[test]
    fn canonical_three_cnot_is_exact(a in -3.0f64..3.0, b in -3.0f64..3.0, c in -3.0f64..3.0) {
        let target = ca_circuit::gate::canonical_matrix(a, b, c);
        let circ = ca_circuit::canonical::can_to_cx(a, b, c, 0, 1);
        let built = fragment_unitary(&circ, 0, 1);
        prop_assert!(built.approx_eq_up_to_phase(&target, 1e-8));
    }

    #[test]
    fn pauli_string_product_is_involutive(s in proptest::collection::vec(0usize..4, 1..8)) {
        let p = PauliString::new(s.iter().map(|&i| ca_circuit::Pauli::from_index(i)).collect());
        let sq = p.mul(&p);
        prop_assert!(sq.is_identity());
        prop_assert_eq!(sq.sign, 1);
    }

    #[test]
    fn stratify_preserves_instruction_count(qc in arb_circuit(4)) {
        let layered = stratify(&qc);
        let back = layered.to_circuit(false);
        let gates = |c: &Circuit| c.instructions.iter().filter(|i| i.gate != Gate::Barrier).count();
        prop_assert_eq!(gates(&qc), gates(&back));
    }

    #[test]
    fn schedule_is_causal_and_packed(qc in arb_circuit(4)) {
        let sc = schedule_asap(&qc, GateDurations::default());
        // Every item within span; per-qubit items non-overlapping.
        for item in &sc.items {
            prop_assert!(item.t0 >= 0.0);
            prop_assert!(item.t1() <= sc.duration + 1e-9);
        }
        for q in 0..4 {
            let mut busy: Vec<(f64, f64)> = sc.items.iter()
                .filter(|si| si.instruction.acts_on(q) && si.duration > 0.0
                        && !matches!(si.instruction.gate, Gate::Barrier))
                .map(|si| (si.t0, si.t1())).collect();
            busy.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            for w in busy.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-9);
            }
        }
    }

    #[test]
    fn twirl_never_changes_the_layer_structure(seed in 0u64..500) {
        let mut qc = Circuit::new(4, 0);
        qc.h(0).ecr(0, 1).ecr(2, 3).sx(2).ecr(1, 2);
        let layered = stratify(&qc);
        let mut rng = StdRng::seed_from_u64(seed);
        let (twirled, _) = pauli_twirl(&layered, &mut rng);
        // Same number of two-qubit layers with identical gate supports.
        let supports = |l: &ca_circuit::LayeredCircuit| -> Vec<Vec<usize>> {
            l.layers.iter().filter(|x| x.kind == ca_circuit::LayerKind::TwoQubit)
                .map(|x| x.support()).collect()
        };
        prop_assert_eq!(supports(&layered), supports(&twirled));
    }

    #[test]
    fn ca_dd_only_adds_x_pulses(qc in arb_circuit(4), zz in 20.0f64..120.0) {
        let device = uniform_device(Topology::line(4), zz);
        let sc = schedule_asap(&qc, device.durations());
        let out = ca_dd(&sc, &device, CaDdConfig::default());
        // Original items unchanged, same total duration.
        for si in &sc.items {
            prop_assert!(out.items.iter().any(|o| o.instruction == si.instruction
                && (o.t0 - si.t0).abs() < 1e-9));
        }
        prop_assert!((out.duration - sc.duration).abs() < 1e-9);
        // Everything added is an X pulse.
        prop_assert_eq!(
            out.items.len() - sc.items.len(),
            out.items.iter().filter(|si| si.instruction.gate == Gate::X).count()
                - sc.items.iter().filter(|si| si.instruction.gate == Gate::X).count()
        );
        // Pulses per qubit are even (frames restored).
        for q in 0..4 {
            let added = out.items.iter().filter(|si| si.instruction.gate == Gate::X
                && si.instruction.acts_on(q)).count()
                - sc.items.iter().filter(|si| si.instruction.gate == Gate::X
                && si.instruction.acts_on(q)).count();
            prop_assert_eq!(added % 2, 0, "odd pulse count on qubit {}", q);
        }
    }

    #[test]
    fn ca_ec_is_identity_on_zero_crosstalk(qc in arb_circuit(4)) {
        let device = uniform_device(Topology::line(4), 0.0);
        let layered = stratify(&qc);
        let (out, report) = ca_ec(&layered, &device, CaEcConfig::default());
        prop_assert_eq!(report, ca_core::CaEcReport::default());
        prop_assert_eq!(out.to_circuit(false), layered.to_circuit(false));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feed_forward_waits_for_the_measurement(qc in arb_circuit(4),
                                              mq in 0..4usize,
                                              tq in 0..4usize) {
        // Append measure → conditional to an arbitrary prefix: the
        // conditional must start no earlier than the measurement's
        // end plus the feed-forward latency.
        let mut dynamic = Circuit::new(4, 1);
        for instr in &qc.instructions {
            dynamic.push(instr.clone());
        }
        dynamic.measure(mq, 0);
        dynamic.gate_if(Gate::X, [tq], 0, true);
        let d = GateDurations::default();
        let sc = schedule_asap(&dynamic, d);
        let measure_end = sc.items.iter()
            .filter(|si| si.instruction.gate == Gate::Measure)
            .map(|si| si.t1())
            .fold(0.0, f64::max);
        let cond = sc.items.iter()
            .find(|si| si.instruction.condition.is_some())
            .expect("conditional scheduled");
        prop_assert!(
            cond.t0 + 1e-9 >= measure_end + d.feedforward,
            "conditional at {} before measurement end {} + feed-forward {}",
            cond.t0, measure_end, d.feedforward
        );
    }

    #[test]
    fn strict_clifford_class_is_contained_in_the_frame_class(qc in arb_circuit(4)) {
        // `clifford_supports` (the noise learner's fast-path gate) is
        // strictly stronger than `stabilizer_supports` (the engines'
        // own class: Clifford + diagonal rotations + feed-forward).
        let sc = schedule_asap(&qc, GateDurations::default());
        if ca_sim::clifford_supports(&sc) {
            prop_assert!(
                ca_sim::stabilizer_supports(&sc),
                "frame class must contain the strict Clifford class: {:?}", qc
            );
        }
    }
}

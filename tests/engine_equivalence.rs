//! Cross-backend equivalence: random Clifford circuits on ≤ 8 qubits
//! must give statistically matching outcome distributions on the
//! stabilizer and statevector engines — noiseless, and with
//! Pauli-twirled (depolarizing + readout) noise, where both engines
//! implement the *same* stochastic channels and should agree up to
//! shot noise.
//!
//! Coherent noise terms are intentionally excluded here: the dense
//! engine treats them exactly while the stabilizer engine applies
//! their Pauli twirl, so they agree in distribution only after twirl
//! averaging (covered by the targeted tests in `ca-sim`).

use context_aware_compiling::prelude::*;
use proptest::prelude::*;
// Explicit import so `Strategy` means proptest's trait (the compile
// Strategy enum is referenced by path below).
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_clifford_1q() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::H),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::Sx),
        (1..4usize).prop_map(|k| Gate::Rz(k as f64 * std::f64::consts::FRAC_PI_2)),
    ]
}

/// A random Clifford circuit on `n` qubits: 1q Cliffords, ECR/CX/CZ
/// on neighbouring pairs, delays, and a full measurement round.
fn arb_clifford_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    let instr = prop_oneof![
        (arb_clifford_1q(), 0..n).prop_map(|(g, q)| (g, q, usize::MAX)),
        (0..n - 1).prop_map(|q| (Gate::Ecr, q, q + 1)),
        (0..n - 1).prop_map(|q| (Gate::Cx, q, q + 1)),
        (0..n - 1).prop_map(|q| (Gate::Cz, q, q + 1)),
        ((300.0f64..1500.0), 0..n).prop_map(|(d, q)| (Gate::Delay(d), q, usize::MAX)),
    ];
    proptest::collection::vec(instr, 4..28).prop_map(move |items| {
        let mut qc = Circuit::new(n, n);
        for (g, a, b) in items {
            if b == usize::MAX {
                qc.append(g, [a]);
            } else {
                qc.append(g, [a, b]);
            }
        }
        for q in 0..n {
            qc.measure(q, q);
        }
        qc
    })
}

/// Total variation distance between two outcome distributions.
fn tvd(a: &RunResult, b: &RunResult) -> f64 {
    let keys: std::collections::BTreeSet<u64> =
        a.counts.keys().chain(b.counts.keys()).copied().collect();
    keys.iter()
        .map(|k| (a.probability(*k) - b.probability(*k)).abs())
        .sum::<f64>()
        / 2.0
}

fn run_both(qc: &Circuit, noise: NoiseConfig, shots: usize, seed: u64) -> (RunResult, RunResult) {
    let device = uniform_device(Topology::line(qc.num_qubits), 0.0);
    let sc = schedule_asap(qc, GateDurations::default());
    let dense = Simulator::with_engine(device.clone(), noise, Engine::Statevector);
    let stab = Simulator::with_engine(device, noise, Engine::Stabilizer);
    (
        dense.run_counts(&sc, shots, seed),
        stab.run_counts(&sc, shots, seed + 1),
    )
}

/// Expected TVD between two empirical distributions of `shots`
/// samples each is bounded by ~√(K/shots); this threshold gives wide
/// margin while still catching real disagreements.
fn tvd_threshold(shots: usize, outcomes: usize) -> f64 {
    2.5 * ((outcomes.max(2) as f64) / shots as f64).sqrt() + 0.02
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn noiseless_distributions_match(qc in arb_clifford_circuit(5), case_seed in 0u64..1000) {
        let shots = 1200;
        let (d, s) = run_both(&qc, NoiseConfig::ideal(), shots, 31 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noiseless TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }

    #[test]
    fn pauli_noise_distributions_match(qc in arb_clifford_circuit(4), case_seed in 0u64..1000) {
        // Depolarizing gate error + readout error: both engines
        // implement identical stochastic channels.
        let noise = NoiseConfig {
            gate_error: true,
            readout_error: true,
            ..NoiseConfig::ideal()
        };
        let shots = 1500;
        let (d, s) = run_both(&qc, noise, shots, 7 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noisy TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }
}

#[test]
fn expectations_match_on_random_clifford_circuits() {
    // Noiseless expectation values are exact on both engines: the
    // stabilizer result must equal the dense result to numerical
    // precision on every random circuit.
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..25 {
        let n = 2 + (trial % 5);
        let mut qc = Circuit::new(n, 0);
        for _ in 0..18 {
            match rng.random_range(0..3usize) {
                0 => {
                    let g =
                        [Gate::H, Gate::S, Gate::Sx, Gate::X, Gate::Y][rng.random_range(0..5usize)];
                    qc.append(g, [rng.random_range(0..n)]);
                }
                1 => {
                    if n >= 2 {
                        let a = rng.random_range(0..n - 1);
                        qc.ecr(a, a + 1);
                    }
                }
                _ => {
                    let a = rng.random_range(0..n);
                    qc.delay(500.0, a);
                }
            }
        }
        let sc = schedule_asap(&qc, GateDurations::default());
        let device = uniform_device(Topology::line(n), 0.0);
        let dense =
            Simulator::with_engine(device.clone(), NoiseConfig::ideal(), Engine::Statevector);
        let stab = Simulator::with_engine(device, NoiseConfig::ideal(), Engine::Stabilizer);
        for _ in 0..4 {
            let p = PauliString::new(
                (0..n)
                    .map(|_| ca_circuit::Pauli::from_index(rng.random_range(0..4usize)))
                    .collect(),
            );
            let ed = dense.expect_pauli(&sc, &p, 1, 5);
            let es = stab.expect_pauli(&sc, &p, 8, 5);
            assert!(
                (ed - es).abs() < 1e-9,
                "trial {trial}: ⟨{p}⟩ dense {ed} vs stabilizer {es} for {qc:?}"
            );
        }
    }
}

#[test]
fn twirled_compilation_agrees_across_engines() {
    // A twirled, DD-compiled Clifford workload: the full compile
    // pipeline output must stay Clifford and both engines must agree
    // on the ideal-noise distribution.
    let device = uniform_device(Topology::line(5), 40.0);
    let mut qc = Circuit::new(5, 5);
    qc.h(0).ecr(0, 1).ecr(2, 3).sx(4);
    qc.barrier(Vec::<usize>::new());
    qc.ecr(1, 2).ecr(3, 4);
    for q in 0..5 {
        qc.measure(q, q);
    }
    let sc = compile(
        &qc,
        &device,
        &CompileOptions::new(ca_core::Strategy::CaDd, 13),
    );
    assert!(
        ca_sim::stabilizer_supports(&sc),
        "compiled circuit stays Clifford"
    );
    let dense = Simulator::with_engine(device.clone(), NoiseConfig::ideal(), Engine::Statevector);
    let stab = Simulator::with_engine(device, NoiseConfig::ideal(), Engine::Stabilizer);
    let shots = 1500;
    let d = dense.run_counts(&sc, shots, 3);
    let s = stab.run_counts(&sc, shots, 4);
    let outcomes = d.counts.len().max(s.counts.len());
    let t = tvd(&d, &s);
    assert!(
        t < tvd_threshold(shots, outcomes),
        "TVD {t:.4} with {outcomes} outcomes"
    );
}

//! Cross-backend equivalence: random Clifford circuits on ≤ 8 qubits
//! must give statistically matching outcome distributions on the
//! stabilizer and statevector engines — noiseless, and with
//! Pauli-twirled (depolarizing + readout) noise, where both engines
//! implement the *same* stochastic channels and should agree up to
//! shot noise.
//!
//! The batched frame engine is held to a much stronger standard: for
//! any seed, shot count, and worker-thread count its counts must be
//! **bit-identical** to the serial stabilizer engine's (both paths
//! seed shot `i`'s RNG from the seed and `i` alone and make the same
//! draws in the same order).
//!
//! Coherent noise terms are intentionally excluded from the
//! dense-vs-stabilizer statistical checks: the dense engine treats
//! them exactly while the stabilizer engine applies their Pauli
//! twirl, so they agree in distribution only after twirl averaging
//! (covered by the targeted tests in `ca-sim`). The batch-vs-serial
//! checks run with *every* channel enabled — the two frame paths
//! implement the identical model.

use context_aware_compiling::prelude::*;
use proptest::prelude::*;
// Explicit import so `Strategy` means proptest's trait (the compile
// Strategy enum is referenced by path below).
use ca_sim::{BatchedFrameEngine, InsertionSet, PauliInsertion};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_clifford_1q() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::H),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::Sx),
        (1..4usize).prop_map(|k| Gate::Rz(k as f64 * std::f64::consts::FRAC_PI_2)),
    ]
}

/// A random Clifford circuit on `n` qubits: 1q Cliffords, ECR/CX/CZ
/// on neighbouring pairs, delays, and a full measurement round.
fn arb_clifford_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    let instr = prop_oneof![
        (arb_clifford_1q(), 0..n).prop_map(|(g, q)| (g, q, usize::MAX)),
        (0..n - 1).prop_map(|q| (Gate::Ecr, q, q + 1)),
        (0..n - 1).prop_map(|q| (Gate::Cx, q, q + 1)),
        (0..n - 1).prop_map(|q| (Gate::Cz, q, q + 1)),
        ((300.0f64..1500.0), 0..n).prop_map(|(d, q)| (Gate::Delay(d), q, usize::MAX)),
    ];
    proptest::collection::vec(instr, 4..28).prop_map(move |items| {
        let mut qc = Circuit::new(n, n);
        for (g, a, b) in items {
            if b == usize::MAX {
                qc.append(g, [a]);
            } else {
                qc.append(g, [a, b]);
            }
        }
        for q in 0..n {
            qc.measure(q, q);
        }
        qc
    })
}

/// Total variation distance between two outcome distributions.
fn tvd(a: &RunResult, b: &RunResult) -> f64 {
    let keys: std::collections::BTreeSet<u64> =
        a.counts.keys().chain(b.counts.keys()).copied().collect();
    keys.iter()
        .map(|k| (a.probability(*k) - b.probability(*k)).abs())
        .sum::<f64>()
        / 2.0
}

fn run_both(qc: &Circuit, noise: NoiseConfig, shots: usize, seed: u64) -> (RunResult, RunResult) {
    let device = uniform_device(Topology::line(qc.num_qubits), 0.0);
    let sc = schedule_asap(qc, GateDurations::default());
    let dense = Simulator::with_engine(device.clone(), noise, Engine::Statevector);
    let stab = Simulator::with_engine(device, noise, Engine::Stabilizer);
    (
        dense.run_counts(&sc, shots, seed).unwrap(),
        stab.run_counts(&sc, shots, seed + 1).unwrap(),
    )
}

/// A noisy simulator with every stochastic channel lit up, for the
/// bit-identity checks between the two frame engines.
fn noisy_frame_sim(n: usize) -> Simulator {
    let mut dev = uniform_device(Topology::line(n), 55.0);
    for q in 0..n {
        dev.calibration.qubits[q].quasistatic_khz = 25.0;
        dev.calibration.qubits[q].charge_parity_khz = 4.0;
        dev.calibration.qubits[q].t1_us = 70.0;
        dev.calibration.qubits[q].t2_us = 80.0;
        dev.calibration.qubits[q].readout_err = 0.02;
        dev.calibration.qubits[q].gate_err_1q = 0.003;
    }
    Simulator::with_config(dev, NoiseConfig::default())
}

/// Expected TVD between two empirical distributions of `shots`
/// samples each is bounded by ~√(K/shots); this threshold gives wide
/// margin while still catching real disagreements.
fn tvd_threshold(shots: usize, outcomes: usize) -> f64 {
    2.5 * ((outcomes.max(2) as f64) / shots as f64).sqrt() + 0.02
}

/// A deterministic pseudo-random PEC-style insertion set: Paulis on
/// arbitrary qubits anchored at arbitrary unitary items, spread over
/// the shot range.
fn random_insertions(sc: &ScheduledCircuit, shots: usize, count: usize, seed: u64) -> InsertionSet {
    let unitary_items: Vec<usize> = sc
        .items
        .iter()
        .enumerate()
        .filter(|(_, si)| si.instruction.gate.is_unitary())
        .map(|(i, _)| i)
        .collect();
    assert!(!unitary_items.is_empty(), "workload has unitary gates");
    let mut rng = StdRng::seed_from_u64(seed);
    let list: Vec<PauliInsertion> = (0..count)
        .map(|_| PauliInsertion {
            shot: rng.random_range(0..shots),
            item: unitary_items[rng.random_range(0..unitary_items.len())],
            qubit: rng.random_range(0..sc.num_qubits),
            pauli: ca_circuit::Pauli::from_index(rng.random_range(1..4usize)),
        })
        .collect();
    InsertionSet::build(sc, &list).expect("valid insertions")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn noiseless_distributions_match(qc in arb_clifford_circuit(5), case_seed in 0u64..1000) {
        let shots = 1200;
        let (d, s) = run_both(&qc, NoiseConfig::ideal(), shots, 31 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noiseless TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }

    #[test]
    fn pauli_noise_distributions_match(qc in arb_clifford_circuit(4), case_seed in 0u64..1000) {
        // Depolarizing gate error + readout error: both engines
        // implement identical stochastic channels.
        let noise = NoiseConfig {
            gate_error: true,
            readout_error: true,
            ..NoiseConfig::ideal()
        };
        let shots = 1500;
        let (d, s) = run_both(&qc, noise, shots, 7 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noisy TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }

    #[test]
    fn pec_insertions_stay_bit_identical_on_random_circuits(
        qc in arb_clifford_circuit(5),
        // Odd shot counts on purpose: partial tail words must apply
        // each insertion to the right lane.
        shots in 1usize..150,
        seed in 0u64..1000,
    ) {
        let sim = noisy_frame_sim(qc.num_qubits);
        let sc = schedule_asap(&qc, GateDurations::default());
        let ins = random_insertions(&sc, shots, 1 + shots / 2, seed ^ 0xABCD);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let a = serial.run_counts_with_insertions(&sc, shots, seed, &ins).unwrap();
        let b = batch
            .run_counts_with_insertions(&sc, shots, seed, &ins, None)
            .unwrap();
        prop_assert_eq!(a, b, "shots {} seed {} for {:?}", shots, seed, qc);
    }

    #[test]
    fn batch_matches_serial_on_random_circuits_and_tail_shot_counts(
        qc in arb_clifford_circuit(5),
        // Deliberately not a multiple of 64 most of the time: the
        // final batch word runs a partial set of lanes and the unused
        // high lanes must never leak into counts (tail masking).
        shots in 1usize..200,
        seed in 0u64..1000,
    ) {
        let sim = noisy_frame_sim(qc.num_qubits);
        let sc = schedule_asap(&qc, GateDurations::default());
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let a = serial.run_counts(&sc, shots, seed).unwrap();
        let b = batch.run_counts(&sc, shots, seed).unwrap();
        prop_assert_eq!(a, b, "shots {} seed {} for {:?}", shots, seed, qc);
    }
}

#[test]
fn batch_and_serial_counts_are_bit_identical_with_full_noise() {
    // The acceptance-criterion check, at a shot count spanning
    // several batch words plus a partial tail word.
    let sim = noisy_frame_sim(6);
    let mut qc = Circuit::new(6, 6);
    for q in 0..6 {
        qc.h(q);
    }
    qc.ecr(0, 1).ecr(2, 3).ecr(4, 5);
    qc.x(1).delay(900.0, 0);
    qc.cx(1, 2).cz(3, 4);
    qc.reset(5);
    qc.h(5);
    for q in 0..6 {
        qc.measure(q, q);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let serial = StabilizerEngine::new(&sim);
    let batch = BatchedFrameEngine::new(&sim);
    for seed in [1u64, 42, 977] {
        let a = serial.run_counts(&sc, 1000, seed).unwrap();
        let b = batch.run_counts(&sc, 1000, seed).unwrap();
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a.shots, 1000);
    }
}

#[test]
fn batch_counts_and_expectations_identical_across_worker_counts() {
    let sim = noisy_frame_sim(5);
    let mut qc = Circuit::new(5, 5);
    for q in 0..5 {
        qc.h(q);
    }
    qc.ecr(0, 1).ecr(2, 3);
    qc.x(4).delay(600.0, 4).x(4);
    qc.ecr(1, 2).ecr(3, 4);
    for q in 0..5 {
        qc.measure(q, q);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let batch = BatchedFrameEngine::new(&sim);
    let counts1 = batch.run_counts_with_workers(&sc, 777, 5, Some(1)).unwrap();
    for workers in [2usize, 8] {
        let got = batch
            .run_counts_with_workers(&sc, 777, 5, Some(workers))
            .unwrap();
        assert_eq!(counts1, got, "counts differ at {workers} workers");
    }

    let mut open = qc.clone();
    open.instructions.retain(|i| i.gate != Gate::Measure);
    let sco = schedule_asap(&open, GateDurations::default());
    let obs = [
        PauliString::parse("ZZIII").unwrap(),
        PauliString::parse("IIXXI").unwrap(),
        PauliString::parse("IIIIZ").unwrap(),
    ];
    let e1 = batch
        .expect_paulis_with_workers(&sco, &obs, 777, 5, Some(1))
        .unwrap();
    for workers in [2usize, 8] {
        let got = batch
            .expect_paulis_with_workers(&sco, &obs, 777, 5, Some(workers))
            .unwrap();
        assert_eq!(e1, got, "expectations differ at {workers} workers");
    }
}

#[test]
fn pec_sampled_counts_identical_across_engines_and_worker_counts() {
    // The PEC execution path end to end: a noisy workload with a
    // dense per-shot insertion schedule must produce bit-identical
    // counts on the serial stabilizer engine and on the batch engine
    // at 1, 2, and 8 workers — including an odd shot count spanning
    // several partial batch words.
    let sim = noisy_frame_sim(6);
    let mut qc = Circuit::new(6, 6);
    for q in 0..6 {
        qc.h(q);
    }
    qc.ecr(0, 1).ecr(2, 3).ecr(4, 5);
    qc.x(1).delay(700.0, 0);
    qc.cx(1, 2).cz(3, 4);
    for q in 0..6 {
        qc.measure(q, q);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let serial = StabilizerEngine::new(&sim);
    let batch = BatchedFrameEngine::new(&sim);
    for (shots, seed) in [(333usize, 3u64), (1001, 41)] {
        let ins = random_insertions(&sc, shots, 2 * shots, seed);
        let reference = serial
            .run_counts_with_insertions(&sc, shots, seed, &ins)
            .unwrap();
        for workers in [1usize, 2, 8] {
            let got = batch
                .run_counts_with_insertions(&sc, shots, seed, &ins, Some(workers))
                .unwrap();
            assert_eq!(
                reference, got,
                "shots {shots} seed {seed} workers {workers}"
            );
        }
        // And the insertions really change the sampled distribution.
        let plain = serial.run_counts(&sc, shots, seed).unwrap();
        assert_ne!(reference, plain, "insertions must act");
    }
}

#[test]
fn pec_per_shot_flips_identical_across_engines_and_worker_counts() {
    let sim = noisy_frame_sim(5);
    let mut qc = Circuit::new(5, 0);
    for q in 0..5 {
        qc.h(q);
    }
    qc.ecr(0, 1).ecr(2, 3);
    qc.x(4).delay(500.0, 4).x(4);
    qc.ecr(1, 2).ecr(3, 4);
    let sc = schedule_asap(&qc, GateDurations::default());
    let obs = [
        PauliString::parse("XXIII").unwrap(),
        PauliString::parse("IIZZI").unwrap(),
        PauliString::parse("ZIIIZ").unwrap(),
    ];
    let shots = 200;
    let seed = 17;
    let ins = random_insertions(&sc, shots, shots, seed);
    let serial = StabilizerEngine::new(&sim);
    let batch = BatchedFrameEngine::new(&sim);
    let reference = serial.expect_flips(&sc, &obs, shots, seed, &ins).unwrap();
    for workers in [1usize, 2, 8] {
        let got = batch
            .expect_flips(&sc, &obs, shots, seed, &ins, Some(workers))
            .unwrap();
        assert_eq!(reference, got, "{workers} workers");
    }
    // The per-shot means agree with the aggregate expectation API.
    let means = batch
        .expect_paulis_with_insertions(&sc, &obs, shots, seed, &ins, None)
        .unwrap();
    for (o, m) in means.iter().enumerate() {
        assert_eq!(reference.mean(o), *m, "observable {o}");
    }
}

#[test]
fn expectations_match_on_random_clifford_circuits() {
    // Noiseless expectation values are exact on both engines: the
    // stabilizer result must equal the dense result to numerical
    // precision on every random circuit.
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..25 {
        let n = 2 + (trial % 5);
        let mut qc = Circuit::new(n, 0);
        for _ in 0..18 {
            match rng.random_range(0..3usize) {
                0 => {
                    let g =
                        [Gate::H, Gate::S, Gate::Sx, Gate::X, Gate::Y][rng.random_range(0..5usize)];
                    qc.append(g, [rng.random_range(0..n)]);
                }
                1 => {
                    if n >= 2 {
                        let a = rng.random_range(0..n - 1);
                        qc.ecr(a, a + 1);
                    }
                }
                _ => {
                    let a = rng.random_range(0..n);
                    qc.delay(500.0, a);
                }
            }
        }
        let sc = schedule_asap(&qc, GateDurations::default());
        let device = uniform_device(Topology::line(n), 0.0);
        let dense =
            Simulator::with_engine(device.clone(), NoiseConfig::ideal(), Engine::Statevector);
        let stab = Simulator::with_engine(device.clone(), NoiseConfig::ideal(), Engine::Stabilizer);
        let frames = Simulator::with_engine(device, NoiseConfig::ideal(), Engine::FrameBatch);
        for _ in 0..4 {
            let p = PauliString::new(
                (0..n)
                    .map(|_| ca_circuit::Pauli::from_index(rng.random_range(0..4usize)))
                    .collect(),
            );
            let ed = dense.expect_pauli(&sc, &p, 1, 5).unwrap();
            let es = stab.expect_pauli(&sc, &p, 8, 5).unwrap();
            let eb = frames.expect_pauli(&sc, &p, 8, 5).unwrap();
            assert!(
                (ed - es).abs() < 1e-9,
                "trial {trial}: ⟨{p}⟩ dense {ed} vs stabilizer {es} for {qc:?}"
            );
            assert_eq!(es, eb, "trial {trial}: serial vs batch ⟨{p}⟩");
        }
    }
}

#[test]
fn twirled_compilation_agrees_across_engines() {
    // A twirled, DD-compiled Clifford workload: the full compile
    // pipeline output must stay Clifford and both engines must agree
    // on the ideal-noise distribution.
    let device = uniform_device(Topology::line(5), 40.0);
    let mut qc = Circuit::new(5, 5);
    qc.h(0).ecr(0, 1).ecr(2, 3).sx(4);
    qc.barrier(Vec::<usize>::new());
    qc.ecr(1, 2).ecr(3, 4);
    for q in 0..5 {
        qc.measure(q, q);
    }
    let sc = compile(
        &qc,
        &device,
        &CompileOptions::new(ca_core::Strategy::CaDd, 13),
    )
    .unwrap();
    assert!(
        ca_sim::stabilizer_supports(&sc),
        "compiled circuit stays Clifford"
    );
    let dense = Simulator::with_engine(device.clone(), NoiseConfig::ideal(), Engine::Statevector);
    let stab = Simulator::with_engine(device, NoiseConfig::ideal(), Engine::Stabilizer);
    let shots = 1500;
    let d = dense.run_counts(&sc, shots, 3).unwrap();
    let s = stab.run_counts(&sc, shots, 4).unwrap();
    let outcomes = d.counts.len().max(s.counts.len());
    let t = tvd(&d, &s);
    assert!(
        t < tvd_threshold(shots, outcomes),
        "TVD {t:.4} with {outcomes} outcomes"
    );
}

#[test]
fn unsupported_circuits_error_instead_of_crashing() {
    // Three-qubit operand list: constructible in release builds and
    // through deserialization; every engine must refuse it with a
    // structured error.
    let device = uniform_device(Topology::line(3), 0.0);
    let mut qc = Circuit::new(3, 0);
    qc.push(ca_circuit::Instruction {
        gate: Gate::X,
        qubits: vec![0, 1, 2],
        clbit: None,
        condition: None,
        merged: false,
    });
    let sc = schedule_asap(&qc, GateDurations::default());
    for engine in [
        Engine::Auto,
        Engine::Statevector,
        Engine::Stabilizer,
        Engine::FrameBatch,
    ] {
        let sim = Simulator::with_engine(device.clone(), NoiseConfig::ideal(), engine);
        let err = sim.run_counts(&sc, 4, 1).unwrap_err();
        assert_eq!(
            err,
            ca_sim::SimError::UnsupportedGateArity {
                gate: "x",
                expected: 1,
                got: 3
            },
            "{engine:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Conditional-circuit equivalence: classical feed-forward on the frame
// engines. Dense-vs-stabilizer agreement is statistical (conditional
// Paulis are *exact* in the frame model, so noiseless and
// Pauli-channel distributions must match up to shot noise);
// serial-vs-batch stays bit-identical through measure / gate_if /
// reset interleavings at odd shot counts, tail lanes, and any worker
// count.
// ---------------------------------------------------------------------------

/// One instruction of a random dynamic (feed-forward) circuit.
#[derive(Clone, Debug)]
enum DynInstr {
    Gate1(Gate, usize),
    Gate2(Gate, usize),
    Delay(f64, usize),
    Measure(usize),
    Reset(usize),
    Cond(Gate, usize, usize, bool),
}

fn arb_dynamic_instr(n: usize) -> impl Strategy<Value = DynInstr> {
    prop_oneof![
        (arb_clifford_1q(), 0..n).prop_map(|(g, q)| DynInstr::Gate1(g, q)),
        (
            prop_oneof![Just(Gate::Ecr), Just(Gate::Cx), Just(Gate::Cz)],
            0..n - 1
        )
            .prop_map(|(g, q)| DynInstr::Gate2(g, q)),
        ((300.0f64..1500.0), 0..n).prop_map(|(d, q)| DynInstr::Delay(d, q)),
        (0..n).prop_map(DynInstr::Measure),
        (0..n).prop_map(DynInstr::Reset),
        (
            prop_oneof![Just(Gate::X), Just(Gate::Y), Just(Gate::Z)],
            0..n,
            0..n,
            0..2usize
        )
            .prop_map(|(g, q, c, v)| DynInstr::Cond(g, q, c, v == 1)),
    ]
}

/// A random Clifford circuit with interleaved mid-circuit
/// measurements, resets, and conditional Pauli gates, ending in a
/// full measurement round. Mid-circuit measurements write clbit = q,
/// so conditions read genuinely dynamic bits (or still-unwritten
/// ones — both paths must agree).
fn arb_dynamic_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_dynamic_instr(n), 6..30).prop_map(move |items| {
        let mut qc = Circuit::new(n, n);
        for it in items {
            match it {
                DynInstr::Gate1(g, q) => {
                    qc.append(g, [q]);
                }
                DynInstr::Gate2(g, q) => {
                    qc.append(g, [q, q + 1]);
                }
                DynInstr::Delay(d, q) => {
                    qc.append(Gate::Delay(d), [q]);
                }
                DynInstr::Measure(q) => {
                    qc.measure(q, q);
                }
                DynInstr::Reset(q) => {
                    qc.reset(q);
                }
                DynInstr::Cond(g, q, c, v) => {
                    qc.gate_if(g, [q], c, v);
                }
            }
        }
        for q in 0..n {
            qc.measure(q, q);
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dynamic_noiseless_distributions_match(qc in arb_dynamic_circuit(4), case_seed in 0u64..1000) {
        let shots = 1200;
        let (d, s) = run_both(&qc, NoiseConfig::ideal(), shots, 131 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noiseless dynamic TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }

    #[test]
    fn dynamic_pauli_noise_distributions_match(qc in arb_dynamic_circuit(4), case_seed in 0u64..1000) {
        // Depolarizing + readout: conditional gates read *recorded*
        // bits, so readout flips feed forward identically in both
        // engines' models.
        let noise = NoiseConfig {
            gate_error: true,
            readout_error: true,
            ..NoiseConfig::ideal()
        };
        let shots = 1500;
        let (d, s) = run_both(&qc, noise, shots, 17 + case_seed);
        let outcomes = d.counts.len().max(s.counts.len());
        let t = tvd(&d, &s);
        prop_assert!(
            t < tvd_threshold(shots, outcomes),
            "noisy dynamic TVD {t:.4} (outcomes {outcomes}) for {qc:?}"
        );
    }

    #[test]
    fn dynamic_batch_matches_serial_at_odd_shot_counts(
        qc in arb_dynamic_circuit(5),
        // Deliberately not a multiple of 64 most of the time: the
        // lane-masked conditional update must read exactly the tail
        // lanes' keys.
        shots in 1usize..200,
        seed in 0u64..1000,
    ) {
        let sim = noisy_frame_sim(qc.num_qubits);
        let sc = schedule_asap(&qc, GateDurations::default());
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let a = serial.run_counts(&sc, shots, seed).unwrap();
        let b = batch.run_counts(&sc, shots, seed).unwrap();
        prop_assert_eq!(a, b, "shots {} seed {} for {:?}", shots, seed, qc);
    }
}

#[test]
fn dynamic_counts_identical_across_worker_counts() {
    // A hand-built feed-forward workload under the full noise model:
    // 1, 2, and 8 workers must produce identical counts, and the
    // serial engine the same again.
    let sim = noisy_frame_sim(5);
    let mut qc = Circuit::new(5, 5);
    qc.h(0).cx(0, 1).cx(2, 3).h(2);
    qc.measure(1, 1).measure(2, 2);
    qc.gate_if(Gate::X, [4], 1, true);
    qc.gate_if(Gate::Z, [0], 2, true);
    qc.gate_if(Gate::Y, [3], 1, false);
    qc.gate_if(Gate::Rz(0.8), [4], 2, true);
    qc.reset(1);
    qc.h(1).ecr(3, 4);
    for q in 0..5 {
        qc.measure(q, q);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let serial = StabilizerEngine::new(&sim);
    let batch = BatchedFrameEngine::new(&sim);
    let reference = batch.run_counts_with_workers(&sc, 901, 5, Some(1)).unwrap();
    for workers in [2usize, 8] {
        let got = batch
            .run_counts_with_workers(&sc, 901, 5, Some(workers))
            .unwrap();
        assert_eq!(reference, got, "counts differ at {workers} workers");
    }
    assert_eq!(
        reference,
        serial.run_counts(&sc, 901, 5).unwrap(),
        "serial engine must agree bit-for-bit"
    );
}

#[test]
fn reset_equals_measure_plus_conditional_x() {
    // `Reset` is exactly measure + conditional-X in the frame model;
    // the sampled distributions over the surviving register must
    // agree (distinct RNG consumption, so the check is statistical).
    let masked = |r: &RunResult, mask: u64| -> RunResult {
        let mut counts = std::collections::BTreeMap::new();
        for (&k, &c) in &r.counts {
            *counts.entry(k & mask).or_insert(0) += c;
        }
        RunResult {
            shots: r.shots,
            num_clbits: r.num_clbits,
            counts,
        }
    };
    let device = uniform_device(Topology::line(2), 0.0);
    let sim = Simulator::with_engine(device, NoiseConfig::ideal(), Engine::Stabilizer);
    let shots = 4000;

    let mut native = Circuit::new(2, 3);
    native.h(0).cx(0, 1);
    native.reset(1);
    native.h(1).measure(0, 0).measure(1, 1);
    let sc = schedule_asap(&native, GateDurations::default());
    let a = sim.run_counts(&sc, shots, 3).unwrap();

    let mut expanded = Circuit::new(2, 3);
    expanded.h(0).cx(0, 1);
    expanded.measure(1, 2).gate_if(Gate::X, [1], 2, true);
    expanded.h(1).measure(0, 0).measure(1, 1);
    let sc = schedule_asap(&expanded, GateDurations::default());
    let b = sim.run_counts(&sc, shots, 4).unwrap();

    let t = tvd(&masked(&a, 0b11), &masked(&b, 0b11));
    assert!(
        t < tvd_threshold(shots, 4),
        "reset vs measure+cond-X TVD {t:.4}"
    );
}

/// Session/plan-cache identity: a cached rerun of a job must be
/// bit-identical to the cold compile *and* to the direct engine entry
/// points — counts and per-shot flips, at an odd shot count spanning
/// a partial tail word, for pinned worker counts 1/2/8. Runs with the
/// cache both enabled and disabled in CI via `CA_SIM_PLAN_CACHE`.
#[test]
fn session_cached_runs_are_bit_identical_to_cold_compiles() {
    use ca_sim::{InsertionSet, Job, JobOutput, Session};
    let sim = noisy_frame_sim(5);
    let mut qc = Circuit::new(5, 5);
    for q in 0..5 {
        qc.h(q);
    }
    qc.ecr(0, 1).ecr(2, 3);
    qc.delay(700.0, 4).x(4).delay(700.0, 4);
    qc.cx(1, 2);
    for q in 0..5 {
        qc.measure(q, q);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let shots = 201; // three batch words, partial tail
    let seed = 33;

    let sim_batch = Simulator::with_engine(sim.device.clone(), sim.config, Engine::FrameBatch);
    let session = Session::new(sim_batch.clone());
    let batch = BatchedFrameEngine::new(&sim_batch);
    let none = InsertionSet::empty();

    let direct_counts = batch.run_counts(&sc, shots, seed).unwrap();
    let obs = [
        PauliString::parse("ZZIII").unwrap(),
        PauliString::parse("IIZZI").unwrap(),
    ];
    let direct_flips = batch
        .expect_flips(&sc, &obs, shots, seed, &none, None)
        .unwrap();

    for round in 0..2 {
        // Round 0 compiles (cold); round 1 must hit the cache when it
        // is enabled — and be bit-identical either way.
        let counts = match session.run(&Job::counts(sc.clone(), shots, seed)).unwrap() {
            JobOutput::Counts(c) => c,
            other => panic!("counts job returned {other:?}"),
        };
        assert_eq!(counts, direct_counts, "round {round}");
        let flips = match session
            .run(&Job::flips(sc.clone(), obs.to_vec(), shots, seed))
            .unwrap()
        {
            JobOutput::Flips(f) => f,
            other => panic!("flips job returned {other:?}"),
        };
        assert_eq!(flips, direct_flips, "round {round}");
    }

    // Worker-count independence through the compiled artifact.
    let compiled = session.compiled(&sc, seed).unwrap();
    for workers in [1usize, 2, 8] {
        assert_eq!(
            compiled.run_counts(shots, &none, Some(workers)).unwrap(),
            direct_counts,
            "{workers} workers"
        );
        assert_eq!(
            compiled
                .expect_flips(&obs, shots, &none, Some(workers))
                .unwrap(),
            direct_flips,
            "{workers} workers"
        );
    }
}

// ---------------------------------------------------------------------------
// Observability bit-identity: the `ca-obs` instrumentation in the
// compile pipeline, session layer, and both frame engines reads only
// the clock — it never draws from the RNG and never touches
// simulation state — so every result must be bit-identical whether
// tracing is off, at summary level, or at trace level. These checks
// run in CI both with `CA_OBS` unset and with `CA_OBS=summary`.
// ---------------------------------------------------------------------------

/// Serialises tests that toggle the process-global `ca-obs` level so
/// each closure runs entirely under the level it asked for.
static OBS_LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_obs_level<T>(level: ca_obs::Level, f: impl FnOnce() -> T) -> T {
    let _guard = OBS_LEVEL_LOCK.lock().unwrap();
    let prev = ca_obs::level();
    ca_obs::set_level(level);
    let out = f();
    ca_obs::set_level(prev);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn obs_level_never_changes_counts(
        qc in arb_dynamic_circuit(5),
        // Odd shot counts: partial tail words exercise the same lane
        // masking whether or not the phase timers run.
        shots in 1usize..150,
        seed in 0u64..1000,
    ) {
        let sim = noisy_frame_sim(qc.num_qubits);
        let sc = schedule_asap(&qc, GateDurations::default());
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let off = with_obs_level(ca_obs::Level::Off, || (
            serial.run_counts(&sc, shots, seed).unwrap(),
            batch.run_counts(&sc, shots, seed).unwrap(),
        ));
        let on = with_obs_level(ca_obs::Level::Summary, || (
            serial.run_counts(&sc, shots, seed).unwrap(),
            batch.run_counts(&sc, shots, seed).unwrap(),
        ));
        prop_assert_eq!(&off.0, &off.1, "serial vs batch (obs off)");
        prop_assert_eq!(off, on, "obs must be invisible: shots {} seed {}", shots, seed);
    }

    #[test]
    fn obs_level_never_changes_flips_across_worker_counts(
        qc in arb_clifford_circuit(5),
        shots in 1usize..120,
        seed in 0u64..1000,
    ) {
        let sim = noisy_frame_sim(qc.num_qubits);
        let mut open = qc.clone();
        open.instructions.retain(|i| i.gate != Gate::Measure);
        let sc = schedule_asap(&open, GateDurations::default());
        let obs = [
            PauliString::parse("ZZIII").unwrap(),
            PauliString::parse("IXXII").unwrap(),
        ];
        let ins = random_insertions(&sc, shots, 1 + shots / 2, seed ^ 0x5A5A);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let off = with_obs_level(ca_obs::Level::Off, || {
            serial.expect_flips(&sc, &obs, shots, seed, &ins).unwrap()
        });
        for workers in [1usize, 2, 8] {
            let on = with_obs_level(ca_obs::Level::Summary, || {
                batch.expect_flips(&sc, &obs, shots, seed, &ins, Some(workers)).unwrap()
            });
            prop_assert_eq!(
                &off, &on,
                "obs must be invisible: shots {} seed {} workers {}", shots, seed, workers
            );
        }
    }
}

/// The twirl-ensemble shared-schedule fast path must agree bit for
/// bit with compiling every instance independently through the full
/// pass pipeline — the soundness contract of `CompiledCircuit::redress`.
#[test]
fn twirl_ensemble_fast_path_matches_independent_compilation() {
    use ca_core::{compile, compile_twirl_ensemble, CompileOptions};
    use ca_sim::Session;
    let device = {
        let mut dev = uniform_device(Topology::line(6), 55.0);
        for q in 0..6 {
            dev.calibration.qubits[q].quasistatic_khz = 25.0;
            dev.calibration.qubits[q].charge_parity_khz = 4.0;
            dev.calibration.qubits[q].t1_us = 70.0;
            dev.calibration.qubits[q].t2_us = 80.0;
            dev.calibration.qubits[q].gate_err_1q = 0.003;
        }
        dev
    };
    let mut qc = Circuit::new(6, 0);
    qc.h(4).h(5);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..3 {
        qc.ecr(0, 1).ecr(2, 3);
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(4).h(5);
    let obs = [
        PauliString::parse("IIIIZI").unwrap(),
        PauliString::parse("ZZIIII").unwrap(),
    ];
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let seeds = [5u64, 6, 7, 8];
    let sim_seeds: Vec<u64> = seeds.iter().map(|s| s ^ 0x77).collect();
    let shots = 129; // partial tail lanes inside each instance
    for strategy in [
        ca_core::Strategy::Bare,
        ca_core::Strategy::StaggeredDd,
        ca_core::Strategy::CaDd,
    ] {
        let options = CompileOptions::new(strategy, seeds[0]);
        let ens = compile_twirl_ensemble(&qc, &device, &options, &seeds).unwrap();
        let session = Session::new(Simulator::with_engine(
            device.clone(),
            noise,
            Engine::FrameBatch,
        ));
        let fast: Vec<Vec<f64>> = session
            .submit_ensemble(&ens.base, &ens.dressings, &obs, shots, &sim_seeds)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let sim = Simulator::with_engine(device.clone(), noise, Engine::FrameBatch);
        for (i, &seed) in seeds.iter().enumerate() {
            let sc = compile(&qc, &device, &CompileOptions { seed, ..options }).unwrap();
            let slow = sim.expect_paulis(&sc, &obs, shots, sim_seeds[i]).unwrap();
            assert_eq!(
                fast[i], slow,
                "{strategy:?} seed {seed}: ensemble must be bit-identical"
            );
            // And the serial engine agrees with the redressed batch
            // artifact too.
            let serial = Simulator::with_engine(device.clone(), noise, Engine::Stabilizer);
            let serial_vals = serial
                .expect_paulis(&sc, &obs, shots, sim_seeds[i])
                .unwrap();
            assert_eq!(fast[i], serial_vals, "{strategy:?} seed {seed}: serial");
        }
    }
}

//! Closed-form physics regressions: exact values the full
//! compile→schedule→simulate stack must reproduce, derived by hand
//! from Eqs. (1)–(3) of the paper.

use ca_circuit::{schedule_asap, Circuit, GateDurations, PauliString};
use ca_core::dd::apply_walsh_in_window;
use ca_device::{phase_rad, uniform_device, Topology};
use ca_experiments::pec::fig_pec_gamma;
use ca_experiments::Budget;
use ca_sim::{NoiseConfig, Simulator};

const NU_KHZ: f64 = 100.0;

fn coherent_sim(n: usize) -> Simulator {
    Simulator::with_config(
        uniform_device(Topology::line(n), NU_KHZ),
        NoiseConfig::coherent_only(),
    )
}

#[test]
fn idle_pair_matches_u11_closed_form() {
    // Two idle coupled qubits in |++⟩ for time τ then measured in X:
    // U11 = Rzz(θ)·Rz(−θ)⊗Rz(−θ) with θ = 2πντ gives
    // ⟨X₀⟩ = cos θ·cos θ − sin θ·sin θ·⟨…⟩ — computed directly from the
    // 2-qubit state: ⟨X₀⟩ = cos(θ_z)·cos(θ_zz) with θ_z = θ (the local
    // term) since ⟨Z₁⟩ = 0 in |+⟩. Verify numerically at several τ.
    let sim = coherent_sim(2);
    for &tau in &[500.0, 1300.0, 2700.0] {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1);
        qc.barrier(Vec::<usize>::new());
        qc.delay(tau, 0).delay(tau, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let theta = phase_rad(NU_KHZ, tau);
        let x0 = sim
            .expect_pauli(&sc, &PauliString::parse("XI").unwrap(), 1, 1)
            .expect("simulate");
        let expect = theta.cos() * theta.cos();
        assert!(
            (x0 - expect).abs() < 1e-9,
            "tau {tau}: ⟨X₀⟩ {x0} vs cos²θ {expect}"
        );
    }
}

#[test]
fn control_spectator_accrues_minus_theta() {
    // Case II: spectator 0 idles beside the control of ECR(1,2) for d
    // gates. Accrued phase = −d·2πν·τg on the spectator (Z term of
    // Eq. 1 with the ZZ refocused): ⟨X₀⟩ = cos(dθ_g).
    let sim = coherent_sim(3);
    let durations = GateDurations::default();
    for d in [1usize, 3, 7] {
        let mut qc = Circuit::new(3, 0);
        qc.h(0);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.ecr(1, 2);
            qc.barrier(Vec::<usize>::new());
        }
        let sc = schedule_asap(&qc, durations);
        let theta = phase_rad(NU_KHZ, durations.two_qubit) * d as f64;
        let x0 = sim
            .expect_pauli(&sc, &PauliString::parse("XII").unwrap(), 1, 1)
            .expect("simulate");
        assert!(
            (x0 - theta.cos()).abs() < 1e-9,
            "d {d}: ⟨X₀⟩ {x0} vs cos(dθ) {}",
            theta.cos()
        );
    }
}

#[test]
fn walsh_pairs_cancel_zz_iff_distinct() {
    // Direct stack-level check of the coloring premise: two idle
    // coupled qubits with Walsh sequences k₀, k₁ inserted over the
    // same window keep their mutual ZZ iff k₀ == k₁.
    let device = uniform_device(Topology::line(2), NU_KHZ);
    let sim = Simulator::with_config(device.clone(), NoiseConfig::coherent_only());
    let tau = 8000.0;
    // Use zero-width pulses for algebraic exactness.
    let durations = GateDurations {
        one_qubit: 0.0,
        ..GateDurations::default()
    };
    for k0 in 1..=4usize {
        for k1 in 1..=4usize {
            let mut qc = Circuit::new(2, 0);
            qc.h(0).h(1);
            qc.barrier(Vec::<usize>::new());
            qc.delay(tau, 0).delay(tau, 1);
            let mut sc = schedule_asap(&qc, durations);
            let (a, b) = (40.0, 40.0 + tau); // window after the H layer
            let _ = a;
            // The H gates are zero-width too: window starts at 0.
            let start = sc
                .items
                .iter()
                .filter(|si| matches!(si.instruction.gate, ca_circuit::Gate::Delay(_)))
                .map(|si| si.t0)
                .fold(f64::INFINITY, f64::min);
            let end = start + tau;
            let _ = b;
            assert!(apply_walsh_in_window(&mut sc, 0, start, end, k0, 0.0));
            assert!(apply_walsh_in_window(&mut sc, 1, start, end, k1, 0.0));
            let x0 = sim
                .expect_pauli(&sc, &PauliString::parse("XI").unwrap(), 1, 1)
                .expect("simulate");
            let theta = phase_rad(NU_KHZ, tau);
            if k0 == k1 {
                // Aligned: local Z cancelled, ZZ survives in full.
                assert!(
                    (x0 - theta.cos()).abs() < 1e-9,
                    "k={k0}: aligned must keep ZZ: {x0} vs {}",
                    theta.cos()
                );
            } else {
                assert!(
                    (x0 - 1.0).abs() < 1e-9,
                    "k0={k0},k1={k1}: distinct Walsh levels must cancel: {x0}"
                );
            }
        }
    }
}

#[test]
fn pulse_stretched_rzz_duration_scales_with_angle() {
    let d = GateDurations::default();
    let quarter = d.duration_of(&ca_circuit::Gate::Rzz(std::f64::consts::PI / 4.0));
    let half = d.duration_of(&ca_circuit::Gate::Rzz(std::f64::consts::PI / 2.0));
    let full = d.duration_of(&ca_circuit::Gate::Rzz(std::f64::consts::PI));
    assert!((full - d.two_qubit).abs() < 1e-9);
    assert!((half - d.two_qubit / 2.0).abs() < 1e-9);
    assert!((quarter - d.two_qubit / 4.0).abs() < 1e-9);
    // Angle wrapping: 2π−θ costs the same as θ.
    let wrapped = d.duration_of(&ca_circuit::Gate::Rzz(2.0 * std::f64::consts::PI - 0.5));
    let direct = d.duration_of(&ca_circuit::Gate::Rzz(0.5));
    assert!((wrapped - direct).abs() < 1e-9);
    // Floor: tiny angles still cost two 1q pulses.
    let tiny = d.duration_of(&ca_circuit::Gate::Rzz(1e-4));
    assert!((tiny - 2.0 * d.one_qubit).abs() < 1e-9);
}

#[test]
fn stark_phase_matches_calibration() {
    // Spectator beside a driven neighbour for n X-gates accrues
    // exactly 2π·ν_stark·(n·τ_1q).
    let mut device = uniform_device(Topology::line(2), 0.0);
    device.calibration.stark_khz.insert((1, 0), 30.0);
    let sim = Simulator::with_config(device.clone(), NoiseConfig::coherent_only());
    let n = 40usize;
    let mut qc = Circuit::new(2, 0);
    qc.h(0);
    // Start the neighbour's drive only after the Hadamard: while q0 is
    // itself being driven it is not an idle spectator and accrues no
    // Stark phase.
    qc.barrier(Vec::<usize>::new());
    for _ in 0..n {
        qc.x(1);
    }
    let sc = schedule_asap(&qc, device.durations());
    let theta = phase_rad(30.0, n as f64 * device.durations().one_qubit);
    let x0 = sim
        .expect_pauli(&sc, &PauliString::parse("XI").unwrap(), 1, 1)
        .expect("simulate");
    assert!(
        (x0 - theta.cos()).abs() < 1e-9,
        "⟨X₀⟩ {x0} vs {}",
        theta.cos()
    );
}

#[test]
fn learned_gamma_trajectory_is_ordered_and_tracks_closed_form() {
    // Golden Fig. 8 mitigation check: the γ of the *learned* per-layer
    // Pauli channel must fall monotonically along the strategy
    // trajectory (this reproduction's measured order — see
    // `ca_experiments::pec` for why standalone CA-EC sits between DD
    // and CA-DD here), and for every invertible strategy the exact
    // Σ|q| γ must agree with the closed-form γ = LF^{−2} evaluated at
    // the same learned layer fidelity. Fully deterministic for the
    // fixed seed, so the margins below are regression guards, not
    // statistical bets.
    let budget = Budget {
        trajectories: 128,
        instances: 2,
        seed: 11,
    };
    let (_, results) = fig_pec_gamma(&[1, 2, 4], &budget).expect("learn the trajectory");
    let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["bare", "DD", "CA-DD", "CA-EC", "CA-EC+DD"]);
    // Robust trajectory facts (the CA-DD vs CA-EC order itself flips
    // with the twirl/shot budget — they sit at statistical parity now
    // that twirl Paulis merge into the 1q layers at zero cost, as on
    // hardware): bare ≫ DD, and both context-aware strategies beat DD
    // by a clear margin.
    let (bare, dd, ca_dd, ca_ec, combined) = (
        results[0].gamma_learned,
        results[1].gamma_learned,
        results[2].gamma_learned,
        results[3].gamma_learned,
        results[4].gamma_learned,
    );
    assert!(bare > 2.0 * dd, "bare {bare:.3} must dwarf DD {dd:.3}");
    assert!(dd > ca_dd, "DD {dd:.3} must exceed CA-DD {ca_dd:.3}");
    assert!(dd > ca_ec, "DD {dd:.3} must exceed CA-EC {ca_ec:.3}");
    // CA-DD and CA-EC at parity: their gap is small relative to the
    // margin by which either beats DD (a budget-robust bound — the
    // absolute gap moves with the twirl/shot budget).
    assert!(
        (ca_dd - ca_ec).abs() < 0.5 * (dd - ca_dd.min(ca_ec)),
        "CA-DD {ca_dd:.3} and CA-EC {ca_ec:.3} must sit at parity (DD {dd:.3})"
    );
    // CA-EC+DD adds DD pulses to a channel CA-EC already compensated:
    // at or near the bottom of the trajectory.
    assert!(
        combined <= ca_dd.min(ca_ec) + 0.02,
        "CA-EC+DD {combined:.3} must land at/near the minimum of CA-DD {ca_dd:.3} / CA-EC {ca_ec:.3}"
    );
    assert!(
        combined < dd,
        "CA-EC+DD {combined:.3} must stay below DD {dd:.3}"
    );
    for r in &results {
        assert!(
            r.gamma_learned >= 1.0,
            "{}: γ {} < 1",
            r.label,
            r.gamma_learned
        );
        if !r.invertible || r.lf < 0.5 {
            // Bare at strong crosstalk is (near-)degenerate: depending
            // on the budget it is either non-invertible (γ is a
            // clamped lower bound) or so deep that the exact Σ|q| γ
            // legitimately races far past LF^{-2} — both estimators
            // only track each other in the perturbative regime.
            // Ordering (checked above) is the claim for bare.
            assert_eq!(r.label, "bare");
            continue;
        }
        // Exact γ vs closed-form LF^{-2}: the same noise through two
        // estimators. They agree on the overhead *excess* within a
        // modest band (the closed form slightly overweights it).
        let excess_ratio = (r.gamma_learned - 1.0) / (r.gamma_formula - 1.0);
        assert!(
            (0.65..1.1).contains(&excess_ratio),
            "{}: learned γ {:.3} vs LF^-2 {:.3} (excess ratio {excess_ratio:.3})",
            r.label,
            r.gamma_learned,
            r.gamma_formula
        );
    }
    // The DD-family layer fidelities land in the paper's ballpark
    // (0.74–0.88 band, Fig. 8b) rather than collapsing.
    for r in &results[1..] {
        assert!(
            r.lf > 0.7 && r.lf < 0.99,
            "{}: learned LF {:.3} out of band",
            r.label,
            r.lf
        );
    }
}

#[test]
fn charge_parity_average_is_cosine_product() {
    // Per-shot ±δ: E[⟨X⟩](t) = cos(2πδt) exactly when averaged over
    // the two parities.
    let mut device = uniform_device(Topology::line(1), 0.0);
    device.calibration.qubits[0].charge_parity_khz = 40.0;
    let cfg = NoiseConfig {
        charge_parity: true,
        ..NoiseConfig::ideal()
    };
    let sim = Simulator::with_config(device.clone(), cfg);
    let tau = 6000.0;
    let mut qc = Circuit::new(1, 0);
    qc.h(0).delay(tau, 0);
    let sc = schedule_asap(&qc, device.durations());
    let x = sim
        .expect_pauli(&sc, &PauliString::parse("X").unwrap(), 4000, 3)
        .expect("simulate");
    let expect = phase_rad(40.0, tau).cos();
    assert!(
        (x - expect).abs() < 0.05,
        "parity-averaged ⟨X⟩ {x} vs cos(2πδτ) {expect}"
    );
}

#[test]
fn dynamic_127_sweep_peaks_at_the_true_latency() {
    // Fig. 9 at device scale: Bell distribution over heavy-hex chains
    // of the 127-qubit Eagle lattice, feed-forward on the batched
    // frame engine. Golden under a fixed seed: (a) the circuits run
    // on "frame-batch" (no dense fallback for dynamic circuits),
    // (b) bare ≪ compensated at the true window for every chain
    // length, (c) the τ sweep peaks exactly at the true latency, and
    // (d) the whole thing is deterministic (two runs, identical
    // floats).
    use ca_experiments::dynamic_127::dynamic_127;
    let budget = Budget {
        trajectories: 512,
        instances: 1,
        seed: 11,
    };
    let tau_fracs = [0.4, 0.7, 1.0, 1.3, 1.6];
    let run = || dynamic_127(&[4, 12], &tau_fracs, &budget);
    let (_, results) = run();
    for r in &results {
        assert_eq!(r.engine, "frame-batch", "L={}", r.chain_len);
        let at_truth = r.compensated[2];
        assert!(
            at_truth > r.bare + 0.15,
            "L={}: compensated {} vs bare {}",
            r.chain_len,
            at_truth,
            r.bare
        );
        assert_eq!(
            r.peak_index(),
            2,
            "L={}: fidelity must peak at the true τ: {:?}",
            r.chain_len,
            r.compensated
        );
    }
    let (_, again) = run();
    for (a, b) in results.iter().zip(again.iter()) {
        assert_eq!(a.bare.to_bits(), b.bare.to_bits(), "bare not deterministic");
        for (x, y) in a.compensated.iter().zip(b.compensated.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "sweep not deterministic");
        }
    }
}

//! Cross-crate integration tests: full compile→simulate pipelines.

use context_aware_compiling::prelude::*;

fn workload() -> Circuit {
    let mut qc = Circuit::new(4, 0);
    qc.h(2).h(3);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..6 {
        qc.ecr(1, 0);
        qc.delay(480.0, 2).delay(480.0, 3);
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(2).h(3);
    qc
}

fn idle_pair_fidelity(device: &Device, noise: &NoiseConfig, strategy: Strategy, seed: u64) -> f64 {
    let sim = Simulator::with_config(device.clone(), *noise);
    let obs: Vec<PauliString> = ["IIII", "IIZI", "IIIZ", "IIZZ"]
        .iter()
        .map(|s| PauliString::parse(s).unwrap())
        .collect();
    let mut total = 0.0;
    for inst in 0..4u64 {
        let compiled = compile(
            &workload(),
            device,
            &CompileOptions::new(strategy, seed + inst),
        )
        .unwrap();
        let vals = sim
            .expect_paulis(&compiled, &obs, 30, seed ^ inst.wrapping_mul(977))
            .expect("simulate");
        total += vals.iter().sum::<f64>() / vals.len() as f64;
    }
    total / 4.0
}

#[test]
fn all_strategies_preserve_logic_under_ideal_noise() {
    // Zero crosstalk: CA-EC then compensates nothing, and every
    // strategy must be logically transparent. (On a *noisy* device,
    // EC's compensations are rotations that cancel only against the
    // physical error — covered by the coherent-noise test below.)
    let device = uniform_device(Topology::line(4), 0.0);
    let noise = NoiseConfig::ideal();
    for strategy in Strategy::ALL {
        let f = idle_pair_fidelity(&device, &noise, strategy, 3);
        assert!(
            (f - 1.0).abs() < 1e-6,
            "{} must be logically transparent: F = {f}",
            strategy.label()
        );
    }
}

#[test]
fn context_aware_strategies_beat_bare_under_coherent_noise() {
    let device = uniform_device(Topology::line(4), 90.0);
    let noise = NoiseConfig::coherent_only();
    let bare = idle_pair_fidelity(&device, &noise, Strategy::Bare, 3);
    for strategy in [Strategy::CaDd, Strategy::CaEc, Strategy::CaEcPlusDd] {
        let f = idle_pair_fidelity(&device, &noise, strategy, 3);
        assert!(
            f > bare + 0.05,
            "{}: {f} must clearly beat bare {bare}",
            strategy.label()
        );
        assert!(
            f > 0.9,
            "{}: {f} should nearly eliminate coherent error",
            strategy.label()
        );
    }
}

#[test]
fn compiled_schedules_are_well_formed() {
    let device = uniform_device(Topology::line(4), 80.0);
    for strategy in Strategy::ALL {
        let sc = compile(&workload(), &device, &CompileOptions::new(strategy, 9)).unwrap();
        // Items sorted by start time and inside the schedule span.
        let mut last = 0.0;
        for item in &sc.items {
            assert!(
                item.t0 >= last - 1e-9,
                "{}: unsorted items",
                strategy.label()
            );
            last = item.t0;
            assert!(
                item.t1() <= sc.duration + 1e-6,
                "{}: item beyond span",
                strategy.label()
            );
        }
        // No two non-virtual items overlap on the same qubit.
        for q in 0..4 {
            let mut busy: Vec<(f64, f64)> = sc
                .items
                .iter()
                .filter(|si| {
                    si.instruction.acts_on(q)
                        && si.duration > 0.0
                        && !matches!(si.instruction.gate, Gate::Delay(_) | Gate::Barrier)
                })
                .map(|si| (si.t0, si.t1()))
                .collect();
            busy.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in busy.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "{}: overlapping items on qubit {q}: {:?}",
                    strategy.label(),
                    w
                );
            }
        }
    }
}

#[test]
fn device_snapshot_roundtrips_through_json() {
    let device = nazca_like(Topology::ring(6), 42);
    let json = device.to_json();
    let restored = Device::from_json(&json).unwrap();
    assert_eq!(device, restored);
    // And the restored device compiles identically.
    let a = compile(
        &workload(),
        &device,
        &CompileOptions::new(Strategy::CaDd, 7),
    )
    .unwrap();
    let mut qc4 = workload();
    qc4.num_qubits = 4;
    let b = compile(
        &workload(),
        &restored,
        &CompileOptions::new(Strategy::CaDd, 7),
    )
    .unwrap();
    assert_eq!(a.items.len(), b.items.len());
    let _ = qc4;
}

#[test]
fn facade_prelude_compiles_the_doc_example() {
    let device = uniform_device(Topology::line(4), 80.0);
    let mut qc = Circuit::new(4, 0);
    qc.h(2).h(3);
    qc.ecr(0, 1).ecr(0, 1);
    qc.h(2).h(3);
    let compiled = compile(&qc, &device, &CompileOptions::untwirled(Strategy::CaDd, 7)).unwrap();
    let sim = Simulator::with_config(device, NoiseConfig::coherent_only());
    let z = sim
        .expect_pauli(&compiled, &PauliString::parse("IIZI").unwrap(), 1, 7)
        .expect("simulate");
    assert!(z > 0.99, "suppressed Ramsey must return: {z}");
}

#[test]
fn dynamic_bell_protocol_runs_end_to_end_on_every_engine() {
    // The Fig. 9 dynamic-Bell protocol (mid-circuit measurement,
    // conditional-Z feed-forward, CA-EC measure-window compensation)
    // through the full schedule→simulate stack on all three engines:
    // each must show compensation at the true window beating bare by
    // a wide margin, and the two frame engines must agree bit-for-bit.
    use context_aware_compiling::experiments::dynamic::{
        bell_circuit, dynamic_device, true_tau_ns,
    };
    use context_aware_compiling::experiments::runner::{
        all_zeros_fidelity, all_zeros_fidelity_observables,
    };
    let device = dynamic_device();
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let obs = all_zeros_fidelity_observables(3, &[1, 2]);
    let fid = |engine: Engine, tau: f64| {
        let sim = Simulator::with_engine(device.clone(), noise, engine);
        let qc = bell_circuit(&device, tau);
        let sc = schedule_asap(&qc, device.durations());
        sim.expect_paulis(&sc, &obs, 300, 11).expect("simulate")
    };
    let truth = true_tau_ns(&device);
    for engine in [Engine::Statevector, Engine::Stabilizer, Engine::FrameBatch] {
        let bare = all_zeros_fidelity(&fid(engine, 0.0));
        let comp = all_zeros_fidelity(&fid(engine, truth));
        assert!(
            comp > bare + 0.3,
            "{engine:?}: compensated {comp} must far exceed bare {bare}"
        );
    }
    // Bit-identity across the frame engines, expectation-side.
    assert_eq!(
        fid(Engine::Stabilizer, truth),
        fid(Engine::FrameBatch, truth),
        "frame engines must agree bit-for-bit"
    );
}

//! Thread-local metric shards and the global registry that merges
//! them.
//!
//! Each thread records into its own [`Shard`] behind an uncontended
//! mutex; shards register themselves in a global list on first use and
//! outlive their thread, so short-lived worker pools (the session
//! fan-out spawns scoped threads per submit) never lose data.

use crate::histogram::Histogram;
use crate::span::TraceEvent;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Per-thread trace-event cap; overflow increments a drop counter
/// instead of growing without bound.
const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

#[derive(Default)]
pub(crate) struct Shard {
    tid: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<(&'static str, &'static str), Histogram>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Shard>>>> = const { RefCell::new(None) };
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let mut reg = crate::lock_recover(registry());
            let shard = Arc::new(Mutex::new(Shard {
                tid: reg.len() as u64 + 1,
                ..Shard::default()
            }));
            reg.push(Arc::clone(&shard));
            shard
        });
        f(&mut crate::lock_recover(arc));
    });
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge to `value` (last write wins across threads).
/// No-op when disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        s.gauges.insert(name, value);
    });
}

/// Records a duration sample (nanoseconds) into the `(category,
/// name)` histogram. No-op when disabled.
pub fn observe_ns(category: &'static str, name: &'static str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| s.histograms.entry((category, name)).or_default().record(ns));
}

/// Buffers a trace event, stamping it with this thread's shard id.
pub(crate) fn push_event(mut event: TraceEvent) {
    with_shard(|s| {
        if s.events.len() < MAX_EVENTS_PER_THREAD {
            event.tid = s.tid;
            s.events.push(event);
        } else {
            s.dropped_events += 1;
        }
    });
}

/// Drains all buffered trace events from every shard.
pub(crate) fn take_events() -> Vec<TraceEvent> {
    let reg = crate::lock_recover(registry());
    let mut out = Vec::new();
    for shard in reg.iter() {
        out.append(&mut crate::lock_recover(shard).events);
    }
    out
}

/// A merged point-in-time copy of every thread's metrics.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic counters, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last write wins across threads).
    pub gauges: BTreeMap<String, f64>,
    /// Duration histograms keyed `"category/name"`, merged across
    /// threads.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Merges all shards into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let mut out = Snapshot::default();
    let mut dropped = 0u64;
    let reg = crate::lock_recover(registry());
    for shard in reg.iter() {
        let s = crate::lock_recover(shard);
        for (name, v) in &s.counters {
            *out.counters.entry((*name).to_string()).or_insert(0) += v;
        }
        for (name, v) in &s.gauges {
            out.gauges.insert((*name).to_string(), *v);
        }
        for ((cat, name), h) in &s.histograms {
            out.histograms
                .entry(format!("{cat}/{name}"))
                .or_default()
                .merge(h);
        }
        dropped += s.dropped_events;
    }
    if dropped > 0 {
        *out.counters
            .entry("obs.dropped_events".to_string())
            .or_insert(0) += dropped;
    }
    out
}

impl Snapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram under `"category/name"`, if any samples exist.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Total seconds accumulated in the `"category/name"` histogram
    /// (its sample sum interpreted as nanoseconds).
    pub fn total_seconds(&self, key: &str) -> f64 {
        self.histogram(key).map_or(0.0, |h| h.sum() as f64 * 1e-9)
    }

    /// The activity recorded since `base` was captured: counter and
    /// histogram deltas (saturating), gauges taken from `self`. Used
    /// by the benches to attribute phase time to a single run.
    pub fn since(&self, base: &Snapshot) -> Snapshot {
        let mut out = Snapshot {
            gauges: self.gauges.clone(),
            ..Snapshot::default()
        };
        for (name, v) in &self.counters {
            let d = v.saturating_sub(base.counter(name));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (key, h) in &self.histograms {
            let d = match base.histograms.get(key) {
                Some(b) => h.since(b),
                None => h.clone(),
            };
            if d.count() > 0 {
                out.histograms.insert(key.clone(), d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;
    use std::sync::Mutex;

    // The level is process-global; tests that toggle it must not
    // overlap with tests that record.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_buffers_merge_into_one_snapshot() {
        let _guard = LEVEL_LOCK.lock().unwrap();
        crate::set_level(Level::Summary);
        let before = snapshot();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    counter_add("test.registry.merge", 3);
                    observe_ns("test.registry", "merge-lat", 1000);
                    gauge_set("test.registry.gauge", 7.0);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        counter_add("test.registry.merge", 1);
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("test.registry.merge"), 13);
        let h = delta.histogram("test.registry/merge-lat").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 4000);
        assert_eq!(delta.gauges.get("test.registry.gauge"), Some(&7.0));
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = LEVEL_LOCK.lock().unwrap();
        let level = crate::level();
        crate::set_level(Level::Off);
        counter_add("test.registry.disabled", 1);
        observe_ns("test.registry", "disabled-lat", 5);
        crate::set_level(Level::Summary);
        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.disabled"), 0);
        assert!(snap.histogram("test.registry/disabled-lat").is_none());
        crate::set_level(level.max(Level::Summary));
    }

    #[test]
    fn since_reports_only_new_activity() {
        let _guard = LEVEL_LOCK.lock().unwrap();
        crate::set_level(Level::Summary);
        counter_add("test.registry.delta", 5);
        observe_ns("test.registry", "delta-lat", 100);
        let base = snapshot();
        counter_add("test.registry.delta", 2);
        observe_ns("test.registry", "delta-lat", 200);
        let delta = snapshot().since(&base);
        assert_eq!(delta.counter("test.registry.delta"), 2);
        let h = delta.histogram("test.registry/delta-lat").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 200);
    }
}

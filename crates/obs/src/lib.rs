#![forbid(unsafe_code)]
//! Structured tracing and metrics for the context-aware-compiling
//! pipeline.
//!
//! The workspace's hot paths — pass compilation, session/job fan-out,
//! the frame engines, the mitigation learner — are instrumented with
//! three primitives:
//!
//! - **spans** ([`span`]): RAII timers that record a duration
//!   histogram per `(category, name)` pair and, at trace level, emit a
//!   Chrome-trace duration event;
//! - **counters / gauges** ([`counter_add`], [`gauge_set`]): named
//!   monotonic counts and last-write-wins values;
//! - **histograms** ([`observe_ns`], [`Histogram`]): log2-bucketed
//!   latency distributions with p50/p95/p99.
//!
//! All state lives in thread-local shards registered in a global
//! registry, so recording never contends across worker threads;
//! [`snapshot`] merges the shards on demand. When disabled, every
//! instrumentation site costs **one relaxed atomic load** and nothing
//! else — no clock read, no allocation.
//!
//! ## Levels
//!
//! The level comes from the `CA_OBS` environment variable, parsed
//! lazily on first use, or from [`set_level`]:
//!
//! | value               | effect                                       |
//! |---------------------|----------------------------------------------|
//! | unset, `off`, `0`   | everything disabled (default)                |
//! | `summary`, `on`, `1`| metrics recorded; [`finish`] prints a table  |
//! | `trace:<path>`      | metrics + trace events; [`finish`] writes a  |
//! |                     | Chrome-trace JSON file loadable in Perfetto  |
//!
//! ## The no-RNG / no-state invariant
//!
//! Instrumentation draws **no randomness** and touches **no
//! simulation state**: it only reads clocks and writes to its own
//! shards. Simulation results are therefore bit-identical across
//! `off`/`summary`/`trace` — the engine-equivalence suite enforces
//! this.

#![warn(missing_docs)]

mod env;
mod export;
mod histogram;
mod registry;
mod span;

pub use env::{invalid_env_count, var_parsed, var_parsed_with};
pub use export::{fmt_ns, render_summary, write_chrome_trace};
pub use histogram::Histogram;
pub use registry::{counter_add, gauge_set, observe_ns, snapshot, Snapshot};
pub use span::{span, Span};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Observability verbosity, lowest to highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is recorded; every site costs one relaxed atomic load.
    Off,
    /// Counters, gauges, and histograms are recorded; [`finish`]
    /// prints a summary table to stderr.
    Summary,
    /// Everything in `Summary` plus per-span trace events; [`finish`]
    /// also writes a Chrome-trace JSON file.
    Trace,
}

impl Level {
    /// The lowercase name used by `CA_OBS` and in run metadata.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Trace => "trace",
        }
    }
}

// STATE holds Level + 1, with 0 meaning "not yet parsed from CA_OBS".
const UNINIT: u8 = 0;
static STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn trace_path_slot() -> &'static Mutex<Option<PathBuf>> {
    static SLOT: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Locks a mutex, recovering from poisoning. Instrumentation state
/// (registry shards, the trace-path slot, warn-once sets) must stay
/// readable after a worker thread panics — aborting inside `finish()`
/// or a metrics call would mask the original panic.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Process-wide time origin for trace timestamps.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-wide epoch (first clock
/// use in this process). The workspace's single sanctioned wall-clock
/// read outside `ca-bench`: deadline enforcement (`ca-sim` cancel
/// tokens, `ca-server` job timeouts) measures elapsed time through
/// this function so every clock read stays inside `ca-obs`, the crate
/// the `wall-clock` lint rule scopes to. Timekeeping only — the value
/// never feeds simulation results.
pub fn monotonic_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cold]
fn init_from_env() -> u8 {
    epoch();
    // CA_OBS cannot go through env::var_parsed_with: that helper's
    // invalid-value counter re-enters the level check. env::raw keeps
    // the actual read inside ca_obs::env, the workspace's single
    // environment-reading module.
    let parsed = match env::raw("CA_OBS") {
        None => Level::Off,
        Some(raw) => {
            let lower = raw.to_ascii_lowercase();
            if let Some(path) = lower.strip_prefix("trace:") {
                *lock_recover(trace_path_slot()) = Some(PathBuf::from(path));
                Level::Trace
            } else {
                match lower.as_str() {
                    "" | "off" | "0" | "false" | "none" => Level::Off,
                    "summary" | "on" | "1" => Level::Summary,
                    "trace" => Level::Trace,
                    _ => {
                        eprintln!("ca-obs: ignoring invalid CA_OBS={raw:?} (expected off|summary|trace:<path>)");
                        Level::Off
                    }
                }
            }
        }
    };
    // CAS so a concurrent set_level() is not overwritten.
    let _ = STATE.compare_exchange(
        UNINIT,
        parsed as u8 + 1,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed)
}

#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == UNINIT {
        init_from_env()
    } else {
        s
    }
}

/// Whether any instrumentation is active. The hot-path guard: one
/// relaxed atomic load after first use.
#[inline]
pub fn enabled() -> bool {
    state() > Level::Off as u8 + 1
}

/// Whether trace events (not just metrics) are being recorded.
#[inline]
pub fn trace_enabled() -> bool {
    state() > Level::Summary as u8 + 1
}

/// The current level.
pub fn level() -> Level {
    match state() {
        2 => Level::Summary,
        3 => Level::Trace,
        _ => Level::Off,
    }
}

/// Overrides the level programmatically (benches, tests), taking
/// precedence over `CA_OBS`.
pub fn set_level(level: Level) {
    epoch();
    STATE.store(level as u8 + 1, Ordering::Relaxed);
}

/// Sets the file [`finish`] writes the Chrome trace to at
/// [`Level::Trace`] (also settable via `CA_OBS=trace:<path>`).
pub fn set_trace_path(path: impl Into<PathBuf>) {
    *lock_recover(trace_path_slot()) = Some(path.into());
}

/// Raises the level to [`Level::Summary`] if it is currently off;
/// leaves `summary`/`trace` untouched. Benches call this so their
/// phase breakdowns are populated even without `CA_OBS` set.
pub fn enable_summary_if_off() {
    if level() == Level::Off {
        set_level(Level::Summary);
    }
}

/// Flushes collected data according to the current level: prints the
/// summary table to stderr at `summary`+, and writes (draining) the
/// buffered trace events as Chrome-trace JSON at `trace`. Returns the
/// trace path when a trace file was written.
pub fn finish() -> Option<PathBuf> {
    let level = level();
    if level == Level::Off {
        return None;
    }
    let mut written = None;
    if level == Level::Trace {
        let path = lock_recover(trace_path_slot())
            .clone()
            .unwrap_or_else(|| PathBuf::from("ca_obs_trace.json"));
        match write_chrome_trace(&path) {
            Ok(()) => written = Some(path),
            Err(e) => eprintln!("ca-obs: failed to write trace {}: {e}", path.display()),
        }
    }
    eprint!("{}", render_summary(&snapshot()));
    written
}

//! Log2-bucketed latency histogram with approximate percentiles.

/// A histogram over `u64` samples (by convention nanoseconds) with one
/// bucket per power of two: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds `[2^(b-1), 2^b)`. Percentiles are therefore approximate to
/// within a factor of two, which is plenty for latency work, and
/// recording is a handful of integer ops with no allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Midpoint of a bucket's value range, the representative returned by
/// percentile queries (before clamping to the observed min/max).
fn bucket_midpoint(b: usize) -> u64 {
    if b == 0 {
        return 0;
    }
    let lo = 1u128 << (b - 1);
    let hi = (1u128 << b) - 1;
    ((lo + hi) / 2) as u64
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `[0, 1]`): the midpoint of the
    /// bucket holding the `ceil(p·count)`-th smallest sample, clamped
    /// to the observed `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds another histogram into this one (used when merging
    /// per-thread shards into a [`crate::Snapshot`]).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
    }

    /// The samples recorded since `base` was captured, assuming `base`
    /// is an earlier snapshot of this same histogram (saturating; the
    /// min/max of the diff are approximated by this histogram's).
    pub fn since(&self, base: &Histogram) -> Histogram {
        let mut out = self.clone();
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        for (b, n) in out.buckets.iter_mut().zip(base.buckets.iter()) {
            *b = b.saturating_sub(*n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn midpoints_sit_inside_their_bucket() {
        for b in 1..65 {
            let m = bucket_midpoint(b);
            assert_eq!(bucket_index(m), b, "bucket {b} midpoint {m}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_are_bucket_accurate() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // The 50th sample is 50, in bucket [32, 64); p50 must land there.
        let p50 = h.p50();
        assert!((32..64).contains(&p50), "p50 = {p50}");
        // The 95th and 99th samples are 95 and 99, in bucket [64, 128),
        // clamped by max = 100.
        let p95 = h.p95();
        assert!((64..=100).contains(&p95), "p95 = {p95}");
        let p99 = h.p99();
        assert!((64..=100).contains(&p99), "p99 = {p99}");
        assert!((64..=100).contains(&h.percentile(1.0)));
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn clamping_respects_observed_range() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        // Midpoint of 100's bucket is 95, below the observed min of
        // 100 — the clamp pulls it back into the observed range.
        assert_eq!(h.p50(), 100);
        // The 10 large samples are past the 99th percentile of 1010
        // samples, but not the 99.9th.
        assert_eq!(h.p99(), 100);
        assert_eq!(h.percentile(0.999), 10_000);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(5);
        a.record(500);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 555);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn since_subtracts_a_prior_snapshot() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        let base = h.clone();
        h.record(1000);
        let d = h.since(&base);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum(), 1000);
        // The only remaining sample (1000) is in bucket [512, 1024).
        let p50 = d.p50();
        assert!((512..1024).contains(&p50), "p50 = {p50}");
    }
}

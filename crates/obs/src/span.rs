//! RAII timing spans.

use crate::registry;
use std::time::Instant;

/// One completed duration event, buffered for the Chrome-trace
/// exporter (`ph: "X"` complete events).
#[derive(Clone, Debug)]
pub(crate) struct TraceEvent {
    pub cat: &'static str,
    pub name: &'static str,
    /// Microseconds since the process [`crate::epoch`].
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Shard id of the recording thread (stamped by the registry).
    pub tid: u64,
    /// Numeric arguments shown in trace viewers.
    pub args: Vec<(&'static str, f64)>,
}

/// An RAII timer opened by [`span`]: on drop it records the elapsed
/// nanoseconds into the `(category, name)` duration histogram and, at
/// trace level, buffers a Chrome-trace event. When observability is
/// off, construction reads no clock and drop does nothing.
#[must_use = "a span times the scope it lives in; bind it to a `_guard`-style local"]
pub struct Span {
    start: Option<Instant>,
    cat: &'static str,
    name: &'static str,
    args: Vec<(&'static str, f64)>,
}

/// Opens a timing span under `category/name`. Both strings must be
/// static so recording stays allocation-free.
#[inline]
pub fn span(category: &'static str, name: &'static str) -> Span {
    let start = crate::enabled().then(Instant::now);
    Span {
        start,
        cat: category,
        name,
        args: Vec::new(),
    }
}

impl Span {
    /// Attaches a numeric argument (e.g. a job index or shot count),
    /// visible in the exported trace. No-op on disabled spans.
    pub fn with_arg(mut self, key: &'static str, value: f64) -> Self {
        if self.start.is_some() {
            self.args.push((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        registry::observe_ns(self.cat, self.name, ns);
        if crate::trace_enabled() {
            let ts = start.saturating_duration_since(crate::epoch());
            registry::push_event(TraceEvent {
                cat: self.cat,
                name: self.name,
                ts_us: ts.as_nanos() as f64 / 1000.0,
                dur_us: elapsed.as_nanos() as f64 / 1000.0,
                tid: 0,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

//! Exporters: Chrome-trace JSON (Perfetto / `chrome://tracing`) and
//! the human-readable summary table.

use crate::registry::{self, Snapshot};
use crate::span::TraceEvent;
use serde::{Serialize, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Adapter so a pre-built [`Value`] tree can go through the
/// serde_json shim's `to_string`.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders trace events as a Chrome trace-event document: one `ph:
/// "X"` complete event per span plus a `thread_name` metadata event
/// per shard, all under `pid` 1.
pub(crate) fn trace_to_value(events: &[TraceEvent]) -> Value {
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let mut out = Vec::with_capacity(events.len() + tids.len());
    for tid in tids {
        out.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("name", Value::Str("thread_name".into())),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(tid as f64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("shard-{tid}")))]),
            ),
        ]));
    }
    for e in events {
        let mut fields = vec![
            ("ph", Value::Str("X".into())),
            ("name", Value::Str(e.name.into())),
            ("cat", Value::Str(e.cat.into())),
            ("ts", Value::Num(e.ts_us)),
            ("dur", Value::Num(e.dur_us)),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(e.tid as f64)),
        ];
        if !e.args.is_empty() {
            fields.push((
                "args",
                Value::Obj(
                    e.args
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Num(*v)))
                        .collect(),
                ),
            ));
        }
        out.push(obj(fields));
    }
    obj(vec![
        ("traceEvents", Value::Arr(out)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Drains every thread's buffered trace events and writes them to
/// `path` as Chrome-trace JSON. Usually called via [`crate::finish`].
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let events = registry::take_events();
    let doc = trace_to_value(&events);
    let json =
        serde_json::to_string(&Raw(doc)).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

/// Formats a nanosecond duration with a human-scale unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Renders the end-of-run summary table: counters, gauges, and the
/// per-`category/name` timing distributions.
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        return out;
    }
    out.push_str("== ca-obs summary ==\n");
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<44} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<44} {v:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "timings:\n  {:<34} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "span", "count", "total", "p50", "p95", "p99", "max"
        );
        for (key, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
                key,
                h.count(),
                fmt_ns(h.sum()),
                fmt_ns(h.p50()),
                fmt_ns(h.p95()),
                fmt_ns(h.p99()),
                fmt_ns(h.max()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        cat: &'static str,
        name: &'static str,
        ts_us: f64,
        dur_us: f64,
        tid: u64,
        args: Vec<(&'static str, f64)>,
    ) -> TraceEvent {
        TraceEvent {
            cat,
            name,
            ts_us,
            dur_us,
            tid,
            args,
        }
    }

    #[test]
    fn trace_roundtrips_through_serde_json() {
        let events = vec![
            event(
                "compile.pass",
                "ca-dd",
                10.0,
                250.5,
                1,
                vec![("layers", 4.0)],
            ),
            event("engine", "batch", 300.0, 1200.0, 2, vec![]),
        ];
        let json = serde_json::to_string(&Raw(trace_to_value(&events))).unwrap();
        let doc = serde_json::parse_value(&json).unwrap();
        let evs = doc.get("traceEvents").as_arr().unwrap();
        // 2 thread_name metadata events + 2 span events.
        assert_eq!(evs.len(), 4);
        let spans: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").as_str(), Some("ca-dd"));
        assert_eq!(spans[0].get("cat").as_str(), Some("compile.pass"));
        assert_eq!(spans[0].get("ts").as_f64(), Some(10.0));
        assert_eq!(spans[0].get("dur").as_f64(), Some(250.5));
        assert_eq!(spans[0].get("args").get("layers").as_f64(), Some(4.0));
        assert_eq!(spans[1].get("tid").as_f64(), Some(2.0));
        let metas: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].get("args").get("name").as_str(), Some("shard-1"));
    }

    #[test]
    fn trace_file_written_and_parseable() {
        let path = std::env::temp_dir().join("ca_obs_export_test.json");
        let events = vec![event("session", "job", 0.0, 5.0, 1, vec![("job", 0.0)])];
        let json = serde_json::to_string(&Raw(trace_to_value(&events))).unwrap();
        std::fs::write(&path, &json).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        let doc = serde_json::parse_value(&read_back).unwrap();
        assert_eq!(doc.get("displayTimeUnit").as_str(), Some("ms"));
        assert_eq!(doc.get("traceEvents").as_arr().unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(750), "750ns");
        assert_eq!(fmt_ns(1500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn summary_table_lists_all_sections() {
        let mut snap = Snapshot::default();
        snap.counters.insert("session.cache.hit".into(), 12);
        snap.gauges.insert("session.workers".into(), 8.0);
        let mut h = crate::Histogram::default();
        h.record(1_000_000);
        snap.histograms.insert("engine/batch".into(), h);
        let table = render_summary(&snap);
        assert!(table.contains("session.cache.hit"));
        assert!(table.contains("session.workers"));
        assert!(table.contains("engine/batch"));
        assert!(table.contains("1.0ms"));
        assert!(render_summary(&Snapshot::default()).is_empty());
    }
}

//! Centralized environment-variable parsing with loud (but one-time)
//! rejection of invalid values.
//!
//! The simulator's tuning knobs (`CA_SIM_WORKERS`,
//! `CA_SIM_PLAN_CACHE`) used to fall back silently when set to
//! garbage; every consumer now funnels through [`var_parsed`] /
//! [`var_parsed_with`], which warn once per variable on stderr, bump
//! the `obs.env.invalid` counter, and return `None` so the caller
//! applies its default explicitly.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static INVALID: AtomicU64 = AtomicU64::new(0);

fn warned() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// How many set-but-invalid environment values have been observed this
/// process (tracked even when observability is off).
pub fn invalid_env_count() -> u64 {
    INVALID.load(Ordering::Relaxed)
}

/// Reads and `FromStr`-parses the environment variable `name`.
/// Returns `None` when unset; an unparsable value warns once per
/// variable, increments the `obs.env.invalid` counter, and also
/// returns `None` so the caller falls back to its default.
pub fn var_parsed<T: FromStr>(name: &'static str) -> Option<T> {
    var_parsed_with(name, |raw| raw.parse().ok())
}

/// Raw environment read for `CA_OBS` itself, which cannot route
/// through [`var_parsed_with`]: its invalid-value counter would
/// re-enter the level check mid-initialisation. Kept here so
/// `ca_obs::env` stays the workspace's only environment-reading
/// module (pinned by the `env-read` lint rule).
#[allow(clippy::disallowed_methods)] // this module IS the sanctioned env reader
pub(crate) fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// [`var_parsed`] with a custom parse function, for variables with
/// non-`FromStr` syntax (e.g. `CA_SIM_PLAN_CACHE=off`).
#[allow(clippy::disallowed_methods)] // this module IS the sanctioned env reader
pub fn var_parsed_with<T>(name: &'static str, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            INVALID.fetch_add(1, Ordering::Relaxed);
            crate::counter_add("obs.env.invalid", 1);
            if crate::lock_recover(warned()).insert(name) {
                eprintln!("ca-obs: ignoring invalid {name}={raw:?} (falling back to default)");
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; keep these serialized.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unset_reads_none_without_warning() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("CA_OBS_TEST_UNSET");
        let before = invalid_env_count();
        assert_eq!(var_parsed::<usize>("CA_OBS_TEST_UNSET"), None);
        assert_eq!(invalid_env_count(), before);
    }

    #[test]
    fn valid_values_parse() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("CA_OBS_TEST_VALID", "42");
        assert_eq!(var_parsed::<usize>("CA_OBS_TEST_VALID"), Some(42));
        std::env::remove_var("CA_OBS_TEST_VALID");
    }

    #[test]
    fn invalid_values_counted_and_fall_back() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("CA_OBS_TEST_INVALID", "garbage");
        let before = invalid_env_count();
        assert_eq!(var_parsed::<usize>("CA_OBS_TEST_INVALID"), None);
        assert_eq!(var_parsed::<usize>("CA_OBS_TEST_INVALID"), None);
        assert_eq!(invalid_env_count(), before + 2);
        std::env::remove_var("CA_OBS_TEST_INVALID");
    }

    #[test]
    fn custom_parse_supports_keywords() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("CA_OBS_TEST_KEYWORD", "off");
        let v = var_parsed_with("CA_OBS_TEST_KEYWORD", |raw| {
            if raw.eq_ignore_ascii_case("off") {
                Some(0usize)
            } else {
                raw.parse().ok()
            }
        });
        assert_eq!(v, Some(0));
        std::env::remove_var("CA_OBS_TEST_KEYWORD");
    }
}

//! Small statistics helpers: means, standard errors, bootstrap CIs.

/// Arithmetic mean; panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for < 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Standard error of the mean.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Deterministic bootstrap confidence half-width for the mean:
/// resamples with a splitmix-style PRNG so results are reproducible
/// without pulling `rand` into this crate.
pub fn bootstrap_halfwidth(xs: &[f64], resamples: usize, seed: u64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..xs.len() {
                let idx = (next() % xs.len() as u64) as usize;
                acc += xs[idx];
            }
            acc / xs.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.total_cmp(b));
    let lo = means[(resamples as f64 * 0.16) as usize];
    let hi = means[(resamples as f64 * 0.84) as usize];
    (hi - lo) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_err_shrinks() {
        let a: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(std_err(&b) < std_err(&a));
    }

    #[test]
    fn bootstrap_reasonable_and_deterministic() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let h1 = bootstrap_halfwidth(&xs, 200, 7);
        let h2 = bootstrap_halfwidth(&xs, 200, 7);
        assert_eq!(h1, h2);
        let se = std_err(&xs);
        assert!(h1 > 0.3 * se && h1 < 3.0 * se, "h {h1} vs se {se}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(bootstrap_halfwidth(&[1.0], 10, 0), 0.0);
    }
}

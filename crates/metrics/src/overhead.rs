//! Error-mitigation sampling-overhead estimators (Secs. V-B, V-C).

use crate::fit::{fit_decay, DecayFit};

/// PEC sampling-overhead base from a layer fidelity: `γ = LF^{−2}`
/// (matches the paper's Fig. 8 numbers: LF 0.648 → γ ≈ 2.38,
/// 0.881 → γ ≈ 1.29).
pub fn gamma_from_layer_fidelity(lf: f64) -> f64 {
    assert!(lf > 0.0);
    lf.powi(-2)
}

/// Sampling-overhead ratio between two strategies for a circuit of
/// `layers` mitigated layers: `(γ_a / γ_b)^layers` — the exponential
/// amplification the paper quotes (×7 and ×30 at 10 layers).
pub fn overhead_ratio(gamma_a: f64, gamma_b: f64, layers: u32) -> f64 {
    (gamma_a / gamma_b).powi(layers as i32)
}

/// Global-depolarization overhead estimate used for Fig. 7d: fit the
/// ratio measured/ideal to `A·λ^d`; rescaling the signal by
/// `1/(A·λ^d)` multiplies its variance by `(A·λ^d)^{−2}`, which *is*
/// the sampling overhead at depth `d`.
#[derive(Clone, Copy, Debug)]
pub struct DepolarizationModel {
    /// The fitted decay.
    pub fit: DecayFit,
}

impl DepolarizationModel {
    /// Fits `measured(d) ≈ A·λ^d · ideal(d)` over depths where the
    /// ideal signal is non-negligible.
    pub fn fit(depths: &[f64], measured: &[f64], ideal: &[f64]) -> Self {
        let mut ds = Vec::new();
        let mut ratios = Vec::new();
        for ((&d, &m), &i) in depths.iter().zip(measured.iter()).zip(ideal.iter()) {
            if i.abs() > 0.1 {
                ds.push(d);
                ratios.push((m / i).clamp(-0.5, 1.5));
            }
        }
        assert!(ds.len() >= 2, "not enough usable depths");
        let mut fit = fit_decay(&ds, &ratios);
        // A fidelity ratio cannot physically exceed 1; clamping keeps
        // shot noise at shallow depths from producing overheads < 1.
        fit.lambda = fit.lambda.min(1.0);
        fit.a = fit.a.min(1.0);
        Self { fit }
    }

    /// Sampling overhead at depth `d`.
    pub fn overhead_at(&self, d: f64) -> f64 {
        let scale = self.fit.a * self.fit.lambda.powf(d);
        scale.powi(-2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_paper_numbers() {
        assert!((gamma_from_layer_fidelity(0.648) - 2.3815).abs() < 0.01);
        assert!((gamma_from_layer_fidelity(0.743) - 1.8116).abs() < 0.01);
        assert!((gamma_from_layer_fidelity(0.822) - 1.4801).abs() < 0.01);
        assert!((gamma_from_layer_fidelity(0.881) - 1.2885).abs() < 0.01);
    }

    #[test]
    fn ten_layer_amplification_matches_paper() {
        let g_dd = gamma_from_layer_fidelity(0.743);
        let g_cadd = gamma_from_layer_fidelity(0.822);
        let g_caec = gamma_from_layer_fidelity(0.881);
        let r1 = overhead_ratio(g_dd, g_cadd, 10);
        let r2 = overhead_ratio(g_dd, g_caec, 10);
        assert!((r1 - 7.0).abs() < 1.0, "~7×: {r1}");
        assert!((r2 - 30.0).abs() < 5.0, "~30×: {r2}");
    }

    #[test]
    fn depolarization_overhead_grows_with_depth() {
        let depths: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ideal = vec![1.0; 8];
        let measured: Vec<f64> = depths.iter().map(|d| 0.98 * 0.9f64.powf(*d)).collect();
        let model = DepolarizationModel::fit(&depths, &measured, &ideal);
        assert!((model.fit.lambda - 0.9).abs() < 0.01);
        assert!(model.overhead_at(8.0) > model.overhead_at(2.0));
    }
}

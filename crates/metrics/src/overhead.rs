//! Error-mitigation sampling-overhead estimators (Secs. V-B, V-C).

use crate::error::MetricsError;
use crate::fit::{fit_decay, DecayFit};
use crate::stats::{mean, std_err};

/// PEC sampling-overhead base from a layer fidelity: `γ = LF^{−2}`
/// (matches the paper's Fig. 8 numbers: LF 0.648 → γ ≈ 2.38,
/// 0.881 → γ ≈ 1.29). Degenerate fits (LF ≤ 0, NaN, ∞) yield a
/// structured [`MetricsError`] instead of a panic — decay fits on
/// very noisy data can and do produce them.
pub fn gamma_from_layer_fidelity(lf: f64) -> Result<f64, MetricsError> {
    if !lf.is_finite() || lf <= 0.0 {
        return Err(MetricsError::NonPositiveLayerFidelity { lf });
    }
    Ok(lf.powi(-2))
}

/// A sign-weighted (PEC) estimate: the rescaled mean of per-shot
/// `sign · outcome` products and its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MitigatedEstimate {
    /// The mitigated expectation `γ_total · mean(s_i · o_i)`.
    pub value: f64,
    /// Standard error of [`Self::value`] (the γ-amplified shot
    /// noise — the sampling-overhead cost made visible).
    pub std_err: f64,
    /// The total quasi-probability norm `γ_total` applied.
    pub gamma_total: f64,
    /// Number of shots averaged.
    pub shots: usize,
}

/// Combines per-shot signed outcomes (`s_i · o_i`, with `s_i = ±1`
/// the sampled quasi-probability sign and `o_i = ±1` the measured
/// eigenvalue) into the PEC estimator `γ_total · mean ± γ_total ·
/// stderr` (Sec. V-B): the variance estimator that makes γ the
/// *sampling overhead* — hitting a fixed precision costs `γ_total²`
/// more shots than an unmitigated average. An empty sample is a
/// structured [`MetricsError`], never a panic.
pub fn mitigated_estimate(
    signed_outcomes: &[f64],
    gamma_total: f64,
) -> Result<MitigatedEstimate, MetricsError> {
    if signed_outcomes.is_empty() {
        return Err(MetricsError::EmptySample);
    }
    Ok(MitigatedEstimate {
        value: gamma_total * mean(signed_outcomes),
        std_err: gamma_total * std_err(signed_outcomes),
        gamma_total,
        shots: signed_outcomes.len(),
    })
}

/// Shots needed for an absolute precision `epsilon` on a
/// PEC-mitigated expectation over `layers` mitigated layer
/// applications: `(γ^layers / ε)²` — the γ^layers exponential the
/// paper quotes (×7 and ×30 at 10 layers) turned into a shot budget.
pub fn pec_shots_for_precision(gamma: f64, layers: u32, epsilon: f64) -> f64 {
    (gamma.powi(layers as i32) / epsilon).powi(2)
}

/// Sampling-overhead ratio between two strategies for a circuit of
/// `layers` mitigated layers: `(γ_a / γ_b)^layers` — the exponential
/// amplification the paper quotes (×7 and ×30 at 10 layers).
pub fn overhead_ratio(gamma_a: f64, gamma_b: f64, layers: u32) -> f64 {
    (gamma_a / gamma_b).powi(layers as i32)
}

/// Global-depolarization overhead estimate used for Fig. 7d: fit the
/// ratio measured/ideal to `A·λ^d`; rescaling the signal by
/// `1/(A·λ^d)` multiplies its variance by `(A·λ^d)^{−2}`, which *is*
/// the sampling overhead at depth `d`.
#[derive(Clone, Copy, Debug)]
pub struct DepolarizationModel {
    /// The fitted decay.
    pub fit: DecayFit,
}

impl DepolarizationModel {
    /// Fits `measured(d) ≈ A·λ^d · ideal(d)` over depths where the
    /// ideal signal is non-negligible.
    pub fn fit(depths: &[f64], measured: &[f64], ideal: &[f64]) -> Self {
        let mut ds = Vec::new();
        let mut ratios = Vec::new();
        for ((&d, &m), &i) in depths.iter().zip(measured.iter()).zip(ideal.iter()) {
            if i.abs() > 0.1 {
                ds.push(d);
                ratios.push((m / i).clamp(-0.5, 1.5));
            }
        }
        assert!(ds.len() >= 2, "not enough usable depths");
        let mut fit = fit_decay(&ds, &ratios);
        // A fidelity ratio cannot physically exceed 1; clamping keeps
        // shot noise at shallow depths from producing overheads < 1.
        fit.lambda = fit.lambda.min(1.0);
        fit.a = fit.a.min(1.0);
        Self { fit }
    }

    /// Sampling overhead at depth `d`.
    pub fn overhead_at(&self, d: f64) -> f64 {
        let scale = self.fit.a * self.fit.lambda.powf(d);
        scale.powi(-2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_paper_numbers() {
        let g = |lf: f64| gamma_from_layer_fidelity(lf).unwrap();
        assert!((g(0.648) - 2.3815).abs() < 0.01);
        assert!((g(0.743) - 1.8116).abs() < 0.01);
        assert!((g(0.822) - 1.4801).abs() < 0.01);
        assert!((g(0.881) - 1.2885).abs() < 0.01);
    }

    #[test]
    fn degenerate_layer_fidelity_is_an_error_not_a_panic() {
        // Decay fits on pure noise can return 0, negative, or
        // non-finite λ products; each must surface as a structured
        // error.
        for lf in [0.0, -0.3, f64::NAN, f64::INFINITY] {
            let err = gamma_from_layer_fidelity(lf).unwrap_err();
            assert!(
                matches!(err, MetricsError::NonPositiveLayerFidelity { .. }),
                "{lf}: {err}"
            );
        }
        // The error names the offending value for finite inputs.
        let err = gamma_from_layer_fidelity(-0.3).unwrap_err();
        assert_eq!(err, MetricsError::NonPositiveLayerFidelity { lf: -0.3 });
    }

    #[test]
    fn mitigated_estimate_rescales_mean_and_error() {
        // 3/4 of signed outcomes +1, 1/4 −1 → mean 0.5; γ = 2 doubles
        // both the value and the shot-noise error bar.
        let signed = [1.0, 1.0, 1.0, -1.0];
        let est = mitigated_estimate(&signed, 2.0).unwrap();
        assert!((est.value - 1.0).abs() < 1e-12);
        assert!((est.std_err - 2.0 * std_err(&signed)).abs() < 1e-12);
        assert_eq!(est.shots, 4);
        assert_eq!(
            mitigated_estimate(&[], 2.0).unwrap_err(),
            crate::MetricsError::EmptySample
        );
    }

    #[test]
    fn shot_budget_amplifies_exponentially() {
        // γ = 1.81 vs 1.29 at 10 layers: the shot-budget ratio is the
        // square of the paper's ×30 signal-overhead factor.
        let dd = pec_shots_for_precision(1.8116, 10, 0.01);
        let caec = pec_shots_for_precision(1.2885, 10, 0.01);
        let ratio = dd / caec;
        assert!((ratio.sqrt() - 30.0).abs() < 5.0, "√ratio {}", ratio.sqrt());
        // γ = 1 (perfect channel) costs exactly the unmitigated budget.
        assert!((pec_shots_for_precision(1.0, 10, 0.01) - 1e4).abs() < 1e-6);
    }

    #[test]
    fn ten_layer_amplification_matches_paper() {
        let g_dd = gamma_from_layer_fidelity(0.743).unwrap();
        let g_cadd = gamma_from_layer_fidelity(0.822).unwrap();
        let g_caec = gamma_from_layer_fidelity(0.881).unwrap();
        let r1 = overhead_ratio(g_dd, g_cadd, 10);
        let r2 = overhead_ratio(g_dd, g_caec, 10);
        assert!((r1 - 7.0).abs() < 1.0, "~7×: {r1}");
        assert!((r2 - 30.0).abs() < 5.0, "~30×: {r2}");
    }

    #[test]
    fn depolarization_overhead_grows_with_depth() {
        let depths: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ideal = vec![1.0; 8];
        let measured: Vec<f64> = depths.iter().map(|d| 0.98 * 0.9f64.powf(*d)).collect();
        let model = DepolarizationModel::fit(&depths, &measured, &ideal);
        assert!((model.fit.lambda - 0.9).abs() < 0.01);
        assert!(model.overhead_at(8.0) > model.overhead_at(2.0));
    }
}

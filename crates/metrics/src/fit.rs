//! Curve fitting: exponential decay `F(d) = A·λ^d` (the workhorse of
//! Ramsey, layer-fidelity, and mitigation-overhead analysis) and plain
//! linear least squares.

/// Result of a decay fit `F(d) = A·λ^d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecayFit {
    /// Amplitude at d = 0.
    pub a: f64,
    /// Per-step decay factor λ ∈ (0, 1].
    pub lambda: f64,
    /// Root-mean-square residual of the fit.
    pub rmse: f64,
}

/// Ordinary least squares `y = m·x + b`; returns `(m, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least 2 points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let m = (n * sxy - sx * sy) / denom;
    let b = (sy - m * sx) / n;
    (m, b)
}

/// Fits `F(d) = A·λ^d` by log-linear regression on the positive
/// samples, refined with a few Gauss–Newton steps on the original
/// (non-log) least-squares objective so small/noisy tails don't skew
/// the result.
pub fn fit_decay(ds: &[f64], fs: &[f64]) -> DecayFit {
    assert_eq!(ds.len(), fs.len());
    // Initial guess from the log-domain fit over positive points.
    let pos: Vec<(f64, f64)> = ds
        .iter()
        .zip(fs.iter())
        .filter(|(_, &f)| f > 1e-6)
        .map(|(&d, &f)| (d, f.ln()))
        .collect();
    let (mut a, mut lambda) = if pos.len() >= 2 {
        let xs: Vec<f64> = pos.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pos.iter().map(|p| p.1).collect();
        let (m, b) = linear_fit(&xs, &ys);
        (b.exp(), m.exp().clamp(1e-6, 1.5))
    } else {
        (fs.first().copied().unwrap_or(1.0).max(1e-3), 0.9)
    };

    // Gauss–Newton on r_i = A·λ^d_i − f_i.
    for _ in 0..30 {
        let mut jtj = [[0.0f64; 2]; 2];
        let mut jtr = [0.0f64; 2];
        for (&d, &f) in ds.iter().zip(fs.iter()) {
            let model = a * lambda.powf(d);
            let r = model - f;
            let da = lambda.powf(d);
            let dl = if lambda > 0.0 {
                a * d * lambda.powf(d - 1.0)
            } else {
                0.0
            };
            jtj[0][0] += da * da;
            jtj[0][1] += da * dl;
            jtj[1][0] += da * dl;
            jtj[1][1] += dl * dl;
            jtr[0] += da * r;
            jtr[1] += dl * r;
        }
        let det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0];
        if det.abs() < 1e-15 {
            break;
        }
        let step_a = (jtj[1][1] * jtr[0] - jtj[0][1] * jtr[1]) / det;
        let step_l = (jtj[0][0] * jtr[1] - jtj[1][0] * jtr[0]) / det;
        a -= step_a;
        lambda -= step_l;
        lambda = lambda.clamp(1e-6, 1.5);
        a = a.clamp(1e-9, 10.0);
        if step_a.abs() < 1e-12 && step_l.abs() < 1e-12 {
            break;
        }
    }
    let rmse = (ds
        .iter()
        .zip(fs.iter())
        .map(|(&d, &f)| {
            let r = a * lambda.powf(d) - f;
            r * r
        })
        .sum::<f64>()
        / ds.len() as f64)
        .sqrt();
    DecayFit { a, lambda, rmse }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((b + 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_fit_exact_data() {
        let ds: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let fs: Vec<f64> = ds.iter().map(|d| 0.92 * 0.85f64.powf(*d)).collect();
        let fit = fit_decay(&ds, &fs);
        assert!((fit.a - 0.92).abs() < 1e-6, "{fit:?}");
        assert!((fit.lambda - 0.85).abs() < 1e-6, "{fit:?}");
        assert!(fit.rmse < 1e-9);
    }

    #[test]
    fn decay_fit_with_noise() {
        let ds: Vec<f64> = (0..20).map(|i| i as f64).collect();
        // Deterministic "noise".
        let fs: Vec<f64> = ds
            .iter()
            .enumerate()
            .map(|(i, d)| 0.9 * 0.8f64.powf(*d) + 0.01 * ((i as f64 * 1.7).sin()))
            .collect();
        let fit = fit_decay(&ds, &fs);
        assert!((fit.lambda - 0.8).abs() < 0.05, "{fit:?}");
    }

    #[test]
    fn decay_fit_handles_negative_tail() {
        // Shot noise can push the tail below zero; the fit must not
        // panic and should still find the bulk decay.
        let ds: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let mut fs: Vec<f64> = ds.iter().map(|d| 0.95 * 0.7f64.powf(*d)).collect();
        fs[13] = -0.01;
        fs[14] = -0.005;
        let fit = fit_decay(&ds, &fs);
        assert!((fit.lambda - 0.7).abs() < 0.05, "{fit:?}");
    }

    #[test]
    fn flat_data_gives_lambda_one() {
        let ds: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let fs = vec![0.99; 10];
        let fit = fit_decay(&ds, &fs);
        assert!((fit.lambda - 1.0).abs() < 1e-3, "{fit:?}");
    }
}

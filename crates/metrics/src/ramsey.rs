//! Ramsey-signal analysis: periodogram frequency extraction, used to
//! characterize always-on ZZ rates, Stark shifts (Fig. 4a), and
//! charge-parity splittings (Fig. 4b).

/// Power of the complex exponential component at frequency `f` in an
/// unevenly sampled signal (Lomb-style periodogram, simplified).
/// `ts` in the same units as `1/f`.
pub fn power_at(ts: &[f64], ys: &[f64], f: f64) -> f64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (&t, &y) in ts.iter().zip(ys.iter()) {
        let phase = 2.0 * std::f64::consts::PI * f * t;
        re += y * phase.cos();
        im += y * phase.sin();
    }
    (re * re + im * im) / (ts.len() as f64).powi(2)
}

/// Scans `[f_min, f_max]` on a dense grid and returns the frequency of
/// maximum power with one parabolic refinement step.
pub fn peak_frequency(ts: &[f64], ys: &[f64], f_min: f64, f_max: f64, steps: usize) -> f64 {
    assert!(steps >= 3 && f_max > f_min);
    let df = (f_max - f_min) / (steps - 1) as f64;
    let powers: Vec<f64> = (0..steps)
        .map(|i| power_at(ts, ys, f_min + i as f64 * df))
        .collect();
    let (imax, _) = powers
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap_or((0, &0.0));
    if imax == 0 || imax == steps - 1 {
        return f_min + imax as f64 * df;
    }
    // Parabolic interpolation around the grid maximum.
    let (pm, p0, pp) = (powers[imax - 1], powers[imax], powers[imax + 1]);
    let denom = pm - 2.0 * p0 + pp;
    let shift = if denom.abs() > 1e-30 {
        0.5 * (pm - pp) / denom
    } else {
        0.0
    };
    f_min + (imax as f64 + shift.clamp(-0.5, 0.5)) * df
}

/// Detects a beat note: given a signal `cos(2πν t)·cos(2πδ t)` the
/// spectrum splits into ν ± δ; returns `(center, split/2) = (ν, δ)`
/// from the two strongest distinct peaks.
pub fn beat_frequencies(
    ts: &[f64],
    ys: &[f64],
    f_min: f64,
    f_max: f64,
    steps: usize,
) -> (f64, f64) {
    let df = (f_max - f_min) / (steps - 1) as f64;
    let powers: Vec<f64> = (0..steps)
        .map(|i| power_at(ts, ys, f_min + i as f64 * df))
        .collect();
    // Local maxima sorted by power.
    let mut peaks: Vec<(f64, f64)> = (1..steps - 1)
        .filter(|&i| powers[i] > powers[i - 1] && powers[i] >= powers[i + 1])
        .map(|i| (f_min + i as f64 * df, powers[i]))
        .collect();
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    if peaks.len() < 2 {
        let f = peak_frequency(ts, ys, f_min, f_max, steps);
        return (f, 0.0);
    }
    let (f1, f2) = (peaks[0].0, peaks[1].0);
    let (lo, hi) = (f1.min(f2), f1.max(f2));
    ((lo + hi) / 2.0, (hi - lo) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(freq: f64, n: usize, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let ys: Vec<f64> = ts
            .iter()
            .map(|t| (2.0 * std::f64::consts::PI * freq * t).cos())
            .collect();
        (ts, ys)
    }

    #[test]
    fn finds_single_tone() {
        // 80 kHz tone sampled at 1 µs for 200 points (kHz·ms units):
        // use ns/kHz-consistent units: f in GHz? Use f in MHz, t in µs.
        let (ts, ys) = signal(0.08, 200, 1.0); // 0.08 MHz = 80 kHz, t in µs
        let f = peak_frequency(&ts, &ys, 0.01, 0.2, 400);
        assert!((f - 0.08).abs() < 0.002, "peak {f}");
    }

    #[test]
    fn resolves_frequency_shift() {
        let (ts, ya) = signal(0.05, 300, 1.0);
        let (_, yb) = signal(0.07, 300, 1.0);
        let fa = peak_frequency(&ts, &ya, 0.01, 0.15, 600);
        let fb = peak_frequency(&ts, &yb, 0.01, 0.15, 600);
        assert!(((fb - fa) - 0.02).abs() < 0.003, "shift {}", fb - fa);
    }

    #[test]
    fn beat_extraction() {
        // cos(2π·0.06t)·cos(2π·0.01t) → peaks at 0.05 and 0.07.
        let ts: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ys: Vec<f64> = ts
            .iter()
            .map(|t| {
                (2.0 * std::f64::consts::PI * 0.06 * t).cos()
                    * (2.0 * std::f64::consts::PI * 0.01 * t).cos()
            })
            .collect();
        let (center, half_split) = beat_frequencies(&ts, &ys, 0.02, 0.1, 800);
        assert!((center - 0.06).abs() < 0.003, "center {center}");
        assert!((half_split - 0.01).abs() < 0.003, "delta {half_split}");
    }
}

//! Structured analysis errors, mirroring `ca-sim::SimError`'s
//! conventions: degenerate inputs yield a typed error carrying the
//! offending value, never a panic.

use std::fmt;

/// Why an estimator could not be evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricsError {
    /// A layer fidelity must be positive (and finite) for
    /// `γ = LF^{−2}` to exist; degenerate decay fits can produce
    /// zero, negative, or non-finite values.
    NonPositiveLayerFidelity {
        /// The offending fitted layer fidelity.
        lf: f64,
    },
    /// A Pauli fidelity at or below zero cannot be inverted into a
    /// quasi-probability (1/f diverges or flips sign).
    NonPositivePauliFidelity {
        /// The offending fidelity.
        fidelity: f64,
    },
    /// An estimator was handed an empty sample.
    EmptySample,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MetricsError::NonPositiveLayerFidelity { lf } => write!(
                f,
                "layer fidelity must be positive and finite for γ = LF^-2; \
                 the fit produced {lf}"
            ),
            MetricsError::NonPositivePauliFidelity { fidelity } => write!(
                f,
                "Pauli fidelity must be positive to invert a channel; \
                 the fit produced {fidelity}"
            ),
            MetricsError::EmptySample => {
                write!(f, "estimator needs at least one sample")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_offending_value() {
        let e = MetricsError::NonPositiveLayerFidelity { lf: -0.25 };
        assert!(e.to_string().contains("-0.25"), "{e}");
        let e = MetricsError::NonPositivePauliFidelity { fidelity: 0.0 };
        assert!(e.to_string().contains('0'), "{e}");
    }
}

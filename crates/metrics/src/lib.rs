#![forbid(unsafe_code)]
//! # ca-metrics
//!
//! Analysis utilities shared by the experiments and benchmarks:
//! exponential-decay fitting (`F = A·λ^d`), periodogram frequency
//! extraction for Ramsey characterization, error-mitigation overhead
//! estimators (`γ = LF^{−2}`, the global-depolarization model of
//! Fig. 7d), and basic statistics.
//!
//! This crate is dependency-free (beyond `std`) so it can be reused by
//! any consumer of the workspace.

#![warn(missing_docs)]

pub mod error;
pub mod fit;
pub mod overhead;
pub mod ramsey;
pub mod stats;

pub use error::MetricsError;
pub use fit::{fit_decay, linear_fit, DecayFit};
pub use overhead::{
    gamma_from_layer_fidelity, mitigated_estimate, overhead_ratio, pec_shots_for_precision,
    DepolarizationModel, MitigatedEstimate,
};
pub use ramsey::{beat_frequencies, peak_frequency, power_at};
pub use stats::{bootstrap_halfwidth, mean, std_dev, std_err};

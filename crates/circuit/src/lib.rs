#![forbid(unsafe_code)]
//! # ca-circuit
//!
//! Quantum-circuit intermediate representation for the context-aware
//! compiling workspace: the hardware-native gate set of fixed-frequency
//! superconducting devices, Pauli algebra with Clifford conjugation,
//! single- and two-qubit decompositions (Eq. 4 Euler form and the
//! Fig. 1d canonical-gate Cartan circuit), stratification into
//! alternating 1q/2q layers (Fig. 2), and ASAP scheduling.
//!
//! This crate is a *substrate*: it knows nothing about devices, noise,
//! or suppression strategies. Those live in `ca-device`, `ca-sim`, and
//! `ca-core`.

#![warn(missing_docs)]

pub mod c64;
pub mod canonical;
pub mod circuit;
pub mod clifford;
pub mod draw;
pub mod euler;
pub mod gate;
pub mod instruction;
pub mod layered;
pub mod matrix;
pub mod pauli;
pub mod qasm;
pub mod schedule;

pub use c64::C64;
pub use circuit::Circuit;
pub use draw::{draw, draw_schedule};
pub use gate::Gate;
pub use instruction::{Condition, Instruction};
pub use layered::{stratify, Layer, LayerKind, LayeredCircuit};
pub use matrix::{Mat2, Mat4};
pub use pauli::{Pauli, PauliString};
pub use qasm::{parse, to_qasm3, QasmError};
pub use schedule::{
    schedule_alap, schedule_asap, Fnv, GateDurations, ScheduledCircuit, ScheduledInstruction,
};

//! The canonical two-qubit gate `Can(α,β,γ) = exp[i(αXX + βYY + γZZ)]`
//! (Eq. 5) and its hardware decompositions.
//!
//! The 3-CNOT circuit is the Cartan/Vatan–Williams construction shown
//! in Fig. 1d of the paper: the first qubit carries `Rz(2γ−π/2)` and
//! the second carries `Ry(π/2−2α)` and `Ry(2β−π/2)` between the CNOTs.
//! CNOTs are rewritten to the hardware-native ECR with the local
//! fixups proven in `gate::tests::cx_from_ecr_with_local_fixups`.

use crate::gate::Gate;
use crate::instruction::Instruction;
use crate::matrix::{Mat2, Mat4};
use std::f64::consts::FRAC_PI_2;

/// Decomposes `Can(α,β,γ)` on qubits `(a, b)` into exactly 3 CNOTs plus
/// single-qubit rotations (application order).
///
/// The identity (verified numerically in tests, up to global phase;
/// the sign conventions relative to the paper's Fig. 1d caption follow
/// from this workspace's `Rz(θ) = exp(−iθZ/2)` convention and CNOT
/// orientations — found by exhaustive search over the template family,
/// see `solver::search_template_variants`):
///
/// ```text
/// b: ─Rz(−π/2)──●──Ry(2α+π/2)──X──Ry(−2β−π/2)──●─────────────
///               │              │               │
/// a: ───────────X──Rz(−2γ−π/2)──●──────────────X───Rz(π/2)───
/// ```
pub fn can_to_cx(alpha: f64, beta: f64, gamma: f64, a: usize, b: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Rz(-FRAC_PI_2), [b]),
        Instruction::new(Gate::Cx, [b, a]),
        Instruction::new(Gate::Rz(-2.0 * gamma - FRAC_PI_2), [a]),
        Instruction::new(Gate::Ry(2.0 * alpha + FRAC_PI_2), [b]),
        Instruction::new(Gate::Cx, [a, b]),
        Instruction::new(Gate::Ry(-2.0 * beta - FRAC_PI_2), [b]),
        Instruction::new(Gate::Cx, [b, a]),
        Instruction::new(Gate::Rz(FRAC_PI_2), [a]),
    ]
}

/// Rewrites `CX(c,t)` into the native ECR basis:
/// `CX = e^{−iπ/4}·Rz(−π/2)_c·Rx(−π/2)_t·X_c·ECR(c,t)` —
/// returned in application order.
pub fn cx_to_ecr(c: usize, t: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Ecr, [c, t]),
        Instruction::new(Gate::X, [c]),
        Instruction::new(Gate::Rx(-FRAC_PI_2), [t]),
        Instruction::new(Gate::Rz(-FRAC_PI_2), [c]),
    ]
}

/// Decomposes `Can(α,β,γ)` into 3 ECR gates plus 1q gates.
pub fn can_to_ecr(alpha: f64, beta: f64, gamma: f64, a: usize, b: usize) -> Vec<Instruction> {
    let mut out = Vec::new();
    for instr in can_to_cx(alpha, beta, gamma, a, b) {
        if instr.gate == Gate::Cx {
            out.extend(cx_to_ecr(instr.qubits[0], instr.qubits[1]));
        } else {
            out.push(instr);
        }
    }
    out
}

/// Absorbs an `Rzz(θ)` coherent error adjacent to a canonical gate:
/// `Can(α,β,γ)·Rzz(θ) = Rzz(θ)·Can(α,β,γ) = Can(α,β,γ−θ/2)` —
/// zero-overhead compensation (Sec. II-C).
pub fn absorb_rzz_into_can(gate: Gate, theta: f64) -> Gate {
    match gate {
        Gate::Can { alpha, beta, gamma } => Gate::Can {
            alpha,
            beta,
            gamma: gamma - theta / 2.0,
        },
        Gate::Rzz(t) => Gate::Rzz(t + theta),
        _ => panic!("cannot absorb Rzz into {}", gate.name()), // ca-lint: allow(panic) -- canonicalizer precondition: absorb sites are Rz/Rzz by pass construction
    }
}

/// Composes a fragment of 1q/2q instructions acting only on qubits
/// `a` (low bit) and `b` (high bit) into a 4×4 unitary. Test/analysis
/// helper.
pub fn fragment_unitary(instrs: &[Instruction], a: usize, b: usize) -> Mat4 {
    let mut m = Mat4::identity();
    for i in instrs {
        let gm = match i.qubits.as_slice() {
            [q] => {
                let u = i
                    .gate
                    .matrix1()
                    .unwrap_or_else(|| panic!("{} not unitary", i.gate.name())); // ca-lint: allow(panic) -- gates reaching canonical form carry a 1q unitary by pass construction
                if *q == a {
                    Mat4::kron(&Mat2::identity(), &u)
                } else if *q == b {
                    Mat4::kron(&u, &Mat2::identity())
                } else {
                    panic!("qubit {q} outside fragment ({a},{b})") // ca-lint: allow(panic) -- fragment bounds validated by the caller; out-of-range qubit is a pass bug
                }
            }
            [q0, q1] => {
                let u = i
                    .gate
                    .matrix2()
                    .unwrap_or_else(|| panic!("{} not unitary", i.gate.name())); // ca-lint: allow(panic) -- gates reaching canonical form carry a 2q unitary by pass construction
                if (*q0, *q1) == (a, b) {
                    u
                } else if (*q0, *q1) == (b, a) {
                    u.swap_qubits()
                } else {
                    panic!("qubits ({q0},{q1}) outside fragment ({a},{b})") // ca-lint: allow(panic) -- fragment bounds validated by the caller; out-of-range qubit is a pass bug
                }
            }
            _ => panic!("unsupported arity"), // ca-lint: allow(panic) -- arity validated before fragment extraction
        };
        m = gm.mul(&m);
    }
    m
}

/// The Heisenberg-step canonical angles for couplings `(jx, jy, jz)`
/// and time step `t`: `α = −Jx·t/2` etc. (Sec. V-B).
pub fn heisenberg_can_angles(jx: f64, jy: f64, jz: f64, t: f64) -> (f64, f64, f64) {
    (-jx * t / 2.0, -jy * t / 2.0, -jz * t / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::canonical_matrix;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-9;

    fn check_can(alpha: f64, beta: f64, gamma: f64) {
        let target = canonical_matrix(alpha, beta, gamma);
        let circ = can_to_cx(alpha, beta, gamma, 0, 1);
        let built = fragment_unitary(&circ, 0, 1);
        assert!(
            built.approx_eq_up_to_phase(&target, TOL),
            "can_to_cx mismatch at ({alpha},{beta},{gamma})"
        );
        assert_eq!(circ.iter().filter(|i| i.gate == Gate::Cx).count(), 3);
    }

    #[test]
    fn three_cnot_template_matches_matrix() {
        check_can(0.0, 0.0, 0.0);
        check_can(0.3, 0.0, 0.0);
        check_can(0.0, 0.4, 0.0);
        check_can(0.0, 0.0, -0.7);
        check_can(0.25, -0.45, 0.15);
        check_can(PI / 4.0, PI / 4.0, PI / 4.0);
        check_can(-1.2, 0.9, 2.3);
    }

    #[test]
    fn ecr_decomposition_matches_matrix() {
        let (a, b, g) = (0.2, -0.3, 0.55);
        let target = canonical_matrix(a, b, g);
        let circ = can_to_ecr(a, b, g, 0, 1);
        let built = fragment_unitary(&circ, 0, 1);
        assert!(built.approx_eq_up_to_phase(&target, TOL));
        assert_eq!(circ.iter().filter(|i| i.gate == Gate::Ecr).count(), 3);
    }

    #[test]
    fn cx_to_ecr_identity() {
        let built = fragment_unitary(&cx_to_ecr(0, 1), 0, 1);
        assert!(built.approx_eq_up_to_phase(&Gate::Cx.matrix2().unwrap(), TOL));
        // Reversed orientation too.
        let built_rev = fragment_unitary(&cx_to_ecr(1, 0), 0, 1);
        assert!(built_rev.approx_eq_up_to_phase(&Gate::Cx.matrix2().unwrap().swap_qubits(), TOL));
    }

    #[test]
    fn rzz_absorption_is_exact() {
        let (a, b, g) = (0.31, 0.12, -0.44);
        let theta = 0.27;
        let absorbed = absorb_rzz_into_can(
            Gate::Can {
                alpha: a,
                beta: b,
                gamma: g,
            },
            theta,
        );
        let target = Gate::Rzz(theta)
            .matrix2()
            .unwrap()
            .mul(&canonical_matrix(a, b, g));
        assert!(absorbed
            .matrix2()
            .unwrap()
            .approx_eq_up_to_phase(&target, TOL));
        // Rzz commutes with Can, so before/after orders agree.
        let target2 = canonical_matrix(a, b, g).mul(&Gate::Rzz(theta).matrix2().unwrap());
        assert!(absorbed
            .matrix2()
            .unwrap()
            .approx_eq_up_to_phase(&target2, TOL));
    }

    #[test]
    fn rzz_absorbs_into_rzz() {
        let fused = absorb_rzz_into_can(Gate::Rzz(0.5), 0.2);
        assert_eq!(fused, Gate::Rzz(0.7));
    }

    #[test]
    fn heisenberg_angles_convention() {
        let (a, b, g) = heisenberg_can_angles(1.0, 1.0, 1.0, 0.5);
        assert!((a + 0.25).abs() < 1e-12 && (b + 0.25).abs() < 1e-12 && (g + 0.25).abs() < 1e-12);
    }

    #[test]
    fn fragment_unitary_respects_orientation() {
        // CX with control = high qubit via fragment on (0, 1).
        let instr = [Instruction::new(Gate::Cx, [1, 0])];
        let m = fragment_unitary(&instr, 0, 1);
        // Control = qubit 1 (high bit): flips low bit when high set:
        // |01⟩(idx 2) ↔ |11⟩(idx 3).
        assert!(m.0[3][2].approx_eq(crate::c64::ONE, TOL));
        assert!(m.0[0][0].approx_eq(crate::c64::ONE, TOL));
    }
}

#[cfg(test)]
mod solver {
    use super::*;
    use crate::gate::canonical_matrix;

    #[test]
    #[ignore]
    fn search_template_variants() {
        let (alpha, beta, gamma) = (0.23, -0.41, 0.57);
        let target = canonical_matrix(alpha, beta, gamma);
        let mut hits = Vec::new();
        for swap in [false, true] {
            let (a, b) = if swap { (1usize, 0usize) } else { (0, 1) };
            for sg in [1.0, -1.0] {
                for og in [-FRAC_PI_2, FRAC_PI_2] {
                    for sa in [1.0, -1.0] {
                        for oa in [-FRAC_PI_2, FRAC_PI_2] {
                            for sb in [1.0, -1.0] {
                                for ob in [-FRAC_PI_2, FRAC_PI_2] {
                                    for spre in [1.0, -1.0] {
                                        for spost in [1.0, -1.0] {
                                            let circ = vec![
                                                Instruction::new(Gate::Rz(spre * FRAC_PI_2), [b]),
                                                Instruction::new(Gate::Cx, [b, a]),
                                                Instruction::new(
                                                    Gate::Rz(sg * 2.0 * gamma + og),
                                                    [a],
                                                ),
                                                Instruction::new(
                                                    Gate::Ry(sa * 2.0 * alpha + oa),
                                                    [b],
                                                ),
                                                Instruction::new(Gate::Cx, [a, b]),
                                                Instruction::new(
                                                    Gate::Ry(sb * 2.0 * beta + ob),
                                                    [b],
                                                ),
                                                Instruction::new(Gate::Cx, [b, a]),
                                                Instruction::new(Gate::Rz(spost * FRAC_PI_2), [a]),
                                            ];
                                            let built = fragment_unitary(&circ, 0, 1);
                                            if built.approx_eq_up_to_phase(&target, 1e-9) {
                                                hits.push((
                                                    swap, sg, og, sa, oa, sb, ob, spre, spost,
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        println!("HITS: {hits:?}");
        assert!(!hits.is_empty());
    }
}

//! Pauli operators and Pauli strings with sign tracking.
//!
//! Used by the twirling pass (random Pauli insertion and propagation
//! through Clifford layers), by CA-EC (commute/anti-commute sign
//! bookkeeping of Z/ZZ compensations through twirl Paulis), and by the
//! layer-fidelity protocol (Pauli-basis preparation/measurement).

use crate::gate::Gate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// All four Paulis, in index order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Index in `ALL` (I=0, X=1, Y=2, Z=3).
    pub fn index(self) -> usize {
        match self {
            Pauli::I => 0,
            Pauli::X => 1,
            Pauli::Y => 2,
            Pauli::Z => 3,
        }
    }

    /// Inverse of [`Pauli::index`].
    pub fn from_index(i: usize) -> Pauli {
        Pauli::ALL[i]
    }

    /// True when `self` and `other` commute (identity commutes with
    /// everything; distinct non-identity Paulis anticommute).
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }

    /// The gate implementing this Pauli.
    pub fn gate(self) -> Gate {
        match self {
            Pauli::I => Gate::I,
            Pauli::X => Gate::X,
            Pauli::Y => Gate::Y,
            Pauli::Z => Gate::Z,
        }
    }

    /// Product `self · other` as `(sign_power_of_i, pauli)`: the result
    /// is `i^k · P`.
    #[allow(clippy::should_implement_trait)] // returns a phase alongside the Pauli
    pub fn mul(self, other: Pauli) -> (u8, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (0, p),
            (X, X) | (Y, Y) | (Z, Z) => (0, I),
            (X, Y) => (1, Z),
            (Y, X) => (3, Z),
            (Y, Z) => (1, X),
            (Z, Y) => (3, X),
            (Z, X) => (1, Y),
            (X, Z) => (3, Y),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// An n-qubit Pauli string with a ±1 sign.
///
/// Pauli strings conjugated by Clifford unitaries stay Pauli strings
/// with a ±1 sign (they are Hermitian, so no ±i arises).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauliString {
    /// Per-qubit Pauli factors; index = qubit.
    pub paulis: Vec<Pauli>,
    /// Overall sign (+1 or −1).
    pub sign: i8,
}

impl PauliString {
    /// The all-identity string.
    pub fn identity(n: usize) -> Self {
        Self {
            paulis: vec![Pauli::I; n],
            sign: 1,
        }
    }

    /// Builds from per-qubit factors with positive sign.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        Self { paulis, sign: 1 }
    }

    /// A single-qubit Pauli embedded in an n-qubit string.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        let mut s = Self::identity(n);
        s.paulis[q] = p;
        s
    }

    /// Weight: number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// True when all factors are identity.
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// True when `self` and `other` commute as operators: they commute
    /// iff the number of positions with anticommuting factors is even.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let anti = self
            .paulis
            .iter()
            .zip(other.paulis.iter())
            .filter(|(a, b)| !a.commutes_with(**b))
            .count();
        anti % 2 == 0
    }

    /// Product of two strings; panics unless lengths match. The result
    /// tracks only the ±1 part of the phase and asserts that the total
    /// `i^k` phase is real (true whenever the product is Hermitian,
    /// which is all this library needs).
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.paulis.len(), other.paulis.len());
        let mut k: u8 = 0;
        let mut out = Vec::with_capacity(self.paulis.len());
        for (a, b) in self.paulis.iter().zip(other.paulis.iter()) {
            let (ki, p) = a.mul(*b);
            k = (k + ki) % 4;
            out.push(p);
        }
        assert!(k.is_multiple_of(2), "non-real phase i^{k} in Pauli product");
        let sign = self.sign * other.sign * if k == 2 { -1 } else { 1 };
        PauliString { paulis: out, sign }
    }

    /// Parses a string like `"XIZY"` (leftmost char = qubit 0) with an
    /// optional leading `+`/`-`.
    pub fn parse(s: &str) -> Option<PauliString> {
        let (sign, body) = match s.as_bytes().first()? {
            b'+' => (1, &s[1..]),
            b'-' => (-1, &s[1..]),
            _ => (1, s),
        };
        let mut paulis = Vec::with_capacity(body.len());
        for c in body.chars() {
            paulis.push(match c {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                _ => return None,
            });
        }
        Some(PauliString { paulis, sign })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign < 0 {
            write!(f, "-")?;
        }
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pauli_products() {
        assert_eq!(Pauli::X.mul(Pauli::Y), (1, Pauli::Z));
        assert_eq!(Pauli::Y.mul(Pauli::X), (3, Pauli::Z));
        assert_eq!(Pauli::Z.mul(Pauli::Z), (0, Pauli::I));
    }

    #[test]
    fn commutation_rules() {
        assert!(Pauli::I.commutes_with(Pauli::X));
        assert!(Pauli::X.commutes_with(Pauli::X));
        assert!(!Pauli::X.commutes_with(Pauli::Z));
    }

    #[test]
    fn string_commutation_even_overlap() {
        let xx = PauliString::parse("XX").unwrap();
        let zz = PauliString::parse("ZZ").unwrap();
        let zi = PauliString::parse("ZI").unwrap();
        // XX vs ZZ: two anticommuting positions → commute.
        assert!(xx.commutes_with(&zz));
        // XX vs ZI: one anticommuting position → anticommute.
        assert!(!xx.commutes_with(&zi));
    }

    #[test]
    fn string_product_signs() {
        // (X⊗X)·(Y⊗Y) = (XY)⊗(XY) = (iZ)(iZ) = -Z⊗Z.
        let xx = PauliString::parse("XX").unwrap();
        let yy = PauliString::parse("YY").unwrap();
        let prod = xx.mul(&yy);
        assert_eq!(
            prod,
            PauliString {
                paulis: vec![Pauli::Z, Pauli::Z],
                sign: -1
            }
        );
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["XIZY", "-ZZ", "+IY"] {
            let p = PauliString::parse(s).unwrap();
            let shown = p.to_string();
            let again = PauliString::parse(&shown).unwrap();
            assert_eq!(p, again);
        }
        assert!(PauliString::parse("XQ").is_none());
    }

    #[test]
    fn weight_counts_nonidentity() {
        assert_eq!(PauliString::parse("IXIZ").unwrap().weight(), 2);
        assert!(PauliString::identity(4).is_identity());
    }

    #[test]
    fn single_embeds() {
        let s = PauliString::single(3, 1, Pauli::Y);
        assert_eq!(s.to_string(), "IYI");
    }
}

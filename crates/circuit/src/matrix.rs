//! Small dense complex matrices (2×2 and 4×4) used for gate unitaries,
//! decomposition checks, and Clifford conjugation tables.

use crate::c64::{C64, ONE, ZERO};

/// A 2×2 complex matrix in row-major order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2(pub [[C64; 2]; 2]);

/// A 4×4 complex matrix in row-major order.
///
/// For a two-qubit gate acting on instruction qubits `(a, b)` (in list
/// order), the basis index is `i = bit(a) + 2·bit(b)`: the *first*
/// listed qubit is the low-order bit. [`Mat4::kron`] follows the same
/// convention: `kron(second, first)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4(pub [[C64; 4]; 4]);

impl Mat2 {
    /// The identity matrix.
    pub const fn identity() -> Self {
        Mat2([[ONE, ZERO], [ZERO, ONE]])
    }

    /// The zero matrix.
    pub const fn zero() -> Self {
        Mat2([[ZERO; 2]; 2])
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = ZERO;
                for k in 0..2 {
                    acc += self.0[i][k] * rhs.0[k][j];
                }
                out.0[i][j] = acc;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                out.0[i][j] = self.0[j][i].conj();
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> Mat2 {
        let mut out = *self;
        for row in out.0.iter_mut() {
            for e in row.iter_mut() {
                *e *= s;
            }
        }
        out
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(r, s)| r.iter().zip(s.iter()).all(|(a, b)| a.approx_eq(*b, tol)))
    }

    /// Equality up to a global phase: true if `self ≈ e^{iφ}·other` for
    /// some φ.
    pub fn approx_eq_up_to_phase(&self, other: &Mat2, tol: f64) -> bool {
        match global_phase_between(
            self.0.iter().flatten().copied(),
            other.0.iter().flatten().copied(),
        ) {
            Some(phase) => self.approx_eq(&other.scale(phase), tol),
            None => false,
        }
    }

    /// True when `self · self† ≈ I`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Mat2::identity(), tol)
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.0[0][0] * self.0[1][1] - self.0[0][1] * self.0[1][0]
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const fn identity() -> Self {
        let mut m = [[ZERO; 4]; 4];
        m[0][0] = ONE;
        m[1][1] = ONE;
        m[2][2] = ONE;
        m[3][3] = ONE;
        Mat4(m)
    }

    /// The zero matrix.
    pub const fn zero() -> Self {
        Mat4([[ZERO; 4]; 4])
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = ZERO;
                for k in 0..4 {
                    acc += self.0[i][k] * rhs.0[k][j];
                }
                out.0[i][j] = acc;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.0[i][j] = self.0[j][i].conj();
            }
        }
        out
    }

    /// Kronecker product. `high` acts on the high-order (second listed)
    /// qubit, `low` on the low-order (first listed) qubit.
    pub fn kron(high: &Mat2, low: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for hi in 0..2 {
            for hj in 0..2 {
                for li in 0..2 {
                    for lj in 0..2 {
                        out.0[2 * hi + li][2 * hj + lj] = high.0[hi][hj] * low.0[li][lj];
                    }
                }
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> Mat4 {
        let mut out = *self;
        for row in out.0.iter_mut() {
            for e in row.iter_mut() {
                *e *= s;
            }
        }
        out
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(r, s)| r.iter().zip(s.iter()).all(|(a, b)| a.approx_eq(*b, tol)))
    }

    /// Equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Mat4, tol: f64) -> bool {
        match global_phase_between(
            self.0.iter().flatten().copied(),
            other.0.iter().flatten().copied(),
        ) {
            Some(phase) => self.approx_eq(&other.scale(phase), tol),
            None => false,
        }
    }

    /// True when `self · self† ≈ I`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Mat4::identity(), tol)
    }

    /// Swaps the roles of the two qubits (permutes basis indices 1↔2).
    pub fn swap_qubits(&self) -> Mat4 {
        let perm = [0usize, 2, 1, 3];
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.0[perm[i]][perm[j]] = self.0[i][j];
            }
        }
        out
    }
}

/// Finds the phase `e^{iφ}` such that `a ≈ e^{iφ}·b`, keyed off the
/// largest-magnitude entry of `b`. Returns `None` if `b` is all zeros.
fn global_phase_between(a: impl Iterator<Item = C64>, b: impl Iterator<Item = C64>) -> Option<C64> {
    let pairs: Vec<(C64, C64)> = a.zip(b).collect();
    let (pa, pb) = pairs
        .iter()
        .max_by(|x, y| x.1.norm_sqr().total_cmp(&y.1.norm_sqr()))?;
    if pb.norm_sqr() < 1e-24 {
        return None;
    }
    let ratio = *pa / *pb;
    // Normalize to a pure phase so tiny magnitude drift does not leak in.
    let m = ratio.abs();
    if m < 1e-12 {
        return None;
    }
    Some(ratio.scale(1.0 / m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64::I;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> Mat2 {
        Mat2([[ZERO, ONE], [ONE, ZERO]])
    }

    fn pauli_z() -> Mat2 {
        Mat2([[ONE, ZERO], [ZERO, C64::real(-1.0)]])
    }

    #[test]
    fn mat2_identity_is_unit() {
        let x = pauli_x();
        assert!(x.mul(&Mat2::identity()).approx_eq(&x, TOL));
        assert!(Mat2::identity().mul(&x).approx_eq(&x, TOL));
    }

    #[test]
    fn pauli_algebra_xz() {
        // XZ = -iY, ZX = iY → XZ = -ZX.
        let xz = pauli_x().mul(&pauli_z());
        let zx = pauli_z().mul(&pauli_x());
        assert!(xz.approx_eq(&zx.scale(C64::real(-1.0)), TOL));
    }

    #[test]
    fn mat2_unitarity() {
        assert!(pauli_x().is_unitary(TOL));
        let not_unitary = Mat2([[ONE, ONE], [ZERO, ONE]]);
        assert!(!not_unitary.is_unitary(TOL));
    }

    #[test]
    fn phase_equality_detects_global_phase() {
        let x = pauli_x();
        let ix = x.scale(I);
        assert!(x.approx_eq_up_to_phase(&ix, TOL));
        assert!(!x.approx_eq(&ix, TOL));
        assert!(!x.approx_eq_up_to_phase(&pauli_z(), TOL));
    }

    #[test]
    fn kron_ordering_first_qubit_is_low_bit() {
        // Z on the first (low) qubit, identity on the second:
        // diag(+1, -1, +1, -1) under index = bit(first) + 2·bit(second).
        let m = Mat4::kron(&Mat2::identity(), &pauli_z());
        for i in 0..4 {
            let expect = if i & 1 == 0 { 1.0 } else { -1.0 };
            assert!(m.0[i][i].approx_eq(C64::real(expect), TOL));
        }
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let a = pauli_x();
        let b = pauli_z();
        let lhs = Mat4::kron(&a, &b).mul(&Mat4::kron(&b, &a));
        let rhs = Mat4::kron(&a.mul(&b), &b.mul(&a));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn swap_qubits_swaps_kron_factors() {
        let m = Mat4::kron(&pauli_x(), &pauli_z());
        let swapped = m.swap_qubits();
        assert!(swapped.approx_eq(&Mat4::kron(&pauli_z(), &pauli_x()), TOL));
    }

    #[test]
    fn mat4_adjoint_involutive() {
        let m = Mat4::kron(&pauli_x(), &Mat2::identity());
        assert!(m.adjoint().adjoint().approx_eq(&m, TOL));
    }
}

//! ASAP scheduling of circuits onto a timeline with device durations.
//!
//! The scheduled form is the input to both compiler passes: CA-DD scans
//! it for joint idle windows (explicit `Delay` instructions), and the
//! simulator walks it segment by segment to accumulate context-aware
//! crosstalk.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Instruction;
use serde::{Deserialize, Serialize};

/// Gate durations in nanoseconds.
///
/// Defaults mirror the fixed-frequency IBM devices of the paper:
/// virtual `Rz` are free, 1q pulses ~40 ns, ECR ~480 ns (a multiple of
/// 4 so the internal echo flip points land on exact segment
/// boundaries), measurement 4 µs (Sec. V-D), feed-forward 1.15 µs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateDurations {
    /// Physical single-qubit pulse duration (Sx, X, Rx, Ry, H, U...).
    pub one_qubit: f64,
    /// Two-qubit gate duration (Ecr, Cx, Cz, Rzz at full length).
    pub two_qubit: f64,
    /// Native canonical-gate duration (3 ECR + interleaved 1q pulses).
    pub canonical: f64,
    /// Measurement duration.
    pub measure: f64,
    /// Reset duration.
    pub reset: f64,
    /// Classical feed-forward latency added before conditional gates.
    pub feedforward: f64,
}

impl Default for GateDurations {
    fn default() -> Self {
        Self {
            one_qubit: 40.0,
            two_qubit: 480.0,
            canonical: 3.0 * 480.0 + 2.0 * 40.0,
            measure: 4000.0,
            reset: 800.0,
            feedforward: 1150.0,
        }
    }
}

impl GateDurations {
    /// Duration of a gate in nanoseconds.
    ///
    /// `Rzz(θ)` uses *pulse stretching* (Sec. IV-B): a native
    /// stretched-CR implementation whose duration scales with the
    /// rotation angle, far cheaper than a full two-CNOT construction —
    /// this is how CA-EC keeps explicit compensations inexpensive.
    pub fn duration_of(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Delay(ns) => *ns,
            Gate::Barrier => 0.0,
            Gate::Measure => self.measure,
            Gate::Reset => self.reset,
            g if g.is_virtual() => 0.0,
            Gate::Can { .. } => self.canonical,
            Gate::Rzz(t) => {
                let w = t.abs().rem_euclid(2.0 * std::f64::consts::PI);
                let w = w.min(2.0 * std::f64::consts::PI - w);
                (self.two_qubit * w / std::f64::consts::PI).max(2.0 * self.one_qubit)
            }
            g if g.num_qubits() == 2 => self.two_qubit,
            _ => self.one_qubit,
        }
    }

    /// The fraction of the full two-qubit gate duration a gate uses —
    /// the simulator scales depolarizing error by this for stretched
    /// pulses.
    pub fn two_qubit_error_scale(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Rzz(_) => (self.duration_of(gate) / self.two_qubit).min(1.0),
            _ => 1.0,
        }
    }
}

/// An instruction placed on the timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledInstruction {
    /// The instruction.
    pub instruction: Instruction,
    /// Start time in nanoseconds.
    pub t0: f64,
    /// Duration in nanoseconds.
    pub duration: f64,
}

impl ScheduledInstruction {
    /// End time.
    pub fn t1(&self) -> f64 {
        self.t0 + self.duration
    }
}

/// A circuit scheduled onto a timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledCircuit {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of classical bits.
    pub num_clbits: usize,
    /// Items ordered by start time (ties keep program order).
    pub items: Vec<ScheduledInstruction>,
    /// Total circuit duration.
    pub duration: f64,
    /// The durations used to build the schedule.
    pub durations: GateDurations,
}

/// Schedules a circuit as-soon-as-possible.
///
/// Barriers synchronise their qubits. Conditional gates additionally
/// wait for the measurement writing their classical bit plus the
/// feed-forward latency.
pub fn schedule_asap(circuit: &Circuit, durations: GateDurations) -> ScheduledCircuit {
    let mut qubit_free = vec![0.0f64; circuit.num_qubits];
    let mut clbit_ready = vec![0.0f64; circuit.num_clbits.max(1)];
    let mut items = Vec::with_capacity(circuit.len());
    for instr in &circuit.instructions {
        if instr.gate == Gate::Barrier {
            let t = instr
                .qubits
                .iter()
                .map(|&q| qubit_free[q])
                .fold(0.0, f64::max);
            for &q in &instr.qubits {
                qubit_free[q] = t;
            }
            items.push(ScheduledInstruction {
                instruction: instr.clone(),
                t0: t,
                duration: 0.0,
            });
            continue;
        }
        let mut t0 = instr
            .qubits
            .iter()
            .map(|&q| qubit_free[q])
            .fold(0.0, f64::max);
        if let Some(cond) = instr.condition {
            t0 = t0.max(clbit_ready[cond.clbit] + durations.feedforward);
        }
        // Merged gates ride inside a neighbouring pulse: zero width.
        let d = if instr.merged {
            0.0
        } else {
            durations.duration_of(&instr.gate)
        };
        for &q in &instr.qubits {
            qubit_free[q] = t0 + d;
        }
        if instr.gate == Gate::Measure {
            if let Some(c) = instr.clbit {
                clbit_ready[c] = t0 + d;
            }
        }
        items.push(ScheduledInstruction {
            instruction: instr.clone(),
            t0,
            duration: d,
        });
    }
    let duration = qubit_free.iter().copied().fold(0.0, f64::max);
    let mut sc = ScheduledCircuit {
        num_qubits: circuit.num_qubits,
        num_clbits: circuit.num_clbits,
        items,
        duration,
        durations,
    };
    sc.sort_items();
    sc
}

/// Schedules a circuit as-late-as-possible: every instruction starts
/// at the latest time consistent with its dependencies and the total
/// (ASAP-equal) duration. ALAP packing moves idle periods to the
/// *front* of each qubit's timeline, which often consolidates joint
/// idle windows for DD.
///
/// Restricted to static circuits: feed-forward requires causal
/// ordering against measurement times that the reverse pass does not
/// model, so circuits with conditions fall back to ASAP.
pub fn schedule_alap(circuit: &Circuit, durations: GateDurations) -> ScheduledCircuit {
    if circuit.instructions.iter().any(|i| i.condition.is_some()) {
        return schedule_asap(circuit, durations);
    }
    // Mirror trick: ASAP-schedule the reversed instruction list, then
    // flip the time axis.
    let mut reversed = Circuit::new(circuit.num_qubits, circuit.num_clbits);
    for instr in circuit.instructions.iter().rev() {
        reversed.push(instr.clone());
    }
    let rev = schedule_asap(&reversed, durations);
    let total = rev.duration;
    let mut items: Vec<ScheduledInstruction> = rev
        .items
        .into_iter()
        .map(|si| {
            let t0 = total - si.t0 - si.duration;
            ScheduledInstruction { t0, ..si }
        })
        .collect();
    items.sort_by(|a, b| a.t0.total_cmp(&b.t0));
    ScheduledCircuit {
        num_qubits: circuit.num_qubits,
        num_clbits: circuit.num_clbits,
        items,
        duration: total,
        durations,
    }
}

impl ScheduledCircuit {
    fn sort_items(&mut self) {
        self.items.sort_by(|a, b| a.t0.total_cmp(&b.t0));
    }

    /// Items whose window overlaps `[t0, t1)` and act on `q`.
    pub fn items_on_qubit_in(&self, q: usize, t0: f64, t1: f64) -> Vec<&ScheduledInstruction> {
        self.items
            .iter()
            .filter(|si| {
                si.instruction.acts_on(q)
                    && si.instruction.gate != Gate::Barrier
                    && si.t0 < t1
                    && si.t1() > t0
            })
            .collect()
    }

    /// Per-qubit idle windows of strictly positive length, including
    /// leading/trailing idles, ignoring `Delay` (delays count as idle).
    pub fn idle_windows(&self, q: usize) -> Vec<(f64, f64)> {
        let mut busy: Vec<(f64, f64)> = self
            .items
            .iter()
            .filter(|si| {
                si.instruction.acts_on(q)
                    && !matches!(si.instruction.gate, Gate::Delay(_) | Gate::Barrier)
                    && si.duration > 0.0
            })
            .map(|si| (si.t0, si.t1()))
            .collect();
        busy.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut windows = Vec::new();
        let mut cursor = 0.0;
        for (s, e) in busy {
            if s > cursor + 1e-9 {
                windows.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if self.duration > cursor + 1e-9 {
            windows.push((cursor, self.duration));
        }
        windows
    }

    /// Replaces implicit idle gaps with explicit `Delay` instructions
    /// so downstream passes can see and rewrite them.
    pub fn with_explicit_delays(&self) -> ScheduledCircuit {
        let mut out = self.clone();
        // Drop existing delay items to avoid double counting, then
        // re-derive every gap.
        out.items
            .retain(|si| !matches!(si.instruction.gate, Gate::Delay(_)));
        let mut extra = Vec::new();
        for q in 0..self.num_qubits {
            for (s, e) in out.idle_windows(q) {
                extra.push(ScheduledInstruction {
                    instruction: Instruction::new(Gate::Delay(e - s), [q]),
                    t0: s,
                    duration: e - s,
                });
            }
        }
        out.items.extend(extra);
        out.sort_items();
        out
    }

    /// Drops timing and returns the plain circuit (delays preserved as
    /// instructions, in start-time order).
    pub fn to_circuit(&self) -> Circuit {
        let mut qc = Circuit::new(self.num_qubits, self.num_clbits);
        for si in &self.items {
            qc.push(si.instruction.clone());
        }
        qc
    }

    /// A structural fingerprint of the scheduled circuit: two schedules
    /// with different gates, operands, timing, classical wiring, merge
    /// flags, or duration tables hash differently (up to 64-bit
    /// collisions — cache layers that key on this hash must verify
    /// equality on hit). Floating-point fields hash by bit pattern, so
    /// the fingerprint is exact and machine-independent.
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.num_qubits as u64);
        h.u64(self.num_clbits as u64);
        h.f64(self.duration);
        for d in [
            self.durations.one_qubit,
            self.durations.two_qubit,
            self.durations.canonical,
            self.durations.measure,
            self.durations.reset,
            self.durations.feedforward,
        ] {
            h.f64(d);
        }
        h.u64(self.items.len() as u64);
        for si in &self.items {
            h.f64(si.t0);
            h.f64(si.duration);
            let instr = &si.instruction;
            h.str(instr.gate.name());
            for p in instr.gate.params() {
                h.f64(p);
            }
            h.u64(instr.qubits.len() as u64);
            for &q in &instr.qubits {
                h.u64(q as u64);
            }
            match instr.clbit {
                Some(c) => h.u64(c as u64 + 1),
                None => h.u64(0),
            }
            match instr.condition {
                Some(c) => {
                    h.u64(c.clbit as u64 + 1);
                    h.u64(c.value as u64);
                }
                None => h.u64(0),
            }
            h.u64(instr.merged as u64);
        }
        h.finish()
    }

    /// All event times (window boundaries) in sorted order, deduplicated.
    pub fn event_times(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = Vec::with_capacity(2 * self.items.len() + 2);
        ts.push(0.0);
        ts.push(self.duration);
        for si in &self.items {
            ts.push(si.t0);
            ts.push(si.t1());
        }
        ts.sort_by(|a, b| a.total_cmp(b));
        ts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        ts
    }
}

/// FNV-1a accumulator for structural fingerprints. Public so sibling
/// crates (device snapshots, simulator cache keys) hash consistently.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one byte.
    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// Folds a 64-bit word (little-endian bytes).
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Folds a float by bit pattern (exact; NaN patterns distinct).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds a string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> GateDurations {
        GateDurations::default()
    }

    #[test]
    fn asap_packs_parallel_gates() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(1).ecr(0, 1);
        let sc = schedule_asap(&qc, d());
        assert_eq!(sc.items[0].t0, 0.0);
        assert_eq!(sc.items[1].t0, 0.0);
        assert_eq!(sc.items[2].t0, 40.0);
        assert_eq!(sc.duration, 40.0 + 480.0);
    }

    #[test]
    fn virtual_rz_takes_no_time() {
        let mut qc = Circuit::new(1, 0);
        qc.rz(1.0, 0).sx(0).rz(0.5, 0);
        let sc = schedule_asap(&qc, d());
        assert_eq!(sc.duration, 40.0);
    }

    #[test]
    fn barrier_synchronises() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0);
        qc.barrier(Vec::<usize>::new());
        qc.sx(1);
        let sc = schedule_asap(&qc, d());
        let sx1 = sc
            .items
            .iter()
            .find(|si| si.instruction.acts_on(1) && si.instruction.gate == Gate::Sx)
            .unwrap();
        assert_eq!(sx1.t0, 40.0);
    }

    #[test]
    fn conditional_waits_for_measure_plus_feedforward() {
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0).gate_if(Gate::X, [1], 0, true);
        let sc = schedule_asap(&qc, d());
        let cond = sc
            .items
            .iter()
            .find(|si| si.instruction.condition.is_some())
            .unwrap();
        assert_eq!(cond.t0, 4000.0 + 1150.0);
    }

    #[test]
    fn idle_windows_found() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(0); // qubit 0 busy [0,80)
        qc.barrier(Vec::<usize>::new());
        qc.sx(1); // qubit 1 busy [80,120)
        let sc = schedule_asap(&qc, d());
        let w1 = sc.idle_windows(1);
        assert_eq!(w1, vec![(0.0, 80.0)]);
        let w0 = sc.idle_windows(0);
        assert_eq!(w0, vec![(80.0, 120.0)]);
    }

    #[test]
    fn explicit_delays_fill_gaps() {
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        qc.sx(0).sx(0);
        qc.barrier(Vec::<usize>::new());
        qc.ecr(0, 1);
        let sc = schedule_asap(&qc, d()).with_explicit_delays();
        let delays: Vec<_> = sc
            .items
            .iter()
            .filter(|si| matches!(si.instruction.gate, Gate::Delay(_)))
            .collect();
        assert_eq!(delays.len(), 1);
        assert!(delays[0].instruction.acts_on(1));
        assert_eq!(delays[0].t0, 480.0);
        assert_eq!(delays[0].duration, 80.0);
    }

    #[test]
    fn event_times_sorted_unique() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(1).ecr(0, 1);
        let sc = schedule_asap(&qc, d());
        let ts = sc.event_times();
        assert_eq!(ts, vec![0.0, 40.0, 520.0]);
    }

    #[test]
    fn items_on_qubit_in_window() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).ecr(0, 1);
        let sc = schedule_asap(&qc, d());
        assert_eq!(sc.items_on_qubit_in(0, 0.0, 30.0).len(), 1);
        assert_eq!(sc.items_on_qubit_in(1, 0.0, 30.0).len(), 0);
        assert_eq!(sc.items_on_qubit_in(1, 100.0, 200.0).len(), 1);
    }

    #[test]
    fn alap_pushes_gates_late() {
        // sx on qubit 0 then a barrier-free ecr: ASAP puts sx at 0;
        // ALAP pushes the early 1q gate to right before its consumer.
        let mut qc = Circuit::new(2, 0);
        qc.sx(0);
        qc.sx(1).sx(1).sx(1); // qubit 1 busy 120 ns
        qc.ecr(0, 1);
        let asap = schedule_asap(&qc, d());
        let alap = schedule_alap(&qc, d());
        assert_eq!(asap.duration, alap.duration);
        let sx0_asap = asap
            .items
            .iter()
            .find(|si| si.instruction.acts_on(0) && si.instruction.gate == Gate::Sx)
            .unwrap()
            .t0;
        let sx0_alap = alap
            .items
            .iter()
            .find(|si| si.instruction.acts_on(0) && si.instruction.gate == Gate::Sx)
            .unwrap()
            .t0;
        assert_eq!(sx0_asap, 0.0);
        assert_eq!(sx0_alap, 80.0, "ALAP defers the sx to just before the ECR");
    }

    #[test]
    fn alap_falls_back_for_dynamic_circuits() {
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0).gate_if(Gate::X, [1], 0, true);
        let alap = schedule_alap(&qc, d());
        let asap = schedule_asap(&qc, d());
        assert_eq!(alap, asap);
    }

    #[test]
    fn roundtrip_to_circuit_keeps_order() {
        let mut qc = Circuit::new(2, 1);
        qc.h(0).ecr(0, 1).measure(1, 0);
        let sc = schedule_asap(&qc, d());
        let back = sc.to_circuit();
        assert_eq!(back.len(), 3);
        assert_eq!(back.instructions[2].gate, Gate::Measure);
    }
}

//! Stratification of circuits into alternating layers of single-qubit
//! and two-qubit gates (Fig. 2 of the paper).
//!
//! Error-mitigation protocols (PEC/PEA) and both compiler passes in
//! this workspace operate on this layered form: twirling wraps the
//! two-qubit layers, CA-EC walks layers accumulating compensation, and
//! the layer-fidelity benchmark repeats a single two-qubit layer.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Instruction;
use serde::{Deserialize, Serialize};

/// The kind of a stratified layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Only single-qubit unitary gates.
    OneQubit,
    /// Only two-qubit unitary gates (disjoint supports).
    TwoQubit,
    /// Measurements and resets.
    Measurement,
    /// Delays, conditionals and anything else.
    Other,
}

/// One stratified layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// The kind shared by all instructions in the layer.
    pub kind: LayerKind,
    /// Instructions with pairwise-disjoint qubit supports.
    pub instructions: Vec<Instruction>,
}

impl Layer {
    /// The two-qubit gate (if any) acting on `q` in this layer.
    pub fn gate_on(&self, q: usize) -> Option<&Instruction> {
        self.instructions.iter().find(|i| i.acts_on(q))
    }

    /// True when no instruction in the layer touches `q`.
    pub fn is_idle(&self, q: usize) -> bool {
        self.gate_on(q).is_none()
    }

    /// All qubits used by the layer.
    pub fn support(&self) -> Vec<usize> {
        let mut qs: Vec<usize> = self
            .instructions
            .iter()
            .flat_map(|i| i.qubits.clone())
            .collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }
}

/// A circuit expressed as an ordered list of layers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayeredCircuit {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of classical bits.
    pub num_clbits: usize,
    /// The layers, in program order.
    pub layers: Vec<Layer>,
}

fn kind_of(instr: &Instruction) -> LayerKind {
    match instr.gate {
        Gate::Measure | Gate::Reset => LayerKind::Measurement,
        Gate::Delay(_) => LayerKind::Other,
        _ if instr.condition.is_some() => LayerKind::Other,
        _ if instr.is_one_qubit() => LayerKind::OneQubit,
        _ if instr.is_two_qubit() => LayerKind::TwoQubit,
        _ => LayerKind::Other,
    }
}

/// Stratifies a circuit into layers: each instruction is placed in the
/// earliest layer (at or after its data dependencies) whose kind
/// matches and whose support is disjoint. Barriers force a new layer.
pub fn stratify(circuit: &Circuit) -> LayeredCircuit {
    let mut layers: Vec<Layer> = Vec::new();
    // frontier[q] = first layer index where qubit q is free.
    let mut frontier = vec![0usize; circuit.num_qubits];
    for instr in &circuit.instructions {
        if instr.gate == Gate::Barrier {
            for &q in &instr.qubits {
                frontier[q] = layers.len();
            }
            continue;
        }
        let kind = kind_of(instr);
        let start = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
        let mut placed = None;
        for (l, layer) in layers.iter().enumerate().skip(start) {
            if layer.kind == kind && instr.qubits.iter().all(|&q| layer.is_idle(q)) {
                placed = Some(l);
                break;
            }
        }
        let l = match placed {
            Some(l) => l,
            None => {
                layers.push(Layer {
                    kind,
                    instructions: Vec::new(),
                });
                layers.len() - 1
            }
        };
        layers[l].instructions.push(instr.clone());
        for &q in &instr.qubits {
            frontier[q] = l + 1;
        }
    }
    LayeredCircuit {
        num_qubits: circuit.num_qubits,
        num_clbits: circuit.num_clbits,
        layers,
    }
}

impl LayeredCircuit {
    /// Flattens back to a circuit, optionally separating layers with
    /// full barriers so that scheduling preserves the layer structure.
    pub fn to_circuit(&self, with_barriers: bool) -> Circuit {
        let mut qc = Circuit::new(self.num_qubits, self.num_clbits);
        for (i, layer) in self.layers.iter().enumerate() {
            if with_barriers && i > 0 {
                qc.barrier(Vec::<usize>::new());
            }
            for instr in &layer.instructions {
                qc.push(instr.clone());
            }
        }
        qc
    }

    /// Indices of the two-qubit layers.
    pub fn two_qubit_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == LayerKind::TwoQubit)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_structure_emerges() {
        let mut qc = Circuit::new(4, 0);
        qc.h(0).h(1).h(2).h(3);
        qc.ecr(0, 1).ecr(2, 3);
        qc.sx(0).sx(2);
        qc.ecr(1, 2);
        let layered = stratify(&qc);
        let kinds: Vec<LayerKind> = layered.layers.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LayerKind::OneQubit,
                LayerKind::TwoQubit,
                LayerKind::OneQubit,
                LayerKind::TwoQubit
            ]
        );
        assert_eq!(layered.layers[1].instructions.len(), 2);
    }

    #[test]
    fn barrier_splits_layers() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0);
        qc.barrier(Vec::<usize>::new());
        qc.h(1);
        let layered = stratify(&qc);
        assert_eq!(layered.layers.len(), 2);
    }

    #[test]
    fn parallel_one_qubit_gates_share_a_layer() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).sx(1).x(2);
        let layered = stratify(&qc);
        assert_eq!(layered.layers.len(), 1);
        assert_eq!(layered.layers[0].instructions.len(), 3);
    }

    #[test]
    fn dependent_gates_stack() {
        let mut qc = Circuit::new(1, 0);
        qc.h(0).sx(0);
        let layered = stratify(&qc);
        assert_eq!(layered.layers.len(), 2);
    }

    #[test]
    fn measurement_gets_its_own_kind() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).measure(0, 0).measure(1, 1);
        let layered = stratify(&qc);
        assert_eq!(layered.layers.last().unwrap().kind, LayerKind::Measurement);
        assert_eq!(layered.layers.last().unwrap().instructions.len(), 2);
    }

    #[test]
    fn roundtrip_preserves_instruction_multiset() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).ecr(0, 1).sx(2).ecr(1, 2).rz(0.3, 0);
        let layered = stratify(&qc);
        let back = layered.to_circuit(false);
        assert_eq!(back.len(), qc.len());
        assert_eq!(back.count_two_qubit(), 2);
    }

    #[test]
    fn two_qubit_layer_indices_reported() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).ecr(0, 1).h(1);
        let layered = stratify(&qc);
        assert_eq!(layered.two_qubit_layer_indices(), vec![1]);
    }

    #[test]
    fn layer_support_and_idle() {
        let mut qc = Circuit::new(4, 0);
        qc.ecr(0, 1);
        let layered = stratify(&qc);
        let layer = &layered.layers[0];
        assert_eq!(layer.support(), vec![0, 1]);
        assert!(layer.is_idle(2));
        assert!(!layer.is_idle(0));
    }
}

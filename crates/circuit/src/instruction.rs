//! Circuit instructions: a gate applied to qubits, optionally tied to
//! classical bits (measurement targets or feed-forward conditions).

use crate::gate::Gate;
use serde::{Deserialize, Serialize};

/// A feed-forward condition: execute the instruction only when the
/// classical bit holds `value`. This is the primitive dynamic-circuit
/// capability used by the paper's Fig. 9 experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Condition {
    /// Index of the classical bit tested.
    pub clbit: usize,
    /// Value the bit must hold for the gate to fire.
    pub value: bool,
}

/// One operation in a circuit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The gate or operation.
    pub gate: Gate,
    /// Qubit operands, in gate order (e.g. `[control, target]`).
    pub qubits: Vec<usize>,
    /// Classical bit written by a `Measure`.
    pub clbit: Option<usize>,
    /// Optional feed-forward condition.
    pub condition: Option<Condition>,
    /// True when the gate is *merged* into a neighbouring physical
    /// pulse rather than played as its own pulse: it takes no time on
    /// the schedule, draws no gate error, and casts no drive (Stark)
    /// shadow — exactly how hardware absorbs twirl Paulis into the
    /// adjacent single-qubit layers at zero cost. The gate's unitary
    /// (and its frame/bank conjugation) still applies.
    pub merged: bool,
}

impl Instruction {
    /// Creates an unconditional instruction with no classical operand.
    pub fn new(gate: Gate, qubits: impl Into<Vec<usize>>) -> Self {
        let qubits = qubits.into();
        debug_assert!(
            gate.num_qubits() == 0 || gate.num_qubits() == qubits.len(),
            "gate {} expects {} qubits, got {}",
            gate.name(),
            gate.num_qubits(),
            qubits.len()
        );
        Self {
            gate,
            qubits,
            clbit: None,
            condition: None,
            merged: false,
        }
    }

    /// Attaches a feed-forward condition.
    pub fn with_condition(mut self, clbit: usize, value: bool) -> Self {
        self.condition = Some(Condition { clbit, value });
        self
    }

    /// Marks the instruction as merged into a neighbouring pulse (see
    /// [`Self::merged`]).
    pub fn as_merged(mut self) -> Self {
        self.merged = true;
        self
    }

    /// True for two-qubit unitary gates.
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_unitary() && self.gate.num_qubits() == 2
    }

    /// True for single-qubit unitary gates.
    pub fn is_one_qubit(&self) -> bool {
        self.gate.is_unitary() && self.gate.num_qubits() == 1
    }

    /// True if `q` is an operand of this instruction.
    pub fn acts_on(&self, q: usize) -> bool {
        self.qubits.contains(&q)
    }

    /// True if any operand overlaps with `other`'s operands.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_queries() {
        let i = Instruction::new(Gate::Cx, vec![2, 5]);
        assert!(i.is_two_qubit());
        assert!(!i.is_one_qubit());
        assert!(i.acts_on(2) && i.acts_on(5) && !i.acts_on(3));
    }

    #[test]
    fn overlap_detection() {
        let a = Instruction::new(Gate::Cx, vec![0, 1]);
        let b = Instruction::new(Gate::Sx, vec![1]);
        let c = Instruction::new(Gate::Sx, vec![2]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn condition_attachment() {
        let i = Instruction::new(Gate::X, vec![0]).with_condition(3, true);
        assert_eq!(
            i.condition,
            Some(Condition {
                clbit: 3,
                value: true
            })
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn wrong_arity_panics_in_debug() {
        let _ = Instruction::new(Gate::Cx, vec![0]);
    }
}

//! ASCII rendering of circuits and schedules, for examples, debugging,
//! and documentation.
//!
//! The drawer is column-per-layer: each stratified layer becomes one
//! column, two-qubit gates draw a vertical link, and idle wires show
//! as dashes. Scheduled circuits can also be rendered as a timeline
//! with per-qubit occupancy.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::layered::{stratify, LayerKind};
use crate::schedule::ScheduledCircuit;

fn gate_tag(gate: &Gate) -> String {
    match gate {
        Gate::Rz(t) => format!("Rz({t:+.2})"),
        Gate::Rx(t) => format!("Rx({t:+.2})"),
        Gate::Ry(t) => format!("Ry({t:+.2})"),
        Gate::Rzz(t) => format!("Rzz({t:+.2})"),
        Gate::Can { .. } => "CAN".into(),
        Gate::Delay(ns) => format!("~{ns:.0}~"),
        Gate::Measure => "M".into(),
        Gate::Reset => "|0>".into(),
        g => g.name().to_uppercase(),
    }
}

/// Renders a circuit as ASCII art, one column per stratified layer.
pub fn draw(circuit: &Circuit) -> String {
    let layered = stratify(circuit);
    let n = circuit.num_qubits;
    // Build per-layer per-qubit cell labels.
    let mut columns: Vec<Vec<String>> = Vec::new();
    for layer in &layered.layers {
        let mut cells = vec![String::new(); n];
        for instr in &layer.instructions {
            match instr.qubits.as_slice() {
                [q] => cells[*q] = gate_tag(&instr.gate),
                [a, b] => {
                    let (tag_a, tag_b) = match instr.gate {
                        Gate::Cx => ("*".to_string(), "+".to_string()),
                        Gate::Ecr => ("C".to_string(), "T".to_string()),
                        _ => (gate_tag(&instr.gate), "#".to_string()),
                    };
                    cells[*a] = format!("{tag_a}{}", link_mark(*a, *b));
                    cells[*b] = format!("{tag_b}{}", link_mark(*a, *b));
                }
                _ => {}
            }
        }
        // Mark pass-through wires between the two endpoints of a link.
        for instr in &layer.instructions {
            if let [a, b] = instr.qubits.as_slice() {
                let (lo, hi) = (*a.min(b), *a.max(b));
                for cell in cells.iter_mut().take(hi).skip(lo + 1) {
                    if cell.is_empty() {
                        *cell = "|".to_string();
                    }
                }
            }
        }
        if layer.kind != LayerKind::Other || cells.iter().any(|c| !c.is_empty()) {
            columns.push(cells);
        }
    }
    render_columns(n, &columns)
}

fn link_mark(_a: usize, _b: usize) -> &'static str {
    ""
}

fn render_columns(n: usize, columns: &[Vec<String>]) -> String {
    let widths: Vec<usize> = columns
        .iter()
        .map(|c| c.iter().map(|s| s.len()).max().unwrap_or(0).max(3))
        .collect();
    let mut out = String::new();
    for q in 0..n {
        out.push_str(&format!("q{q:<2}: "));
        for (col, w) in columns.iter().zip(widths.iter()) {
            let cell = &col[q];
            if cell.is_empty() {
                out.push_str(&"-".repeat(w + 2));
            } else {
                let pad = w - cell.len();
                let left = pad / 2 + 1;
                let right = pad - pad / 2 + 1;
                out.push_str(&"-".repeat(left));
                out.push_str(cell);
                out.push_str(&"-".repeat(right));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a scheduled circuit as a per-qubit timeline listing.
pub fn draw_schedule(sc: &ScheduledCircuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("total duration: {:.0} ns\n", sc.duration));
    for q in 0..sc.num_qubits {
        out.push_str(&format!("q{q:<2}:"));
        let mut items: Vec<_> = sc
            .items
            .iter()
            .filter(|si| si.instruction.acts_on(q) && si.instruction.gate != Gate::Barrier)
            .collect();
        items.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        for si in items {
            out.push_str(&format!(
                " [{:>6.0}+{:<4.0} {}]",
                si.t0,
                si.duration,
                gate_tag(&si.instruction.gate)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_asap, GateDurations};

    #[test]
    fn draws_all_wires() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).ecr(0, 1).sx(2);
        let art = draw(&qc);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("q0 :"));
        assert!(art.contains("H"));
        assert!(art.contains("C"));
        assert!(art.contains("T"));
        assert!(art.contains("SX"));
    }

    #[test]
    fn link_passthrough_marked() {
        let mut qc = Circuit::new(3, 0);
        qc.cx(0, 2);
        let art = draw(&qc);
        let q1_line = art.lines().nth(1).unwrap();
        assert!(
            q1_line.contains('|'),
            "middle wire shows the link: {q1_line}"
        );
    }

    #[test]
    fn schedule_listing_contains_times() {
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).ecr(0, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = draw_schedule(&sc);
        assert!(s.contains("total duration: 520 ns"));
        assert!(s.contains("[    40+480  ECR]") || s.contains("ECR"));
    }

    #[test]
    fn rotation_labels_include_angles() {
        let mut qc = Circuit::new(1, 0);
        qc.rz(0.25, 0);
        assert!(draw(&qc).contains("Rz(+0.25)"));
    }
}

//! Conjugation of Pauli operators by Clifford gates.
//!
//! Tables are derived numerically from the gate matrices (no hand-coded
//! lookup tables to get wrong): for a Clifford `U` and Pauli `P`, the
//! conjugate `U·P·U†` is matched against all candidate Paulis with a
//! ±1 sign. Two-qubit tables are cached per gate.

use crate::gate::Gate;
use crate::matrix::{Mat2, Mat4};
use crate::pauli::{Pauli, PauliString};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Conjugates a single-qubit Pauli by a single-qubit Clifford gate:
/// returns `(sign, P')` with `U·P·U† = sign·P'`.
///
/// Panics if the gate is not a single-qubit Clifford.
pub fn conjugate_1q(gate: Gate, p: Pauli) -> (i8, Pauli) {
    assert!(
        gate.is_clifford() && gate.num_qubits() == 1,
        "{} is not a 1q Clifford",
        gate.name()
    );
    let u = gate.matrix1().expect("unitary"); // ca-lint: allow(panic) -- static Clifford generators all have defined 1q unitaries
    let conj = u.mul(&pauli_mat2(p)).mul(&u.adjoint());
    for cand in Pauli::ALL {
        let m = pauli_mat2(cand);
        if conj.approx_eq(&m, 1e-9) {
            return (1, cand);
        }
        if conj.approx_eq(&m.scale(crate::c64::C64::real(-1.0)), 1e-9) {
            return (-1, cand);
        }
    }
    unreachable!("conjugate of a Pauli by a Clifford must be a signed Pauli"); // ca-lint: allow(panic) -- Clifford conjugation of a Pauli is a signed Pauli by group closure
}

/// Conjugates a two-qubit Pauli pair `(p_first, p_second)` by a
/// two-qubit Clifford gate: returns `(sign, (p_first', p_second'))`
/// with the first element acting on the first listed (low-order)
/// qubit. The common gates (`Cx`, `Cz`, `Ecr`) hit a cached table;
/// other two-qubit Cliffords (e.g. `Rzz(kπ/2)`) are derived on the
/// fly.
pub fn conjugate_2q(gate: Gate, pair: (Pauli, Pauli)) -> (i8, (Pauli, Pauli)) {
    if let Some(table) = cached_two_qubit_table(gate) {
        return table[pair.0.index() + 4 * pair.1.index()];
    }
    conjugation_table_2q(gate)[pair.0.index() + 4 * pair.1.index()]
}

/// The full single-qubit conjugation table of a 1q Clifford gate,
/// indexed by [`Pauli::index`]: `table[P] = (sign, U·P·U†)`.
///
/// Derived numerically from the gate matrix — the tableau simulator's
/// generic gate driver. Panics if the gate is not a 1q Clifford.
pub fn conjugation_table_1q(gate: Gate) -> [(i8, Pauli); 4] {
    let mut out = [(1i8, Pauli::I); 4];
    for p in Pauli::ALL {
        out[p.index()] = conjugate_1q(gate, p);
    }
    out
}

/// The full two-qubit conjugation table of any 2q Clifford gate,
/// indexed by `pair.0.index() + 4 * pair.1.index()`.
///
/// Works for every Clifford in the gate set (including `Rzz` at
/// multiples of π/2), unlike the cached fast path which only covers
/// `Cx`/`Cz`/`Ecr`. Panics if the gate is not a 2q Clifford.
pub fn conjugation_table_2q(gate: Gate) -> Table2Q {
    assert!(
        gate.is_clifford() && gate.num_qubits() == 2,
        "{} is not a 2q Clifford",
        gate.name()
    );
    compute_table(gate)
}

/// For Pauli twirling: given the Pauli pair applied *before* the gate,
/// returns the pair to apply *after* so that the logical operation is
/// unchanged: `P_after · G · P_before = ± G`, i.e.
/// `P_after = G · P_before · G†` (the ±1 global phase is irrelevant).
pub fn twirl_partner(gate: Gate, before: (Pauli, Pauli)) -> (Pauli, Pauli) {
    conjugate_2q(gate, before).1
}

/// Propagates an n-qubit Pauli string through a 1q Clifford on `q`.
pub fn propagate_1q(s: &PauliString, gate: Gate, q: usize) -> PauliString {
    let (sign, p) = conjugate_1q(gate, s.paulis[q]);
    let mut out = s.clone();
    out.paulis[q] = p;
    out.sign *= sign;
    out
}

/// Propagates an n-qubit Pauli string through a 2q Clifford on `(a, b)`.
pub fn propagate_2q(s: &PauliString, gate: Gate, a: usize, b: usize) -> PauliString {
    let (sign, (pa, pb)) = conjugate_2q(gate, (s.paulis[a], s.paulis[b]));
    let mut out = s.clone();
    out.paulis[a] = pa;
    out.paulis[b] = pb;
    out.sign *= sign;
    out
}

fn pauli_mat2(p: Pauli) -> Mat2 {
    p.gate().matrix1().expect("pauli matrix") // ca-lint: allow(panic) -- Pauli gates always have defined 1q unitaries
}

fn pauli_mat4(pair: (Pauli, Pauli)) -> Mat4 {
    // First element = low-order qubit = kron's low factor.
    Mat4::kron(&pauli_mat2(pair.1), &pauli_mat2(pair.0))
}

/// A 16-entry signed-Pauli-pair conjugation table.
pub type Table2Q = [(i8, (Pauli, Pauli)); 16];

fn compute_table(gate: Gate) -> Table2Q {
    let u = gate.matrix2().expect("2q unitary"); // ca-lint: allow(panic) -- static Clifford generators all have defined 2q unitaries
    let ud = u.adjoint();
    let mut out = [(1i8, (Pauli::I, Pauli::I)); 16];
    for (idx, slot) in out.iter_mut().enumerate() {
        let pair = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
        let conj = u.mul(&pauli_mat4(pair)).mul(&ud);
        let mut found = false;
        'search: for c0 in Pauli::ALL {
            for c1 in Pauli::ALL {
                let m = pauli_mat4((c0, c1));
                if conj.approx_eq(&m, 1e-9) {
                    *slot = (1, (c0, c1));
                    found = true;
                    break 'search;
                }
                if conj.approx_eq(&m.scale(crate::c64::C64::real(-1.0)), 1e-9) {
                    *slot = (-1, (c0, c1));
                    found = true;
                    break 'search;
                }
            }
        }
        assert!(
            found,
            "{} did not map Pauli pair {idx} to a signed Pauli",
            gate.name()
        );
    }
    out
}

fn cached_two_qubit_table(gate: Gate) -> Option<&'static Table2Q> {
    static TABLES: OnceLock<BTreeMap<&'static str, Table2Q>> = OnceLock::new();
    if !matches!(gate, Gate::Cx | Gate::Cz | Gate::Ecr) {
        return None;
    }
    let tables = TABLES.get_or_init(|| {
        let mut m = BTreeMap::new();
        for g in [Gate::Cx, Gate::Cz, Gate::Ecr] {
            m.insert(g.name(), compute_table(g));
        }
        m
    });
    tables.get(gate.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_swaps_x_and_z() {
        assert_eq!(conjugate_1q(Gate::H, Pauli::X), (1, Pauli::Z));
        assert_eq!(conjugate_1q(Gate::H, Pauli::Z), (1, Pauli::X));
        assert_eq!(conjugate_1q(Gate::H, Pauli::Y), (-1, Pauli::Y));
    }

    #[test]
    fn s_gate_rotates_x_to_y() {
        assert_eq!(conjugate_1q(Gate::S, Pauli::X), (1, Pauli::Y));
        assert_eq!(conjugate_1q(Gate::S, Pauli::Y), (-1, Pauli::X));
        assert_eq!(conjugate_1q(Gate::S, Pauli::Z), (1, Pauli::Z));
    }

    #[test]
    fn x_flips_z_sign() {
        assert_eq!(conjugate_1q(Gate::X, Pauli::Z), (-1, Pauli::Z));
        assert_eq!(conjugate_1q(Gate::X, Pauli::X), (1, Pauli::X));
    }

    #[test]
    fn cnot_textbook_propagation() {
        // (X_c ⊗ I_t) → X_c X_t ; (I ⊗ Z_t) → Z_c Z_t ; Z_c → Z_c ; X_t → X_t.
        assert_eq!(
            conjugate_2q(Gate::Cx, (Pauli::X, Pauli::I)),
            (1, (Pauli::X, Pauli::X))
        );
        assert_eq!(
            conjugate_2q(Gate::Cx, (Pauli::I, Pauli::Z)),
            (1, (Pauli::Z, Pauli::Z))
        );
        assert_eq!(
            conjugate_2q(Gate::Cx, (Pauli::Z, Pauli::I)),
            (1, (Pauli::Z, Pauli::I))
        );
        assert_eq!(
            conjugate_2q(Gate::Cx, (Pauli::I, Pauli::X)),
            (1, (Pauli::I, Pauli::X))
        );
    }

    #[test]
    fn all_two_qubit_tables_are_permutations_with_signs() {
        for g in [Gate::Cx, Gate::Cz, Gate::Ecr] {
            let mut seen = [false; 16];
            for idx in 0..16 {
                let pair = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
                let (sign, (a, b)) = conjugate_2q(g, pair);
                assert!(sign == 1 || sign == -1);
                let j = a.index() + 4 * b.index();
                assert!(!seen[j], "{}: image collision", g.name());
                seen[j] = true;
            }
            assert!(seen.iter().all(|s| *s), "{}: not a permutation", g.name());
            // Identity maps to identity with +1.
            assert_eq!(
                conjugate_2q(g, (Pauli::I, Pauli::I)),
                (1, (Pauli::I, Pauli::I))
            );
        }
    }

    #[test]
    fn twirl_partner_restores_gate() {
        // Check (P_after ⊗) · G · (P_before ⊗) == ±G numerically.

        for g in [Gate::Cx, Gate::Ecr, Gate::Cz] {
            let gm = g.matrix2().unwrap();
            for idx in 0..16 {
                let before = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
                let after = twirl_partner(g, before);
                let mb = super::pauli_mat4(before);
                let ma = super::pauli_mat4(after);
                let total = ma.mul(&gm).mul(&mb);
                assert!(
                    total.approx_eq_up_to_phase(&gm, 1e-9),
                    "{}: twirl pair {:?} -> {:?} fails",
                    g.name(),
                    before,
                    after
                );
            }
        }
    }

    #[test]
    fn tables_cover_all_paulis() {
        for g in [
            Gate::H,
            Gate::S,
            Gate::Sx,
            Gate::X,
            Gate::Rz(std::f64::consts::FRAC_PI_2),
        ] {
            let t = conjugation_table_1q(g);
            let mut seen = [false; 4];
            for (s, p) in t {
                assert!(s == 1 || s == -1);
                seen[p.index()] = true;
            }
            assert!(
                seen.iter().all(|x| *x),
                "{} table is a permutation",
                g.name()
            );
            assert_eq!(t[0], (1, Pauli::I));
        }
    }

    #[test]
    fn clifford_rzz_has_a_table() {
        // Rzz(π/2) is Clifford; the generic path must derive its table.
        let g = Gate::Rzz(std::f64::consts::FRAC_PI_2);
        let t = conjugation_table_2q(g);
        let mut seen = [false; 16];
        for (s, (a, b)) in t {
            assert!(s == 1 || s == -1);
            seen[a.index() + 4 * b.index()] = true;
        }
        assert!(seen.iter().all(|x| *x), "rzz table is a permutation");
        // Z⊗Z commutes with the gate.
        assert_eq!(
            conjugate_2q(g, (Pauli::Z, Pauli::Z)),
            (1, (Pauli::Z, Pauli::Z))
        );
        // X on one qubit picks up the partner Z.
        let (_, (a, b)) = conjugate_2q(g, (Pauli::X, Pauli::I));
        assert_eq!((a, b), (Pauli::Y, Pauli::Z));
    }

    #[test]
    fn propagate_string_through_cnot_chain() {
        // Z on target propagates backward onto control through CNOT.
        let s = PauliString::parse("IZ").unwrap();
        let out = propagate_2q(&s, Gate::Cx, 0, 1);
        assert_eq!(out.to_string(), "ZZ");
    }

    #[test]
    fn ecr_conjugation_is_involutive() {
        // ECR is self-inverse, so conjugating twice returns the start.
        for idx in 0..16 {
            let pair = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
            let (s1, mid) = conjugate_2q(Gate::Ecr, pair);
            let (s2, back) = conjugate_2q(Gate::Ecr, mid);
            assert_eq!(back, pair);
            assert_eq!(s1 * s2, 1);
        }
    }
}

//! Single-qubit Euler-angle decompositions.
//!
//! The paper's Eq. (4): any `U ∈ SU(2)` can be written
//! `U = Rz(α+π) · √X · Rz(β+π) · √X · Rz(γ)` — the hardware-native
//! `Rz`/`√X` basis where all `Rz` are virtual. CA-EC absorbs coherent
//! `Rz(θ)` errors by shifting these angles at zero cost.

use crate::c64::C64;
use crate::gate::Gate;
use crate::matrix::Mat2;

/// ZYZ Euler angles: `U = e^{iφ_g}·Rz(φ)·Ry(θ)·Rz(λ)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Zyz {
    /// Middle Y-rotation angle θ ∈ [0, π].
    pub theta: f64,
    /// Leading (leftmost) Z angle φ.
    pub phi: f64,
    /// Trailing (rightmost) Z angle λ.
    pub lam: f64,
    /// Global phase φ_g.
    pub phase: f64,
}

/// Extracts ZYZ Euler angles from a 2×2 unitary.
pub fn zyz_angles(u: &Mat2) -> Zyz {
    // Normalize to SU(2): V = U / sqrt(det U), det V = 1.
    let det = u.det();
    let half_arg = det.arg() / 2.0;
    let scale = C64::cis(-half_arg).scale(1.0 / det.abs().sqrt());
    let v = u.scale(scale);
    // V = [[cos(θ/2)e^{-i(φ+λ)/2}, -sin(θ/2)e^{-i(φ-λ)/2}],
    //      [sin(θ/2)e^{ i(φ-λ)/2},  cos(θ/2)e^{ i(φ+λ)/2}]]
    let c = v.0[0][0].abs().clamp(0.0, 1.0);
    let s = v.0[1][0].abs().clamp(0.0, 1.0);
    let theta = 2.0 * s.atan2(c);
    let (phi, lam) = if s < 1e-10 {
        // Diagonal: only φ+λ defined; put it all in λ.
        (0.0, 2.0 * v.0[1][1].arg())
    } else if c < 1e-10 {
        // Anti-diagonal: only φ−λ defined.
        (2.0 * v.0[1][0].arg(), 0.0)
    } else {
        let sum = 2.0 * v.0[1][1].arg();
        let diff = 2.0 * v.0[1][0].arg();
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };
    Zyz {
        theta,
        phi,
        lam,
        phase: half_arg,
    }
}

/// The Eq. (4) angles `(α, β, γ)` with
/// `U ≅ Rz(α+π)·√X·Rz(β+π)·√X·Rz(γ)` (up to global phase).
///
/// Uses the standard identity `Rz(φ)Ry(θ)Rz(λ) ≅
/// Rz(φ+π)·√X·Rz(θ+π)·√X·Rz(λ)`, i.e. `α = φ, β = θ, γ = λ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZsxzsxzAngles {
    /// Leading virtual-Z angle (applied last); Eq. (4)'s α.
    pub alpha: f64,
    /// Middle virtual-Z angle; Eq. (4)'s β.
    pub beta: f64,
    /// Trailing virtual-Z angle (applied first); Eq. (4)'s γ.
    pub gamma: f64,
}

/// Decomposes a 2×2 unitary into Eq. (4) angles.
pub fn zsxzsxz_angles(u: &Mat2) -> ZsxzsxzAngles {
    let zyz = zyz_angles(u);
    ZsxzsxzAngles {
        alpha: zyz.phi,
        beta: zyz.theta,
        gamma: zyz.lam,
    }
}

/// Builds the gate sequence for Eq. (4) in *application order*
/// (first element applied first): `Rz(γ), √X, Rz(β+π), √X, Rz(α+π)`.
pub fn zsxzsxz_sequence(angles: ZsxzsxzAngles) -> [Gate; 5] {
    use std::f64::consts::PI;
    [
        Gate::Rz(angles.gamma),
        Gate::Sx,
        Gate::Rz(angles.beta + PI),
        Gate::Sx,
        Gate::Rz(angles.alpha + PI),
    ]
}

/// Composes a sequence of 1q gates (application order) into a matrix.
pub fn compose_1q(gates: &[Gate]) -> Mat2 {
    let mut m = Mat2::identity();
    for g in gates {
        let gm = g
            .matrix1()
            .unwrap_or_else(|| panic!("{} is not 1q unitary", g.name())); // ca-lint: allow(panic) -- caller guarantees a 1q unitary gate; anything else is a pass bug
        m = gm.mul(&m);
    }
    m
}

/// Absorbs a coherent `Rz(θ)` error that occurred *before* gate `u`
/// into the decomposition (γ → γ + θ). Returns the fused sequence in
/// application order. The absorption is exact and free: only virtual-Z
/// angles change (Sec. II-C of the paper).
pub fn absorb_rz_before(u: &Mat2, theta: f64) -> [Gate; 5] {
    let mut a = zsxzsxz_angles(u);
    a.gamma += theta;
    zsxzsxz_sequence(a)
}

/// Absorbs a coherent `Rz(θ)` error occurring *after* gate `u`
/// (α → α + θ).
pub fn absorb_rz_after(u: &Mat2, theta: f64) -> [Gate; 5] {
    let mut a = zsxzsxz_angles(u);
    a.alpha += theta;
    zsxzsxz_sequence(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-9;

    fn check_roundtrip(u: &Mat2) {
        let zyz = zyz_angles(u);
        let rebuilt = compose_1q(&[Gate::Rz(zyz.lam), Gate::Ry(zyz.theta), Gate::Rz(zyz.phi)]);
        assert!(
            rebuilt.approx_eq_up_to_phase(u, TOL),
            "ZYZ roundtrip failed: {zyz:?}"
        );
        let seq = zsxzsxz_sequence(zsxzsxz_angles(u));
        let rebuilt2 = compose_1q(&seq);
        assert!(
            rebuilt2.approx_eq_up_to_phase(u, TOL),
            "ZSXZSXZ roundtrip failed: {zyz:?}"
        );
    }

    #[test]
    fn roundtrips_standard_gates() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-2.1),
            Gate::Rz(1.3),
            Gate::U {
                theta: 0.4,
                phi: 2.0,
                lam: -0.9,
            },
        ] {
            check_roundtrip(&g.matrix1().unwrap());
        }
    }

    #[test]
    fn roundtrips_random_unitaries() {
        // Deterministic pseudo-random SU(2) sweep via U(θ,φ,λ).
        let mut k = 1u64;
        for _ in 0..50 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let theta = (k >> 11) as f64 / (1u64 << 53) as f64 * PI;
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let phi = ((k >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0 * PI;
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lam = ((k >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0 * PI;
            check_roundtrip(&Gate::U { theta, phi, lam }.matrix1().unwrap());
        }
    }

    #[test]
    fn absorption_before_is_exact_and_free() {
        let u = Gate::U {
            theta: 1.1,
            phi: 0.3,
            lam: -0.8,
        }
        .matrix1()
        .unwrap();
        let theta_err = 0.137;
        // Error happens first, then the gate: total = U · Rz(θ).
        let target = u.mul(&Gate::Rz(theta_err).matrix1().unwrap());
        let fused = compose_1q(&absorb_rz_before(&u, theta_err));
        assert!(fused.approx_eq_up_to_phase(&target, TOL));
        // Still exactly 2 physical pulses (√X); the rest virtual.
        let seq = absorb_rz_before(&u, theta_err);
        assert_eq!(seq.iter().filter(|g| !g.is_virtual()).count(), 2);
    }

    #[test]
    fn absorption_after_is_exact() {
        let u = Gate::U {
            theta: 0.5,
            phi: -1.2,
            lam: 2.2,
        }
        .matrix1()
        .unwrap();
        let theta_err = -0.21;
        let target = Gate::Rz(theta_err).matrix1().unwrap().mul(&u);
        let fused = compose_1q(&absorb_rz_after(&u, theta_err));
        assert!(fused.approx_eq_up_to_phase(&target, TOL));
    }

    #[test]
    fn diagonal_unitary_edge_case() {
        check_roundtrip(&Gate::Rz(0.9).matrix1().unwrap());
        check_roundtrip(&Gate::Rz(-3.0).matrix1().unwrap());
    }

    #[test]
    fn antidiagonal_unitary_edge_case() {
        check_roundtrip(&Gate::X.matrix1().unwrap());
        let u = compose_1q(&[Gate::X, Gate::Rz(0.4)]);
        check_roundtrip(&u);
    }
}

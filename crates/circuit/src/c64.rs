//! Minimal complex-number arithmetic.
//!
//! The allowed dependency set does not include `num-complex`, so the
//! workspace carries its own small, well-tested `C64` type. Only the
//! operations needed by gate matrices and the statevector simulator are
//! provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The complex zero.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The complex unit.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Panics on zero in debug builds.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n > 0.0, "inverse of complex zero");
        Self {
            re: self.re / n,
            im: -self.im / n,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both components are within `tol` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiplication by the inverse
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<It: Iterator<Item = C64>>(iter: It) -> C64 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}{:+.6}i", self.re, self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}{:+.4}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn multiplication_matches_hand_result() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        let p = a * b;
        assert!(p.approx_eq(C64::new(5.0, 5.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((I * I).approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * 0.5;
            let z = C64::cis(t);
            assert!((z.abs() - 1.0).abs() < TOL);
            assert!(
                (z.arg() - t.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                    .min(
                        (z.arg() + 2.0 * std::f64::consts::PI
                            - t.rem_euclid(2.0 * std::f64::consts::PI))
                        .abs()
                    )
                    < 1e-9
            );
        }
    }

    #[test]
    fn division_roundtrips() {
        let a = C64::new(0.3, -0.7);
        let b = C64::new(-1.2, 0.4);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = C64::new(2.0, 3.0);
        assert_eq!(z.conj(), C64::new(2.0, -3.0));
        assert!((z * z.conj()).approx_eq(C64::real(z.norm_sqr()), TOL));
    }

    #[test]
    fn sum_accumulates() {
        let total: C64 = (0..10).map(|k| C64::new(k as f64, -(k as f64))).sum();
        assert!(total.approx_eq(C64::new(45.0, -45.0), TOL));
    }

    #[test]
    fn inv_of_unit_is_conj() {
        let z = C64::cis(0.83);
        assert!(z.inv().approx_eq(z.conj(), TOL));
    }
}

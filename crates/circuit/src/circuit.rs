//! The mutable circuit container and its builder API.

use crate::gate::Gate;
use crate::instruction::Instruction;
use serde::{Deserialize, Serialize};

/// An ordered list of instructions over `num_qubits` qubits and
/// `num_clbits` classical bits.
///
/// The builder methods append and return `&mut Self` so circuits can be
/// written fluently:
///
/// ```
/// use ca_circuit::Circuit;
/// let mut qc = Circuit::new(2, 1);
/// qc.h(0).cx(0, 1).measure(1, 0);
/// assert_eq!(qc.len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of classical bits.
    pub num_clbits: usize,
    /// The instruction stream, in program order.
    pub instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction, validating qubit indices.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        for &q in &instr.qubits {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range (n={})",
                self.num_qubits
            );
        }
        if let Some(c) = instr.clbit {
            assert!(c < self.num_clbits, "clbit {c} out of range");
        }
        if let Some(cond) = instr.condition {
            assert!(cond.clbit < self.num_clbits, "condition clbit out of range");
        }
        self.instructions.push(instr);
        self
    }

    /// Appends a plain gate on the given qubits.
    pub fn append(&mut self, gate: Gate, qubits: impl Into<Vec<usize>>) -> &mut Self {
        self.push(Instruction::new(gate, qubits))
    }

    // --- 1q builders -----------------------------------------------------

    /// Explicit identity (occupies a 1q slot).
    pub fn i(&mut self, q: usize) -> &mut Self {
        self.append(Gate::I, [q])
    }

    /// Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.append(Gate::X, [q])
    }

    /// Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Y, [q])
    }

    /// Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Z, [q])
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.append(Gate::H, [q])
    }

    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.append(Gate::S, [q])
    }

    /// S†.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sdg, [q])
    }

    /// √X.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sx, [q])
    }

    /// X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rx(theta), [q])
    }

    /// Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Ry(theta), [q])
    }

    /// Z-rotation (virtual).
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rz(theta), [q])
    }

    /// Generic 1q unitary.
    pub fn u(&mut self, theta: f64, phi: f64, lam: f64, q: usize) -> &mut Self {
        self.append(Gate::U { theta, phi, lam }, [q])
    }

    // --- 2q builders -----------------------------------------------------

    /// CNOT with `control`, `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cx, [control, target])
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Cz, [a, b])
    }

    /// Echoed cross-resonance with `control`, `target`.
    pub fn ecr(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Ecr, [control, target])
    }

    /// ZZ rotation.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Rzz(theta), [a, b])
    }

    /// Canonical gate `exp[i(α XX + β YY + γ ZZ)]` (Eq. 5).
    pub fn can(&mut self, alpha: f64, beta: f64, gamma: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Can { alpha, beta, gamma }, [a, b])
    }

    // --- non-unitary & structural ----------------------------------------

    /// Z-basis measurement of `q` into classical bit `c`.
    pub fn measure(&mut self, q: usize, c: usize) -> &mut Self {
        let mut i = Instruction::new(Gate::Measure, [q]);
        i.clbit = Some(c);
        self.push(i)
    }

    /// Reset to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Reset, [q])
    }

    /// Explicit idle of `ns` nanoseconds on `q`.
    pub fn delay(&mut self, ns: f64, q: usize) -> &mut Self {
        self.append(Gate::Delay(ns), [q])
    }

    /// Barrier across the given qubits (empty list = all qubits).
    pub fn barrier(&mut self, qubits: impl Into<Vec<usize>>) -> &mut Self {
        let mut qs: Vec<usize> = qubits.into();
        if qs.is_empty() {
            qs = (0..self.num_qubits).collect();
        }
        self.push(Instruction::new(Gate::Barrier, qs))
    }

    /// Gate conditioned on a classical bit (dynamic circuits).
    pub fn gate_if(
        &mut self,
        gate: Gate,
        qubits: impl Into<Vec<usize>>,
        clbit: usize,
        value: bool,
    ) -> &mut Self {
        self.push(Instruction::new(gate, qubits).with_condition(clbit, value))
    }

    // --- whole-circuit operations -----------------------------------------

    /// Appends all instructions of `other` (qubit counts must agree).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        for i in &other.instructions {
            self.push(i.clone());
        }
        self
    }

    /// Counts instructions using the given gate name.
    pub fn count_gate(&self, name: &str) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.name() == name)
            .count()
    }

    /// Counts two-qubit unitary gates.
    pub fn count_two_qubit(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_two_qubit())
            .count()
    }

    /// Depth counted over two-qubit gates only (the CNOT depth the
    /// paper quotes for the Heisenberg circuit).
    pub fn two_qubit_depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for i in &self.instructions {
            if !i.is_two_qubit() {
                continue;
            }
            let l = i.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &i.qubits {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// True when the circuit contains mid-circuit measurement or
    /// feed-forward conditions (a dynamic circuit).
    pub fn is_dynamic(&self) -> bool {
        let last_meas_free = self
            .instructions
            .iter()
            .rev()
            .skip_while(|i| matches!(i.gate, Gate::Measure | Gate::Barrier))
            .any(|i| matches!(i.gate, Gate::Measure));
        last_meas_free || self.instructions.iter().any(|i| i.condition.is_some())
    }

    /// The set of qubits that appear in at least one instruction.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for i in &self.instructions {
            if matches!(i.gate, Gate::Barrier) {
                continue;
            }
            for &q in &i.qubits {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(q, _)| q)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut qc = Circuit::new(3, 2);
        qc.h(0).cx(0, 1).ecr(1, 2).measure(2, 0).measure(1, 1);
        assert_eq!(qc.len(), 5);
        assert_eq!(qc.count_gate("cx"), 1);
        assert_eq!(qc.count_two_qubit(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubits() {
        let mut qc = Circuit::new(1, 0);
        qc.cx(0, 1);
    }

    #[test]
    fn two_qubit_depth_counts_layers() {
        let mut qc = Circuit::new(4, 0);
        qc.cx(0, 1).cx(2, 3); // parallel: depth 1
        qc.cx(1, 2); // depends on both: depth 2
        qc.cx(0, 1); // depth 3 (qubit 1 at level 2)
        assert_eq!(qc.two_qubit_depth(), 3);
    }

    #[test]
    fn dynamic_detection() {
        let mut staticc = Circuit::new(2, 2);
        staticc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        assert!(!staticc.is_dynamic());

        let mut dynamic = Circuit::new(2, 1);
        dynamic.h(0).measure(0, 0).gate_if(Gate::X, [1], 0, true);
        assert!(dynamic.is_dynamic());
    }

    #[test]
    fn active_qubits_skips_barrier_only() {
        let mut qc = Circuit::new(4, 0);
        qc.h(1);
        qc.barrier(Vec::<usize>::new());
        qc.sx(3);
        assert_eq!(qc.active_qubits(), vec![1, 3]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2, 0);
        a.h(0);
        let mut b = Circuit::new(2, 0);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut qc = Circuit::new(2, 1);
        qc.h(0).cx(0, 1).rz(0.25, 1).measure(1, 0);
        let json = serde_json::to_string(&qc).unwrap();
        let back: Circuit = serde_json::from_str(&json).unwrap();
        assert_eq!(qc, back);
    }
}

//! The gate set.
//!
//! Mirrors the hardware-native basis of fixed-frequency IBM devices
//! used in the paper — virtual `Rz`, physical `SX`/`X`, and the echoed
//! cross-resonance `ECR` two-qubit gate — plus the logical gates the
//! applications need (`CX`, `Rzz`, the canonical gate `Can(α,β,γ)` of
//! Eq. (5)) and circuit-structural operations (`Delay`, `Barrier`,
//! `Measure`, `Reset`).

use crate::c64::{C64, I as IM, ONE, ZERO};
use crate::matrix::{Mat2, Mat4};
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_1_SQRT_2;

/// A quantum gate or circuit operation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (explicit, occupies a 1q-gate slot).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = √Z.
    S,
    /// S†.
    Sdg,
    /// T = S^{1/2}.
    T,
    /// T†.
    Tdg,
    /// √X — the physical 1q pulse on IBM hardware.
    Sx,
    /// √X†.
    Sxdg,
    /// Rotation about X: exp(−iθX/2).
    Rx(f64),
    /// Rotation about Y: exp(−iθY/2).
    Ry(f64),
    /// Rotation about Z: exp(−iθZ/2). Virtual (zero duration, zero cost).
    Rz(f64),
    /// Generic 1q gate U(θ, φ, λ) in the standard convention.
    U {
        /// Polar rotation angle θ.
        theta: f64,
        /// Leading phase angle φ.
        phi: f64,
        /// Trailing phase angle λ.
        lam: f64,
    },
    /// CNOT; first qubit is control, second is target.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Echoed cross-resonance; first qubit is control, second target.
    /// Locally equivalent to CNOT; internally echoes the control frame
    /// at τg/2 and the target (rotary) frame at τg/4, τg/2, 3τg/4.
    Ecr,
    /// ZZ rotation exp(−iθ Z⊗Z / 2).
    Rzz(f64),
    /// The canonical two-qubit gate of Eq. (5):
    /// `exp[i(α X⊗X + β Y⊗Y + γ Z⊗Z)]`.
    Can {
        /// XX interaction angle α.
        alpha: f64,
        /// YY interaction angle β.
        beta: f64,
        /// ZZ interaction angle γ.
        gamma: f64,
    },
    /// Z-basis measurement into a classical bit.
    Measure,
    /// Reset to |0⟩.
    Reset,
    /// Explicit idle period in nanoseconds.
    Delay(f64),
    /// Scheduling barrier across its qubits.
    Barrier,
}

impl Gate {
    /// Number of qubits the gate acts on (`Barrier` is variadic and
    /// reports 0).
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Ecr | Gate::Rzz(_) | Gate::Can { .. } => 2,
            Gate::Barrier => 0,
            _ => 1,
        }
    }

    /// A short lowercase mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U { .. } => "u",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Ecr => "ecr",
            Gate::Rzz(_) => "rzz",
            Gate::Can { .. } => "can",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
            Gate::Delay(_) => "delay",
            Gate::Barrier => "barrier",
        }
    }

    /// True for unitary gates (i.e. not measure/reset/delay/barrier).
    pub fn is_unitary(&self) -> bool {
        !matches!(
            self,
            Gate::Measure | Gate::Reset | Gate::Delay(_) | Gate::Barrier
        )
    }

    /// The gate's continuous parameters in declaration order (empty
    /// for parameterless gates). Drives structural fingerprints: two
    /// gates agree exactly iff their names and parameter bit patterns
    /// agree.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Rzz(t) | Gate::Delay(t) => vec![t],
            Gate::U { theta, phi, lam } => vec![theta, phi, lam],
            Gate::Can { alpha, beta, gamma } => vec![alpha, beta, gamma],
            _ => Vec::new(),
        }
    }

    /// True for the single-qubit Pauli gates (including identity).
    pub fn is_pauli(&self) -> bool {
        matches!(self, Gate::I | Gate::X | Gate::Y | Gate::Z)
    }

    /// True when the gate is implemented virtually (zero duration).
    pub fn is_virtual(&self) -> bool {
        matches!(
            self,
            Gate::Rz(_) | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::I
        )
    }

    /// True when the unitary is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Cz
                | Gate::Rzz(_)
        )
    }

    /// The inverse gate, when it exists within the gate set.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::U { theta, phi, lam } => Gate::U {
                theta: -theta,
                phi: -lam,
                lam: -phi,
            },
            Gate::Can { alpha, beta, gamma } => Gate::Can {
                alpha: -alpha,
                beta: -beta,
                gamma: -gamma,
            },
            g => g, // self-inverse: I, X, Y, Z, H, Cx, Cz, Ecr; non-unitary unchanged
        }
    }

    /// 2×2 unitary for single-qubit unitary gates.
    pub fn matrix1(&self) -> Option<Mat2> {
        let m = match *self {
            Gate::I => Mat2::identity(),
            Gate::X => Mat2([[ZERO, ONE], [ONE, ZERO]]),
            Gate::Y => Mat2([[ZERO, -IM], [IM, ZERO]]),
            Gate::Z => Mat2([[ONE, ZERO], [ZERO, C64::real(-1.0)]]),
            Gate::H => {
                let h = C64::real(FRAC_1_SQRT_2);
                Mat2([[h, h], [h, -h]])
            }
            Gate::S => Mat2([[ONE, ZERO], [ZERO, IM]]),
            Gate::Sdg => Mat2([[ONE, ZERO], [ZERO, -IM]]),
            Gate::T => Mat2([[ONE, ZERO], [ZERO, C64::cis(std::f64::consts::FRAC_PI_4)]]),
            Gate::Tdg => Mat2([[ONE, ZERO], [ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)]]),
            Gate::Sx => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                Mat2([[a, b], [b, a]])
            }
            Gate::Sxdg => {
                let a = C64::new(0.5, -0.5);
                let b = C64::new(0.5, 0.5);
                Mat2([[a, b], [b, a]])
            }
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                Mat2([[c, s], [s, c]])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                Mat2([[c, -s], [s, c]])
            }
            Gate::Rz(t) => Mat2([[C64::cis(-t / 2.0), ZERO], [ZERO, C64::cis(t / 2.0)]]),
            Gate::U { theta, phi, lam } => {
                let c = (theta / 2.0).cos();
                let s = (theta / 2.0).sin();
                Mat2([
                    [C64::real(c), -C64::cis(lam).scale(s)],
                    [C64::cis(phi).scale(s), C64::cis(phi + lam).scale(c)],
                ])
            }
            _ => return None,
        };
        Some(m)
    }

    /// 4×4 unitary for two-qubit unitary gates, in the convention that
    /// the first listed qubit is the low-order basis bit.
    pub fn matrix2(&self) -> Option<Mat4> {
        let m = match *self {
            Gate::Cx => {
                // control = first (low bit), target = second (high bit):
                // index = c + 2t; flips t when c = 1.
                let mut m = Mat4::zero();
                m.0[0][0] = ONE; // (c,t)=(0,0) -> (0,0)
                m.0[3][1] = ONE; // (1,0) -> (1,1)
                m.0[2][2] = ONE; // (0,1) -> (0,1)
                m.0[1][3] = ONE; // (1,1) -> (1,0)
                m
            }
            Gate::Cz => {
                let mut m = Mat4::identity();
                m.0[3][3] = C64::real(-1.0);
                m
            }
            Gate::Ecr => {
                // ECR = (I_t⊗X_c − X_t⊗Y_c)/√2 with control the low bit:
                // kron(high=target factor, low=control factor).
                let x = Gate::X.matrix1().unwrap(); // ca-lint: allow(panic) -- X matrix is statically defined
                let y = Gate::Y.matrix1().unwrap(); // ca-lint: allow(panic) -- Y matrix is statically defined
                let id = Mat2::identity();
                let t1 = Mat4::kron(&id, &x);
                let t2 = Mat4::kron(&x, &y);
                let mut m = Mat4::zero();
                for i in 0..4 {
                    for j in 0..4 {
                        m.0[i][j] = (t1.0[i][j] - t2.0[i][j]).scale(FRAC_1_SQRT_2);
                    }
                }
                m
            }
            Gate::Rzz(t) => {
                let e0 = C64::cis(-t / 2.0);
                let e1 = C64::cis(t / 2.0);
                let mut m = Mat4::zero();
                m.0[0][0] = e0;
                m.0[1][1] = e1;
                m.0[2][2] = e1;
                m.0[3][3] = e0;
                m
            }
            Gate::Can { alpha, beta, gamma } => canonical_matrix(alpha, beta, gamma),
            _ => return None,
        };
        Some(m)
    }

    /// True for gates that are Clifford operations.
    pub fn is_clifford(&self) -> bool {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Cx
            | Gate::Cz
            | Gate::Ecr => true,
            Gate::Rz(t) | Gate::Rx(t) | Gate::Ry(t) => {
                let q = t / std::f64::consts::FRAC_PI_2;
                (q - q.round()).abs() < 1e-12
            }
            Gate::Rzz(t) => {
                let q = t / std::f64::consts::FRAC_PI_2;
                (q - q.round()).abs() < 1e-12
            }
            _ => false,
        }
    }
}

/// The canonical two-qubit unitary `exp[i(α XX + β YY + γ ZZ)]`
/// (Eq. (5) of the paper).
///
/// The three terms commute, and the matrix is block diagonal over
/// {|00⟩, |11⟩} and {|01⟩, |10⟩}:
///
/// * even block: `e^{iγ} [[cos(α−β), i·sin(α−β)], [i·sin(α−β), cos(α−β)]]`
/// * odd block:  `e^{−iγ} [[cos(α+β), i·sin(α+β)], [i·sin(α+β), cos(α+β)]]`
pub fn canonical_matrix(alpha: f64, beta: f64, gamma: f64) -> Mat4 {
    let mut m = Mat4::zero();
    let d = alpha - beta;
    let s = alpha + beta;
    let eg = C64::cis(gamma);
    let emg = C64::cis(-gamma);
    // Even-parity block: indices 0 (|00⟩) and 3 (|11⟩).
    m.0[0][0] = eg.scale(d.cos());
    m.0[0][3] = (IM * eg).scale(d.sin());
    m.0[3][0] = (IM * eg).scale(d.sin());
    m.0[3][3] = eg.scale(d.cos());
    // Odd-parity block: indices 1 (|10⟩ low-bit set) and 2 (|01⟩).
    m.0[1][1] = emg.scale(s.cos());
    m.0[1][2] = (IM * emg).scale(s.sin());
    m.0[2][1] = (IM * emg).scale(s.sin());
    m.0[2][2] = emg.scale(s.cos());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn all_unitary_gates_have_unitary_matrices() {
        let ones: &[Gate] = &[
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.3),
            Gate::Ry(-1.1),
            Gate::Rz(2.2),
            Gate::U {
                theta: 0.4,
                phi: 1.0,
                lam: -0.6,
            },
        ];
        for g in ones {
            assert!(g.matrix1().unwrap().is_unitary(TOL), "{}", g.name());
        }
        let twos: &[Gate] = &[
            Gate::Cx,
            Gate::Cz,
            Gate::Ecr,
            Gate::Rzz(0.7),
            Gate::Can {
                alpha: 0.2,
                beta: 0.5,
                gamma: -0.3,
            },
        ];
        for g in twos {
            assert!(g.matrix2().unwrap().is_unitary(TOL), "{}", g.name());
        }
    }

    #[test]
    fn inverses_compose_to_identity() {
        let ones: &[Gate] = &[
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.9),
            Gate::Ry(0.4),
            Gate::Rz(-0.5),
            Gate::U {
                theta: 0.4,
                phi: 1.0,
                lam: -0.6,
            },
        ];
        for g in ones {
            let m = g.matrix1().unwrap();
            let mi = g.inverse().matrix1().unwrap();
            assert!(
                m.mul(&mi).approx_eq_up_to_phase(&Mat2::identity(), TOL),
                "{}",
                g.name()
            );
        }
        let twos: &[Gate] = &[
            Gate::Rzz(1.3),
            Gate::Can {
                alpha: 0.2,
                beta: 0.5,
                gamma: -0.3,
            },
            Gate::Cx,
            Gate::Ecr,
        ];
        for g in twos {
            let m = g.matrix2().unwrap();
            let mi = g.inverse().matrix2().unwrap();
            assert!(
                m.mul(&mi).approx_eq_up_to_phase(&Mat4::identity(), TOL),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx.matrix1().unwrap();
        let x = Gate::X.matrix1().unwrap();
        assert!(sx.mul(&sx).approx_eq_up_to_phase(&x, TOL));
    }

    #[test]
    fn ecr_is_self_inverse() {
        let e = Gate::Ecr.matrix2().unwrap();
        assert!(e.mul(&e).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn ecr_matches_reference_matrix() {
        // Reference (Qiskit convention, little-endian, q0 = control):
        // 1/√2 [[0,1,0,i],[1,0,-i,0],[0,i,0,1],[-i,0,1,0]].
        let e = Gate::Ecr.matrix2().unwrap();
        let h = FRAC_1_SQRT_2;
        let expect = [
            [ZERO, C64::real(h), ZERO, C64::new(0.0, h)],
            [C64::real(h), ZERO, C64::new(0.0, -h), ZERO],
            [ZERO, C64::new(0.0, h), ZERO, C64::real(h)],
            [C64::new(0.0, -h), ZERO, C64::real(h), ZERO],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!(e.0[i][j].approx_eq(expect[i][j], TOL), "({i},{j})");
            }
        }
    }

    #[test]
    fn cx_from_ecr_with_local_fixups() {
        // CX = e^{−iπ/4}·Rz(−π/2)_c·Rx(−π/2)_t·X_c·ECR.
        let ecr = Gate::Ecr.matrix2().unwrap();
        let xc = Mat4::kron(&Mat2::identity(), &Gate::X.matrix1().unwrap());
        let rxt = Mat4::kron(&Gate::Rx(-PI / 2.0).matrix1().unwrap(), &Mat2::identity());
        let rzc = Mat4::kron(&Mat2::identity(), &Gate::Rz(-PI / 2.0).matrix1().unwrap());
        let composed = rzc.mul(&rxt).mul(&xc).mul(&ecr);
        assert!(composed.approx_eq_up_to_phase(&Gate::Cx.matrix2().unwrap(), 1e-10));
    }

    #[test]
    fn rzz_equals_canonical_gamma_only() {
        // Rzz(θ) = exp(−iθZZ/2) = Can(0, 0, −θ/2) up to global phase.
        let theta = 0.77;
        let rzz = Gate::Rzz(theta).matrix2().unwrap();
        let can = canonical_matrix(0.0, 0.0, -theta / 2.0);
        assert!(rzz.approx_eq_up_to_phase(&can, TOL));
    }

    #[test]
    fn canonical_terms_commute() {
        // Can(a,0,0)·Can(0,b,0)·Can(0,0,c) = Can(a,b,c) in any order.
        let (a, b, c) = (0.3, -0.2, 0.5);
        let full = canonical_matrix(a, b, c);
        let xa = canonical_matrix(a, 0.0, 0.0);
        let yb = canonical_matrix(0.0, b, 0.0);
        let zc = canonical_matrix(0.0, 0.0, c);
        assert!(xa.mul(&yb).mul(&zc).approx_eq(&full, 1e-10));
        assert!(zc.mul(&xa).mul(&yb).approx_eq(&full, 1e-10));
    }

    #[test]
    fn canonical_at_clifford_point_is_cnot_class() {
        // Can(π/4, 0, 0) = exp(iπ/4 XX) is locally equivalent to CNOT;
        // sanity: it is maximally entangling, i.e. squares to X⊗X phase.
        let m = canonical_matrix(PI / 4.0, 0.0, 0.0);
        let xx = Mat4::kron(&Gate::X.matrix1().unwrap(), &Gate::X.matrix1().unwrap());
        assert!(m.mul(&m).approx_eq_up_to_phase(&xx, 1e-10));
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let m = Gate::Cx.matrix2().unwrap();
        // |c=1,t=0⟩ = index 1 maps to |c=1,t=1⟩ = index 3.
        assert!(m.0[3][1].approx_eq(ONE, TOL));
        assert!(m.0[1][1].approx_eq(ZERO, TOL));
    }

    #[test]
    fn clifford_detection() {
        assert!(Gate::Rz(PI / 2.0).is_clifford());
        assert!(!Gate::Rz(0.3).is_clifford());
        assert!(Gate::Ecr.is_clifford());
        assert!(!Gate::Can {
            alpha: 0.1,
            beta: 0.0,
            gamma: 0.0
        }
        .is_clifford());
    }

    #[test]
    fn virtual_gates_are_flagged() {
        assert!(Gate::Rz(0.1).is_virtual());
        assert!(!Gate::Sx.is_virtual());
        assert!(!Gate::X.is_virtual());
    }
}

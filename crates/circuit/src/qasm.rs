//! OpenQASM 3 export.
//!
//! Emits circuits in a portable subset of OpenQASM 3 so compiled
//! results can be inspected with external tooling or shipped to a real
//! backend. Canonical gates are exported through their 3-CNOT
//! decomposition; delays use `delay[…ns]`; feed-forward conditions use
//! `if (c[k] == v)` blocks.

use crate::canonical::can_to_cx;
use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Instruction;
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 3 source.
pub fn to_qasm3(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str("include \"stdgates.inc\";\n");
    let _ = writeln!(out, "qubit[{}] q;", circuit.num_qubits);
    if circuit.num_clbits > 0 {
        let _ = writeln!(out, "bit[{}] c;", circuit.num_clbits);
    }
    for instr in &circuit.instructions {
        emit(&mut out, instr);
    }
    out
}

fn emit(out: &mut String, instr: &Instruction) {
    if let Some(cond) = instr.condition {
        let _ = writeln!(out, "if (c[{}] == {}) {{", cond.clbit, cond.value as u8);
        let inner = Instruction {
            condition: None,
            ..instr.clone()
        };
        emit(out, &inner);
        out.push_str("}\n");
        return;
    }
    let q = |i: usize| format!("q[{}]", instr.qubits[i]);
    let line = match instr.gate {
        Gate::I => format!("id {};", q(0)),
        Gate::X => format!("x {};", q(0)),
        Gate::Y => format!("y {};", q(0)),
        Gate::Z => format!("z {};", q(0)),
        Gate::H => format!("h {};", q(0)),
        Gate::S => format!("s {};", q(0)),
        Gate::Sdg => format!("sdg {};", q(0)),
        Gate::T => format!("t {};", q(0)),
        Gate::Tdg => format!("tdg {};", q(0)),
        Gate::Sx => format!("sx {};", q(0)),
        Gate::Sxdg => format!("sxdg {};", q(0)),
        Gate::Rx(t) => format!("rx({t}) {};", q(0)),
        Gate::Ry(t) => format!("ry({t}) {};", q(0)),
        Gate::Rz(t) => format!("rz({t}) {};", q(0)),
        Gate::U { theta, phi, lam } => format!("U({theta}, {phi}, {lam}) {};", q(0)),
        Gate::Cx => format!("cx {}, {};", q(0), q(1)),
        Gate::Cz => format!("cz {}, {};", q(0), q(1)),
        Gate::Ecr => format!("ecr {}, {};", q(0), q(1)),
        Gate::Rzz(t) => format!("rzz({t}) {}, {};", q(0), q(1)),
        Gate::Can { alpha, beta, gamma } => {
            // Export via the exact 3-CNOT decomposition.
            for sub in can_to_cx(alpha, beta, gamma, instr.qubits[0], instr.qubits[1]) {
                emit(out, &sub);
            }
            return;
        }
        Gate::Measure => {
            let c = instr.clbit.expect("measure needs a clbit"); // ca-lint: allow(panic) -- circuit validation guarantees measures carry a clbit
            format!("c[{c}] = measure {};", q(0))
        }
        Gate::Reset => format!("reset {};", q(0)),
        Gate::Delay(ns) => format!("delay[{ns}ns] {};", q(0)),
        Gate::Barrier => {
            let qs: Vec<String> = instr.qubits.iter().map(|&x| format!("q[{x}]")).collect();
            format!("barrier {};", qs.join(", "))
        }
    };
    out.push_str(&line);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_registers() {
        let mut qc = Circuit::new(3, 2);
        qc.h(0);
        let s = to_qasm3(&qc);
        assert!(s.starts_with("OPENQASM 3.0;"));
        assert!(s.contains("qubit[3] q;"));
        assert!(s.contains("bit[2] c;"));
        assert!(s.contains("h q[0];"));
    }

    #[test]
    fn no_bit_register_when_unused() {
        let qc = Circuit::new(1, 0);
        assert!(!to_qasm3(&qc).contains("\nbit["));
    }

    #[test]
    fn two_qubit_gates_and_measure() {
        let mut qc = Circuit::new(2, 1);
        qc.ecr(0, 1).rzz(0.5, 0, 1).measure(1, 0);
        let s = to_qasm3(&qc);
        assert!(s.contains("ecr q[0], q[1];"));
        assert!(s.contains("rzz(0.5) q[0], q[1];"));
        assert!(s.contains("c[0] = measure q[1];"));
    }

    #[test]
    fn canonical_gate_expands_to_cnots() {
        let mut qc = Circuit::new(2, 0);
        qc.can(0.1, 0.2, 0.3, 0, 1);
        let s = to_qasm3(&qc);
        assert_eq!(s.matches("cx ").count(), 3);
        assert!(!s.contains("can"));
    }

    #[test]
    fn conditional_wraps_in_if() {
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0).gate_if(Gate::X, [1], 0, true);
        let s = to_qasm3(&qc);
        assert!(s.contains("if (c[0] == 1) {"));
        assert!(s.contains("x q[1];"));
    }

    #[test]
    fn delay_and_barrier_syntax() {
        let mut qc = Circuit::new(2, 0);
        qc.delay(480.0, 0);
        qc.barrier(vec![0, 1]);
        let s = to_qasm3(&qc);
        assert!(s.contains("delay[480ns] q[0];"));
        assert!(s.contains("barrier q[0], q[1];"));
    }
}

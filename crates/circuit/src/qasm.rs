//! OpenQASM 3 export and import.
//!
//! [`to_qasm3`] emits circuits in a portable subset of OpenQASM 3 so
//! compiled results can be inspected with external tooling or shipped
//! to a real backend. Canonical gates are exported through their
//! 3-CNOT decomposition; delays use `delay[…ns]`; feed-forward
//! conditions use `if (c[k] == v)` blocks.
//!
//! [`parse`] reads the same subset back — everything the exporter can
//! emit round-trips (`parse(to_qasm3(c))` re-exports to the identical
//! source), plus `//` line comments and flexible whitespace. Parsing
//! never panics: malformed source yields a [`QasmError`] carrying the
//! 1-based line and column of the offending token.

use crate::canonical::can_to_cx;
use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction};
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 3 source.
pub fn to_qasm3(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str("include \"stdgates.inc\";\n");
    let _ = writeln!(out, "qubit[{}] q;", circuit.num_qubits);
    if circuit.num_clbits > 0 {
        let _ = writeln!(out, "bit[{}] c;", circuit.num_clbits);
    }
    for instr in &circuit.instructions {
        emit(&mut out, instr);
    }
    out
}

fn emit(out: &mut String, instr: &Instruction) {
    if let Some(cond) = instr.condition {
        let _ = writeln!(out, "if (c[{}] == {}) {{", cond.clbit, cond.value as u8);
        let inner = Instruction {
            condition: None,
            ..instr.clone()
        };
        emit(out, &inner);
        out.push_str("}\n");
        return;
    }
    let q = |i: usize| format!("q[{}]", instr.qubits[i]);
    let line = match instr.gate {
        Gate::I => format!("id {};", q(0)),
        Gate::X => format!("x {};", q(0)),
        Gate::Y => format!("y {};", q(0)),
        Gate::Z => format!("z {};", q(0)),
        Gate::H => format!("h {};", q(0)),
        Gate::S => format!("s {};", q(0)),
        Gate::Sdg => format!("sdg {};", q(0)),
        Gate::T => format!("t {};", q(0)),
        Gate::Tdg => format!("tdg {};", q(0)),
        Gate::Sx => format!("sx {};", q(0)),
        Gate::Sxdg => format!("sxdg {};", q(0)),
        Gate::Rx(t) => format!("rx({t}) {};", q(0)),
        Gate::Ry(t) => format!("ry({t}) {};", q(0)),
        Gate::Rz(t) => format!("rz({t}) {};", q(0)),
        Gate::U { theta, phi, lam } => format!("U({theta}, {phi}, {lam}) {};", q(0)),
        Gate::Cx => format!("cx {}, {};", q(0), q(1)),
        Gate::Cz => format!("cz {}, {};", q(0), q(1)),
        Gate::Ecr => format!("ecr {}, {};", q(0), q(1)),
        Gate::Rzz(t) => format!("rzz({t}) {}, {};", q(0), q(1)),
        Gate::Can { alpha, beta, gamma } => {
            // Export via the exact 3-CNOT decomposition.
            for sub in can_to_cx(alpha, beta, gamma, instr.qubits[0], instr.qubits[1]) {
                emit(out, &sub);
            }
            return;
        }
        Gate::Measure => {
            let c = instr.clbit.expect("measure needs a clbit"); // ca-lint: allow(panic) -- circuit validation guarantees measures carry a clbit
            format!("c[{c}] = measure {};", q(0))
        }
        Gate::Reset => format!("reset {};", q(0)),
        Gate::Delay(ns) => format!("delay[{ns}ns] {};", q(0)),
        Gate::Barrier => {
            let qs: Vec<String> = instr.qubits.iter().map(|&x| format!("q[{x}]")).collect();
            format!("barrier {};", qs.join(", "))
        }
    };
    out.push_str(&line);
    out.push('\n');
}

/// A parse failure: what went wrong and where.
///
/// `line`/`col` are 1-based and point at the first character of the
/// offending token (or at end-of-input for truncated source).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// What was expected or what constraint the source violates.
    pub message: String,
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for QasmError {}

/// Parses the OpenQASM 3 subset [`to_qasm3`] emits back into a
/// [`Circuit`].
///
/// Supported statements: the header (`OPENQASM 3.x;`, an optional
/// `include`), one `qubit[N] q;` and at most one `bit[M] c;`
/// declaration, the exporter's gate set (`id x y z h s sdg t tdg sx
/// sxdg`, `rx ry rz` and `U` with parenthesised angles, `cx cz ecr`,
/// `rzz`), `c[k] = measure q[i];`, `reset`, `delay[…ns]`, `barrier`
/// (including the exporter's empty `barrier ;`), and single-level
/// `if (c[k] == v) { … }` feed-forward blocks. `//` comments and
/// arbitrary whitespace are accepted anywhere.
///
/// All qubit/clbit indices are validated against the declarations, so
/// the returned circuit upholds [`Circuit::push`]'s invariants;
/// malformed source returns a [`QasmError`] and never panics.
pub fn parse(src: &str) -> Result<Circuit, QasmError> {
    Parser::new(src).parse_program()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

/// Register declarations seen so far (`None` until declared).
struct Regs {
    qubits: Option<usize>,
    clbits: Option<usize>,
}

impl Parser {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> QasmError {
        QasmError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn err_at(&self, at: (usize, usize), message: impl Into<String>) -> QasmError {
        QasmError {
            line: at.0,
            col: at.1,
            message: message.into(),
        }
    }

    fn here(&self) -> (usize, usize) {
        (self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Skips whitespace and `//` line comments.
    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.chars.get(self.pos + 1) == Some(&'/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.peek().is_none()
    }

    fn expect_char(&mut self, want: char) -> Result<(), QasmError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == want => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected `{want}`, found `{c}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    /// Consumes `want` if it is next (after whitespace).
    fn eat_char(&mut self, want: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// An identifier / keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    fn parse_ident(&mut self) -> Result<String, QasmError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            Some(c) => return Err(self.err(format!("expected identifier, found `{c}`"))),
            None => return Err(self.err("expected identifier, found end of input")),
        }
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_usize(&mut self) -> Result<usize, QasmError> {
        self.skip_ws();
        let start = self.here();
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.err("expected an unsigned integer"));
        }
        digits
            .parse()
            .map_err(|_| self.err_at(start, format!("integer `{digits}` out of range")))
    }

    /// A float in the formats Rust's `{}` / `{:?}` emit for `f64`
    /// (digits, optional fraction and exponent, `inf`, `NaN`), with
    /// an optional leading sign.
    fn parse_f64(&mut self) -> Result<f64, QasmError> {
        self.skip_ws();
        let start = self.here();
        let mut text = String::new();
        if matches!(self.peek(), Some('+' | '-')) {
            // bump() returned the peeked char above.
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        if self.peek() == Some('i') || self.peek() == Some('N') {
            // `inf` / `NaN`: consume the alphabetic run.
            while let Some(c) = self.peek() {
                if c.is_ascii_alphabetic() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while matches!(self.peek(), Some('0'..='9' | '.')) {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            if matches!(self.peek(), Some('e' | 'E')) {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
                if matches!(self.peek(), Some('+' | '-')) {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                while matches!(self.peek(), Some('0'..='9')) {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
            }
        }
        text.parse()
            .map_err(|_| self.err_at(start, format!("expected a number, found `{text}`")))
    }

    /// `q[i]`, validated against the qubit declaration.
    fn parse_qubit(&mut self, regs: &Regs) -> Result<usize, QasmError> {
        self.skip_ws();
        let start = self.here();
        let name = self.parse_ident()?;
        if name != "q" {
            return Err(self.err_at(
                start,
                format!("expected qubit operand `q[...]`, found `{name}`"),
            ));
        }
        let Some(nq) = regs.qubits else {
            return Err(self.err_at(start, "qubit register `q` used before `qubit[N] q;`"));
        };
        self.expect_char('[')?;
        let idx_at = {
            self.skip_ws();
            self.here()
        };
        let i = self.parse_usize()?;
        self.expect_char(']')?;
        if i >= nq {
            return Err(self.err_at(
                idx_at,
                format!("qubit index {i} out of range for `qubit[{nq}] q;`"),
            ));
        }
        Ok(i)
    }

    /// `[k]` after an already-consumed `c`, validated against the bit
    /// declaration.
    fn parse_clbit_index(&mut self, regs: &Regs, at: (usize, usize)) -> Result<usize, QasmError> {
        let Some(nc) = regs.clbits else {
            return Err(self.err_at(at, "classical register `c` used before `bit[M] c;`"));
        };
        self.expect_char('[')?;
        let idx_at = {
            self.skip_ws();
            self.here()
        };
        let k = self.parse_usize()?;
        self.expect_char(']')?;
        if k >= nc {
            return Err(self.err_at(
                idx_at,
                format!("classical bit index {k} out of range for `bit[{nc}] c;`"),
            ));
        }
        Ok(k)
    }

    fn parse_program(&mut self) -> Result<Circuit, QasmError> {
        // Header: `OPENQASM 3.x;`
        self.skip_ws();
        let start = self.here();
        let kw = self.parse_ident()?;
        if kw != "OPENQASM" {
            return Err(self.err_at(start, format!("expected `OPENQASM` header, found `{kw}`")));
        }
        self.skip_ws();
        let ver_at = self.here();
        let version = self.parse_f64()?;
        if !(3.0..4.0).contains(&version) {
            return Err(self.err_at(
                ver_at,
                format!("unsupported OpenQASM version {version}; this parser reads 3.x"),
            ));
        }
        self.expect_char(';')?;

        let mut regs = Regs {
            qubits: None,
            clbits: None,
        };
        let mut instructions: Vec<Instruction> = Vec::new();
        while !self.at_end() {
            let start = self.here();
            let ident = self.parse_ident()?;
            match ident.as_str() {
                "include" => {
                    // `include "...";` — accepted and ignored.
                    self.expect_char('"')?;
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some(_) => {}
                            None => {
                                return Err(self.err("unterminated include string"));
                            }
                        }
                    }
                    self.expect_char(';')?;
                }
                "qubit" => {
                    if regs.qubits.is_some() {
                        return Err(self.err_at(start, "duplicate `qubit` declaration"));
                    }
                    self.expect_char('[')?;
                    let n = self.parse_usize()?;
                    self.expect_char(']')?;
                    let name_at = {
                        self.skip_ws();
                        self.here()
                    };
                    let name = self.parse_ident()?;
                    if name != "q" {
                        return Err(self.err_at(
                            name_at,
                            format!("expected qubit register name `q`, found `{name}`"),
                        ));
                    }
                    self.expect_char(';')?;
                    regs.qubits = Some(n);
                }
                "bit" => {
                    if regs.clbits.is_some() {
                        return Err(self.err_at(start, "duplicate `bit` declaration"));
                    }
                    self.expect_char('[')?;
                    let n = self.parse_usize()?;
                    self.expect_char(']')?;
                    let name_at = {
                        self.skip_ws();
                        self.here()
                    };
                    let name = self.parse_ident()?;
                    if name != "c" {
                        return Err(self.err_at(
                            name_at,
                            format!("expected bit register name `c`, found `{name}`"),
                        ));
                    }
                    self.expect_char(';')?;
                    regs.clbits = Some(n);
                }
                "if" => {
                    self.expect_char('(')?;
                    self.skip_ws();
                    let c_at = self.here();
                    let reg = self.parse_ident()?;
                    if reg != "c" {
                        return Err(self.err_at(
                            c_at,
                            format!("expected condition on `c[...]`, found `{reg}`"),
                        ));
                    }
                    let clbit = self.parse_clbit_index(&regs, c_at)?;
                    self.expect_char('=')?;
                    self.expect_char('=')?;
                    self.skip_ws();
                    let v_at = self.here();
                    let value = self.parse_usize()?;
                    if value > 1 {
                        return Err(self.err_at(
                            v_at,
                            format!("condition value must be 0 or 1, found {value}"),
                        ));
                    }
                    self.expect_char(')')?;
                    self.expect_char('{')?;
                    let cond = Condition {
                        clbit,
                        value: value == 1,
                    };
                    // The body: statements until `}`, each guarded by
                    // the condition. Nested `if` is outside the
                    // exporter's subset.
                    loop {
                        if self.eat_char('}') {
                            break;
                        }
                        if self.peek().is_none() {
                            return Err(self.err("unterminated `if` block: expected `}`"));
                        }
                        let inner_at = self.here();
                        let inner = self.parse_ident()?;
                        if inner == "if" {
                            return Err(
                                self.err_at(inner_at, "nested `if` blocks are not supported")
                            );
                        }
                        self.parse_op(&inner, inner_at, Some(cond), &regs, &mut instructions)?;
                    }
                }
                _ => {
                    self.parse_op(&ident, start, None, &regs, &mut instructions)?;
                }
            }
        }
        let mut circuit = Circuit::new(regs.qubits.unwrap_or(0), regs.clbits.unwrap_or(0));
        circuit.instructions = instructions;
        Ok(circuit)
    }

    /// One gate/measure/reset/delay/barrier statement whose leading
    /// identifier is already consumed. Indices are validated here, so
    /// the instructions uphold the circuit invariants by construction.
    fn parse_op(
        &mut self,
        ident: &str,
        at: (usize, usize),
        condition: Option<Condition>,
        regs: &Regs,
        out: &mut Vec<Instruction>,
    ) -> Result<(), QasmError> {
        let fixed_1q = |g: Gate| Some(g);
        let gate_1q = match ident {
            "id" => fixed_1q(Gate::I),
            "x" => fixed_1q(Gate::X),
            "y" => fixed_1q(Gate::Y),
            "z" => fixed_1q(Gate::Z),
            "h" => fixed_1q(Gate::H),
            "s" => fixed_1q(Gate::S),
            "sdg" => fixed_1q(Gate::Sdg),
            "t" => fixed_1q(Gate::T),
            "tdg" => fixed_1q(Gate::Tdg),
            "sx" => fixed_1q(Gate::Sx),
            "sxdg" => fixed_1q(Gate::Sxdg),
            _ => None,
        };
        let mut push = |instr: Instruction| {
            out.push(Instruction { condition, ..instr });
        };
        if let Some(gate) = gate_1q {
            let q = self.parse_qubit(regs)?;
            self.expect_char(';')?;
            push(Instruction::new(gate, [q]));
            return Ok(());
        }
        match ident {
            "rx" | "ry" | "rz" => {
                self.expect_char('(')?;
                let theta = self.parse_f64()?;
                self.expect_char(')')?;
                let q = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                let gate = match ident {
                    "rx" => Gate::Rx(theta),
                    "ry" => Gate::Ry(theta),
                    _ => Gate::Rz(theta),
                };
                push(Instruction::new(gate, [q]));
            }
            "U" => {
                self.expect_char('(')?;
                let theta = self.parse_f64()?;
                self.expect_char(',')?;
                let phi = self.parse_f64()?;
                self.expect_char(',')?;
                let lam = self.parse_f64()?;
                self.expect_char(')')?;
                let q = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                push(Instruction::new(Gate::U { theta, phi, lam }, [q]));
            }
            "cx" | "cz" | "ecr" => {
                let a = self.parse_qubit(regs)?;
                self.expect_char(',')?;
                let b = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                let gate = match ident {
                    "cx" => Gate::Cx,
                    "cz" => Gate::Cz,
                    _ => Gate::Ecr,
                };
                push(Instruction::new(gate, [a, b]));
            }
            "rzz" => {
                self.expect_char('(')?;
                let theta = self.parse_f64()?;
                self.expect_char(')')?;
                let a = self.parse_qubit(regs)?;
                self.expect_char(',')?;
                let b = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                push(Instruction::new(Gate::Rzz(theta), [a, b]));
            }
            "reset" => {
                let q = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                push(Instruction::new(Gate::Reset, [q]));
            }
            "delay" => {
                self.expect_char('[')?;
                let ns = self.parse_f64()?;
                let unit_at = {
                    self.skip_ws();
                    self.here()
                };
                let unit = self.parse_ident()?;
                if unit != "ns" {
                    return Err(self.err_at(
                        unit_at,
                        format!("expected duration unit `ns`, found `{unit}`"),
                    ));
                }
                self.expect_char(']')?;
                let q = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                push(Instruction::new(Gate::Delay(ns), [q]));
            }
            "barrier" => {
                let mut qubits = Vec::new();
                if !self.eat_char(';') {
                    loop {
                        qubits.push(self.parse_qubit(regs)?);
                        if self.eat_char(',') {
                            continue;
                        }
                        self.expect_char(';')?;
                        break;
                    }
                }
                push(Instruction::new(Gate::Barrier, qubits));
            }
            "c" => {
                // `c[k] = measure q[i];`
                let k = self.parse_clbit_index(regs, at)?;
                self.expect_char('=')?;
                self.skip_ws();
                let kw_at = self.here();
                let kw = self.parse_ident()?;
                if kw != "measure" {
                    return Err(self.err_at(kw_at, format!("expected `measure`, found `{kw}`")));
                }
                let q = self.parse_qubit(regs)?;
                self.expect_char(';')?;
                push(Instruction {
                    gate: Gate::Measure,
                    qubits: vec![q],
                    clbit: Some(k),
                    condition: None,
                    merged: false,
                });
            }
            _ => {
                return Err(self.err_at(at, format!("unknown statement or gate `{ident}`")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_registers() {
        let mut qc = Circuit::new(3, 2);
        qc.h(0);
        let s = to_qasm3(&qc);
        assert!(s.starts_with("OPENQASM 3.0;"));
        assert!(s.contains("qubit[3] q;"));
        assert!(s.contains("bit[2] c;"));
        assert!(s.contains("h q[0];"));
    }

    #[test]
    fn no_bit_register_when_unused() {
        let qc = Circuit::new(1, 0);
        assert!(!to_qasm3(&qc).contains("\nbit["));
    }

    #[test]
    fn two_qubit_gates_and_measure() {
        let mut qc = Circuit::new(2, 1);
        qc.ecr(0, 1).rzz(0.5, 0, 1).measure(1, 0);
        let s = to_qasm3(&qc);
        assert!(s.contains("ecr q[0], q[1];"));
        assert!(s.contains("rzz(0.5) q[0], q[1];"));
        assert!(s.contains("c[0] = measure q[1];"));
    }

    #[test]
    fn canonical_gate_expands_to_cnots() {
        let mut qc = Circuit::new(2, 0);
        qc.can(0.1, 0.2, 0.3, 0, 1);
        let s = to_qasm3(&qc);
        assert_eq!(s.matches("cx ").count(), 3);
        assert!(!s.contains("can"));
    }

    #[test]
    fn conditional_wraps_in_if() {
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0).gate_if(Gate::X, [1], 0, true);
        let s = to_qasm3(&qc);
        assert!(s.contains("if (c[0] == 1) {"));
        assert!(s.contains("x q[1];"));
    }

    #[test]
    fn delay_and_barrier_syntax() {
        let mut qc = Circuit::new(2, 0);
        qc.delay(480.0, 0);
        qc.barrier(vec![0, 1]);
        let s = to_qasm3(&qc);
        assert!(s.contains("delay[480ns] q[0];"));
        assert!(s.contains("barrier q[0], q[1];"));
    }

    fn roundtrip(qc: &Circuit) {
        let first = to_qasm3(qc);
        let parsed = parse(&first).expect("exporter output must parse");
        assert_eq!(
            to_qasm3(&parsed),
            first,
            "re-export differs from original export"
        );
    }

    #[test]
    fn parse_roundtrips_every_statement_kind() {
        let mut qc = Circuit::new(3, 2);
        qc.h(0).x(1).sdg(2).sx(0);
        qc.rx(0.25, 0).rz(-1.5, 1);
        qc.push(Instruction::new(
            Gate::U {
                theta: 0.1,
                phi: -0.2,
                lam: 3.5,
            },
            [2],
        ));
        qc.cx(0, 1).cz(1, 2).ecr(2, 0).rzz(0.75, 0, 2);
        qc.delay(480.0, 1);
        qc.barrier(vec![0, 2]);
        qc.barrier(Vec::new());
        qc.reset(1);
        qc.measure(0, 0);
        qc.gate_if(Gate::X, [1], 0, true);
        qc.measure(1, 1);
        roundtrip(&qc);
    }

    #[test]
    fn parse_recovers_structure() {
        let mut qc = Circuit::new(2, 1);
        qc.h(0)
            .cx(0, 1)
            .measure(1, 0)
            .gate_if(Gate::Z, [0], 0, false);
        let parsed = parse(&to_qasm3(&qc)).expect("valid export");
        assert_eq!(parsed.num_qubits, 2);
        assert_eq!(parsed.num_clbits, 1);
        assert_eq!(parsed.instructions, qc.instructions);
    }

    #[test]
    fn parse_accepts_comments_and_whitespace() {
        let src =
            "// generated\nOPENQASM 3.0;\n\nqubit[2] q; // two qubits\n  h   q[0] ;\ncx q[0],q[1];";
        let qc = parse(src).expect("comments and loose spacing are fine");
        assert_eq!(qc.instructions.len(), 2);
        assert_eq!(qc.instructions[1].gate, Gate::Cx);
    }

    #[test]
    fn parse_rejects_out_of_range_qubit_with_position() {
        let src = "OPENQASM 3.0;\nqubit[2] q;\nh q[5];\n";
        let err = parse(src).expect_err("index 5 exceeds register");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("out of range"), "got: {}", err.message);
    }

    #[test]
    fn parse_rejects_unknown_gate() {
        let err =
            parse("OPENQASM 3.0;\nqubit[1] q;\nfrobnicate q[0];\n").expect_err("unknown statement");
        assert_eq!((err.line, err.col), (3, 1));
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn parse_rejects_clbit_use_without_declaration() {
        let err = parse("OPENQASM 3.0;\nqubit[1] q;\nc[0] = measure q[0];\n")
            .expect_err("no bit register declared");
        assert!(err.message.contains("bit["), "got: {}", err.message);
    }

    #[test]
    fn parse_rejects_truncated_source() {
        let err = parse("OPENQASM 3.0;\nqubit[1] q;\nh q[0]").expect_err("missing semicolon");
        assert!(err.message.contains("`;`"), "got: {}", err.message);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let err = parse("OPENQASM 2.0;\nqubit[1] q;\n").expect_err("only 3.x supported");
        assert!(err.message.contains("version"), "got: {}", err.message);
    }

    #[test]
    fn parse_error_displays_location() {
        let err = parse("OPENQASM 3.0;\nbogus;\n").expect_err("bogus statement");
        let text = err.to_string();
        assert!(text.contains("2:"), "got: {text}");
    }

    #[test]
    fn parse_canonical_gate_expansion_roundtrips() {
        let mut qc = Circuit::new(2, 0);
        qc.can(0.1, 0.2, 0.3, 0, 1);
        roundtrip(&qc);
    }
}

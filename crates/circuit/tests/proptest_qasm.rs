//! Property tests for the OpenQASM 3 round trip.
//!
//! The export subset is the contract: anything [`to_qasm3`] can emit,
//! [`parse`] must read back, and re-exporting the parsed circuit must
//! reproduce the original source byte-for-byte. Random Clifford+Rz
//! circuits (the compiler's native gate family) exercise every gate
//! arm, measurement wiring, feed-forward conditions, delays, and
//! barriers; a second property checks the parsed IR itself matches the
//! source circuit modulo the exporter's canonical-gate expansion.

use ca_circuit::{parse, to_qasm3, Circuit, Gate, Instruction};
use proptest::prelude::*;

/// An abstract statement drawn with register-independent indices:
/// `(kind, a, b, angle, sel, barrier_qs)`. Indices are reduced modulo
/// the register size when the circuit is assembled, so one strategy
/// serves every qubit count.
type Spec = ((usize, usize, usize), (f64, usize, Vec<usize>));

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        (0..8usize, 0..64usize, 0..64usize),
        (
            -10.0..10.0f64,
            0..24usize,
            proptest::collection::vec(0..64usize, 0..3),
        ),
    )
}

/// Lowers a [`Spec`] onto an `n`-qubit, `n`-clbit register pair.
fn lower(spec: &Spec, n: usize) -> Instruction {
    let ((kind, a, b), (angle, sel, ref qs)) = *spec;
    let qa = a % n;
    match kind {
        // Fixed single-qubit Cliffords.
        0 => {
            let gate = match sel % 8 {
                0 => Gate::X,
                1 => Gate::Y,
                2 => Gate::Z,
                3 => Gate::H,
                4 => Gate::S,
                5 => Gate::Sdg,
                6 => Gate::Sx,
                _ => Gate::Sxdg,
            };
            Instruction::new(gate, [qa])
        }
        // Rz with a random angle.
        1 => Instruction::new(Gate::Rz(angle), [qa]),
        // Entanglers on a random ordered pair of distinct qubits.
        2 => {
            let qb = (qa + 1 + b % (n - 1)) % n;
            let gate = match sel % 3 {
                0 => Gate::Cx,
                1 => Gate::Cz,
                _ => Gate::Rzz(angle),
            };
            Instruction::new(gate, [qa, qb])
        }
        3 => Instruction::new(Gate::Reset, [qa]),
        4 => Instruction::new(Gate::Delay(angle.abs() * 100.0 + 1.0), [qa]),
        5 => {
            let mut qs: Vec<usize> = qs.iter().map(|q| q % n).collect();
            qs.sort_unstable();
            qs.dedup();
            Instruction::new(Gate::Barrier, qs)
        }
        6 => Instruction {
            gate: Gate::Measure,
            qubits: vec![qa],
            clbit: Some(qa),
            condition: None,
            merged: false,
        },
        // Feed-forward: a conditioned X.
        _ => Instruction::new(Gate::X, [qa]).with_condition(b % n, sel % 2 == 0),
    }
}

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2..6usize, proptest::collection::vec(spec_strategy(), 0..24)).prop_map(|(n, specs)| {
        let mut qc = Circuit::new(n, n);
        for spec in &specs {
            qc.push(lower(spec, n));
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_qasm3 → parse → to_qasm3` is the identity on source text.
    #[test]
    fn export_parse_export_is_identity(qc in circuit_strategy()) {
        let first = to_qasm3(&qc);
        let parsed = match parse(&first) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("exporter output failed to parse: {e}\n{first}"))),
        };
        let second = to_qasm3(&parsed);
        prop_assert_eq!(&second, &first);
    }

    /// Parsing recovers the instruction list exactly (the strategy
    /// avoids canonical gates, so the exporter's expansion never
    /// rewrites ops and the IR round-trips structurally too).
    #[test]
    fn parse_recovers_instructions(qc in circuit_strategy()) {
        let parsed = match parse(&to_qasm3(&qc)) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("exporter output failed to parse: {e}"))),
        };
        prop_assert_eq!(parsed.num_qubits, qc.num_qubits);
        prop_assert_eq!(parsed.num_clbits, qc.num_clbits);
        prop_assert_eq!(parsed.instructions, qc.instructions);
    }
}

//! Linted as `crates/sim/src/fixture.rs`: every panicking macro and
//! Option/Result shortcut in non-test library code must be flagged.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("fixture: digits only")
}

pub fn grade(n: u32) -> char {
    match n {
        0..=59 => 'F',
        60..=100 => 'P',
        _ => panic!("score out of range"),
    }
}

pub fn stage(n: u32) -> u32 {
    match n {
        0 => 1,
        1 => 2,
        _ => unreachable!("stages are binary"),
    }
}

pub fn later() -> u32 {
    todo!()
}

pub fn never() -> u32 {
    unimplemented!()
}

//! Linted as `crates/sim/src/fixture.rs`: a reasoned waiver suppresses
//! the violation on its line and is counted in the waiver ledger.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // ca-lint: allow(panic) -- fixture: caller guarantees a non-empty slice
}

//! Linted as `crates/sim/src/fixture.rs`: structured error handling,
//! debug assertions, and test code must all pass the `panic` rule.

pub fn first(xs: &[u32]) -> Result<u32, String> {
    xs.first().copied().ok_or_else(|| "empty slice".to_string())
}

pub fn parse(s: &str) -> Option<u32> {
    s.parse().ok()
}

pub fn checked(n: u32) -> u32 {
    debug_assert!(n < 100, "callers keep n in range");
    n + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}

//! Linted as `crates/sim/src/fixture.rs`: keying work off shot/job
//! indices is deterministic at any worker count.

pub fn shard(shot_index: u64, shards: u64) -> u64 {
    shot_index % shards
}

//! Linted as `crates/sim/src/fixture.rs`: thread-identity-derived
//! logic breaks the any-worker-count bit-identity contract.

pub fn shard() -> u64 {
    let id = std::thread::current().id();
    let mut h = std::hash::DefaultHasher::new();
    std::hash::Hash::hash(&id, &mut h);
    std::hash::Hasher::finish(&h)
}

//! Linted as `crates/sim/src/fixture.rs`: naming threads for
//! diagnostics does not affect results and may be waived.

pub fn worker_label() -> String {
    format!("{:?}", std::thread::current().id()) // ca-lint: allow(thread-id) -- fixture: label feeds a diagnostic string only
}

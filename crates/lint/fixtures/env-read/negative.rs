//! Linted as `crates/core/src/fixture.rs`: routing through
//! `ca_obs::var_parsed` keeps the discipline.

pub fn workers() -> usize {
    ca_obs::var_parsed("CA_SIM_WORKERS").unwrap_or(1)
}

//! Linted as `crates/core/src/fixture.rs`: direct environment reads
//! bypass the warn-once/invalid-counting discipline in `ca_obs::env`.

pub fn workers() -> usize {
    std::env::var("CA_SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

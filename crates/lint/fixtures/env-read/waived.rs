//! Linted as `crates/core/src/fixture.rs`: an environment read with a
//! reason (e.g. bootstrap ordering) may be waived.

pub fn bootstrap() -> Option<String> {
    std::env::var("CA_BOOT").ok() // ca-lint: allow(env-read) -- fixture: read before ca-obs is initialised
}

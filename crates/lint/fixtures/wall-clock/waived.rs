//! Linted as `crates/core/src/fixture.rs`: a clock read that
//! provably never feeds results may be waived.

pub fn log_line() -> String {
    let t0 = std::time::Instant::now(); // ca-lint: allow(wall-clock) -- fixture: duration goes to a log string, never into results
    format!("took {:?}", t0.elapsed())
}

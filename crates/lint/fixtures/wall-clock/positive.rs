//! Linted as `crates/core/src/fixture.rs` (not a clock crate): ad-hoc
//! wall-clock reads in result paths are flagged.

use std::time::Instant;

pub fn elapsed_ns() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn since_epoch() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

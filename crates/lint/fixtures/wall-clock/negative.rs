//! Linted as `crates/core/src/fixture.rs`: timing routed through
//! ca-obs spans (no direct clock reads) passes.

pub fn work() -> u32 {
    // Timing belongs in ca_obs::span("core", "work") — the span reads
    // the clock inside the clock crate, not here.
    41 + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}

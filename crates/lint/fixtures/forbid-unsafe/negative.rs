#![forbid(unsafe_code)]
//! Linted as `crates/sim/src/lib.rs`: the attribute anywhere in the
//! file satisfies the rule (by policy it sits on line 1).

pub fn f() -> u32 {
    1
}

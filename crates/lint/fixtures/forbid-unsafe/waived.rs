pub fn f() -> u32 { // ca-lint: allow(forbid-unsafe) -- fixture: vendor-shim-style exception, reviewed
    1
}

//! Linted as `crates/sim/src/lib.rs` (a crate root): missing
//! `#![forbid(unsafe_code)]` is flagged at line 1.

pub fn f() -> u32 {
    1
}

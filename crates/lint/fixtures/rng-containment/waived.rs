//! Linted as `crates/sim/src/fixture.rs`: an RNG reference outside
//! the sanctioned modules needs a reason.

pub use std::hint as rand; // ca-lint: allow(rng-containment) -- fixture: an alias naming the crate, not a draw

//! Linted as `crates/sim/src/noise.rs` (a sanctioned RNG module):
//! draws that flow from `plan::shot_seed` through an engine shot loop
//! are the sanctioned pattern.

use rand::Rng;

pub fn sanctioned_draw(rng: &mut impl Rng) -> f64 {
    rng.random()
}

//! Linted as `crates/sim/src/fixture.rs` (NOT a sanctioned RNG
//! module): stray RNG outside the `plan::shot_seed` discipline.

use rand::Rng;

pub fn stray_draw() -> f64 {
    rand::rng().random()
}

//! Linted as `crates/sim/src/fixture.rs`: a waiver matching no
//! violation is flagged as `unused-waiver` so stale waivers cannot
//! hide regressions.

// ca-lint: allow(panic) -- fixture: nothing on the next line panics
pub fn f() -> u32 {
    1
}

//! Linted as `crates/sim/src/fixture.rs`: a waiver without `-- reason`
//! suppresses nothing — both the original violation and a `waiver`
//! diagnostic are emitted.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // ca-lint: allow(panic)
}

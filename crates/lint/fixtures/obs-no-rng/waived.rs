//! Linted as `crates/obs/src/fixture.rs`: the waiver machinery works
//! on `obs-no-rng` too, though etiquette says never to use it — an
//! RNG-touching obs crate cannot honour CA_OBS-level bit-identity.

pub use std::hint as rand; // ca-lint: allow(obs-no-rng) -- fixture: demonstrates the ledger; real code must not do this

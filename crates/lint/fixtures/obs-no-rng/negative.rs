//! Linted as `crates/obs/src/fixture.rs`: instrumentation that only
//! reads clocks and writes its own shards passes.

pub fn record(ns: u64) -> u64 {
    // Counters and histograms only; no randomness anywhere.
    ns
}

//! Linted as `crates/obs/src/fixture.rs`: any `rand` reference inside
//! the observability crate violates the no-RNG invariant — even in
//! test code.

use rand::Rng;

pub fn jitter() -> f64 {
    rand::rng().random()
}

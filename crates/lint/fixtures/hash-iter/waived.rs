//! Linted as `crates/sim/src/fixture.rs`: order-independent reductions
//! over a hash map may be waived with a reason.

use std::collections::HashMap;

pub fn sum() -> u32 {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    counts.insert(1, 2);
    counts.values().sum() // ca-lint: allow(hash-iter) -- fixture: a commutative sum is order-independent
}

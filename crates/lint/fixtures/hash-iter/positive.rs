//! Linted as `crates/sim/src/fixture.rs` (a result-producing crate):
//! iterating a hash collection feeds hash order into results.

use std::collections::HashMap;

pub fn totals() -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    counts.insert(1, 2);
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push((*k, *v));
    }
    out
}

pub fn keys() -> Vec<u32> {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    seen.insert(1, 1);
    seen.keys().copied().collect()
}

//! Linted as `crates/sim/src/fixture.rs`: ordered collections and
//! lookup-only hash maps are fine.

use std::collections::{BTreeMap, HashMap};

pub fn totals() -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    counts.insert(1, 2);
    counts.iter().map(|(k, v)| (*k, *v)).collect()
}

pub fn lookup_only(key: u32) -> Option<u32> {
    let mut cache: HashMap<u32, u32> = HashMap::new();
    cache.insert(key, key + 1);
    cache.get(&key).copied()
}

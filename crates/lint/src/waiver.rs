//! Waiver comments: the only sanctioned way to keep a rule violation
//! in the tree.
//!
//! Syntax (a line comment, trailing the violating line or standing
//! alone immediately above it):
//!
//! ```text
//! // ca-lint: allow(panic) -- index proven in range by the loop bound
//! ```
//!
//! The reason after `--` is mandatory — a waiver without one does not
//! suppress anything and is itself reported. Waivers are counted and
//! budgeted in CI (`--max-waivers`), and a waiver that no rule
//! consumes is reported as stale so they cannot accumulate.

use crate::lexer::Scan;

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the comment itself.
    pub line: usize,
    /// Rules the waiver names, e.g. `["panic"]`.
    pub rules: Vec<String>,
    /// Justification after `--` (trimmed; may be empty = invalid).
    pub reason: String,
    /// The code line this waiver covers.
    pub applies_to: usize,
    /// Set when a rule consumed the waiver.
    pub used: bool,
}

/// Extracts waivers from a file's comments. `applies_to` is the
/// comment's own line for trailing comments, or the next non-blank
/// code line for standalone comments.
pub fn collect(scan: &Scan) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &scan.comments {
        // Strip doc-comment leaders so `/// ca-lint: …` also parses.
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("ca-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules_part, tail) = match rest.strip_prefix('(') {
            Some(r) => match r.split_once(')') {
                Some((inside, tail)) => (inside, tail),
                None => (r, ""),
            },
            None => ("", rest),
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = match tail.split_once("--") {
            Some((_, r)) => r.trim().to_string(),
            None => String::new(),
        };
        let applies_to = if c.own_line {
            // Next non-blank code line below the comment.
            let mut l = c.line + 1;
            while l <= scan.line_count() && scan.line_is_blank(l) {
                l += 1;
            }
            l
        } else {
            c.line
        };
        out.push(Waiver {
            line: c.line,
            rules,
            reason,
            applies_to,
            used: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn trailing_waiver_applies_to_own_line() {
        let s = scan("let x = y.unwrap(); // ca-lint: allow(panic) -- bounded above\n");
        let w = collect(&s);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rules, vec!["panic"]);
        assert_eq!(w[0].reason, "bounded above");
        assert_eq!(w[0].applies_to, 1);
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let s = scan("// ca-lint: allow(wall-clock) -- bench metadata only\n// more prose\n\nlet t = Instant::now();\n");
        let w = collect(&s);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].applies_to, 4);
    }

    #[test]
    fn missing_reason_is_empty() {
        let s = scan("x.unwrap(); // ca-lint: allow(panic)\n");
        let w = collect(&s);
        assert_eq!(w.len(), 1);
        assert!(w[0].reason.is_empty());
    }

    #[test]
    fn multiple_rules() {
        let s = scan("thing(); // ca-lint: allow(panic, hash-iter) -- both fine here\n");
        let w = collect(&s);
        assert_eq!(w[0].rules, vec!["panic", "hash-iter"]);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let s = scan("// plain comment\nx(); // TODO: ca-lint someday\n");
        assert!(collect(&s).is_empty());
    }
}

//! Repo-codified rule scopes. These mirror the bit-identity contract
//! in the README: which crates produce user-visible results, where
//! the clock may be read, where the environment may be read, and
//! which ca-sim modules are sanctioned RNG consumers.

/// Scope configuration for a lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs are user-visible results; hash-order
    /// iteration here can leak nondeterminism into counts or
    /// expectation values.
    pub result_crates: Vec<&'static str>,
    /// Crates allowed to read the wall clock (`ca-obs` is the
    /// instrumentation layer; `ca-bench` exists to measure time).
    pub clock_crates: Vec<&'static str>,
    /// The single module allowed to call `std::env::var*`.
    pub env_module: &'static str,
    /// ca-sim modules sanctioned to draw RNG (each derives its
    /// streams from `plan::shot_seed`, preserving serial-vs-batch
    /// bit-identity).
    pub sim_rng_modules: Vec<&'static str>,
    /// Directories `lint_workspace` never descends into.
    pub skip_dirs: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            result_crates: vec![
                "crates/sim",
                "crates/core",
                "crates/circuit",
                "crates/mitigation",
                "crates/server",
            ],
            clock_crates: vec!["crates/obs", "crates/bench"],
            env_module: "crates/obs/src/env.rs",
            sim_rng_modules: vec![
                "crates/sim/src/noise.rs",
                "crates/sim/src/plan.rs",
                "crates/sim/src/pauli_frame.rs",
                "crates/sim/src/frame_batch.rs",
                "crates/sim/src/stabilizer.rs",
                "crates/sim/src/statevector.rs",
                "crates/sim/src/executor.rs",
            ],
            skip_dirs: vec!["target", ".git", "crates/shims", "crates/lint/fixtures"],
        }
    }
}

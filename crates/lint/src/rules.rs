//! The rule set. Every rule scans the blanked code view of one file,
//! is scoped by path (crate, src-vs-test tree), skips test/debug
//! regions, and can be waived per line with
//! `// ca-lint: allow(<rule>) -- <reason>`.
//!
//! | id                | invariant                                              |
//! |-------------------|--------------------------------------------------------|
//! | `panic`           | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/  |
//! |                   | `unimplemented!` outside tests & debug assertions      |
//! | `hash-iter`       | no `HashMap`/`HashSet` iteration in result-producing   |
//! |                   | crates (ca-sim, ca-core, ca-circuit, ca-mitigation)    |
//! | `wall-clock`      | no `Instant::now`/`SystemTime::now` outside `ca-obs`   |
//! |                   | (and `ca-bench`, whose purpose is timing)              |
//! | `env-read`        | no `std::env::var*` outside `ca_obs::env`              |
//! | `thread-id`       | no `thread::current()`/`ThreadId`-derived logic        |
//! | `obs-no-rng`      | no `rand` anywhere in `ca-obs` (instrumentation must   |
//! |                   | never perturb or read randomness)                      |
//! | `rng-containment` | `rand` in `ca-sim` only in sanctioned modules that     |
//! |                   | follow the `plan::shot_seed` discipline                |
//! | `forbid-unsafe`   | every non-shim crate root carries                      |
//! |                   | `#![forbid(unsafe_code)]`                              |

use crate::config::Config;
use crate::lexer::Scan;
use crate::regions::Regions;
use crate::report::Diagnostic;

/// Path-derived scope facts for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    pub config: &'a Config,
}

impl FileCtx<'_> {
    /// `crates/<name>/…` → `crates/<name>`; root `src/…` → "".
    fn crate_dir(&self) -> &str {
        let p = self.rel_path;
        if let Some(rest) = p.strip_prefix("crates/") {
            let end = rest.find('/').map(|i| 7 + i).unwrap_or(p.len());
            &p[..end]
        } else {
            ""
        }
    }

    fn is_shim(&self) -> bool {
        self.rel_path.starts_with("crates/shims/")
    }

    /// Library source (as opposed to tests/, benches/, examples/,
    /// fixtures/ — which are test-grade code for every rule).
    fn is_library_src(&self) -> bool {
        let p = self.rel_path;
        !p.contains("/tests/")
            && !p.starts_with("tests/")
            && !p.contains("/benches/")
            && !p.starts_with("benches/")
            && !p.contains("/examples/")
            && !p.starts_with("examples/")
            && !p.contains("/fixtures/")
            && (p.contains("/src/") || p.starts_with("src/"))
    }

    fn is_crate_root(&self) -> bool {
        self.rel_path == "src/lib.rs"
            || self.rel_path == "src/main.rs"
            || (self.rel_path.starts_with("crates/")
                && (self.rel_path.ends_with("/src/lib.rs")
                    || self.rel_path.ends_with("/src/main.rs")))
    }
}

/// Finds `pat` as a token: identifier characters at the pattern's
/// edges must not extend (so `env::var` does not match `env::var_os`
/// or `var_parsed`, and `rand` does not match `random_walk`). Returns
/// byte offsets.
fn find_token(code: &str, pat: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let cb = code.as_bytes();
    let pb = pat.as_bytes();
    let first_is_ident = pb.first().is_some_and(|&b| is_ident(b));
    let last_is_ident = pb.last().is_some_and(|&b| is_ident(b));
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok = !first_is_ident || at == 0 || !is_ident(cb[at - 1]);
        let after_ok = !last_is_ident || at + pb.len() >= cb.len() || !is_ident(cb[at + pb.len()]);
        if before_ok && after_ok {
            hits.push(at);
        }
        start = at + pb.len();
    }
    hits
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Runs every rule over one blanked file, yielding raw diagnostics
/// (waivers are applied by the caller).
pub fn run_all(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if ctx.is_shim() || ctx.rel_path.contains("/fixtures/") {
        return diags;
    }
    panic_rule(ctx, scan, regions, &mut diags);
    hash_iter_rule(ctx, scan, regions, &mut diags);
    wall_clock_rule(ctx, scan, regions, &mut diags);
    env_read_rule(ctx, scan, regions, &mut diags);
    thread_id_rule(ctx, scan, regions, &mut diags);
    obs_no_rng_rule(ctx, scan, &mut diags);
    rng_containment_rule(ctx, scan, regions, &mut diags);
    forbid_unsafe_rule(ctx, scan, &mut diags);
    diags
}

fn push(
    diags: &mut Vec<Diagnostic>,
    ctx: &FileCtx<'_>,
    line: usize,
    rule: &'static str,
    msg: String,
) {
    diags.push(Diagnostic {
        path: ctx.rel_path.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// (P) panic-freedom.
fn panic_rule(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_library_src() {
        return;
    }
    const PATTERNS: &[&str] = &[
        ".unwrap(",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    for pat in PATTERNS {
        for off in find_token(&scan.code, pat) {
            let line = scan.line_of(off);
            if regions.is_test(line) || regions.is_debug(line) {
                continue;
            }
            push(
                diags,
                ctx,
                line,
                "panic",
                format!(
                    "`{}` in non-test library code — propagate a structured error, move \
                     it under a debug assertion, or waive with \
                     `// ca-lint: allow(panic) -- <why this cannot fire>`",
                    pat.trim_start_matches('.').trim_end_matches('('),
                ),
            );
        }
    }
}

/// (D) HashMap/HashSet iteration in result-producing crates.
fn hash_iter_rule(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_library_src() || !ctx.config.result_crates.contains(&ctx.crate_dir()) {
        return;
    }
    let names = collect_hash_names(&scan.code);
    if names.is_empty() {
        return;
    }
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
    ];
    let cb = scan.code.as_bytes();
    for name in &names {
        for off in find_token(&scan.code, name) {
            let line = scan.line_of(off);
            if regions.is_test(line) {
                continue;
            }
            let after = &scan.code[off + name.len()..];
            let method = ITER_METHODS.iter().find(|m| after.starts_with(**m));
            let looped = token_before_is_in(cb, off);
            if let Some(m) = method {
                push(
                    diags,
                    ctx,
                    line,
                    "hash-iter",
                    format!(
                        "`{name}{m}` iterates a hash collection in a result-producing \
                         crate; hash order is nondeterministic across processes — use \
                         `BTreeMap`/`BTreeSet`, sort before iterating, or waive with \
                         `// ca-lint: allow(hash-iter) -- <why order cannot reach results>`"
                    ),
                );
            } else if looped {
                push(
                    diags,
                    ctx,
                    line,
                    "hash-iter",
                    format!(
                        "`for … in {name}` iterates a hash collection in a \
                         result-producing crate; hash order is nondeterministic — use \
                         `BTreeMap`/`BTreeSet`, sort first, or waive with \
                         `// ca-lint: allow(hash-iter) -- <reason>`"
                    ),
                );
            }
        }
    }
}

/// Identifiers in this file declared (or assigned) as HashMap/HashSet.
fn collect_hash_names(code: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let cb = code.as_bytes();
    for ty in ["HashMap", "HashSet"] {
        for off in find_token(code, ty) {
            // Walk left over any `path::prefix::`, possibly through one
            // generic wrapper (`OnceLock<HashMap<…>>`), to the binding.
            let mut p = off;
            for _ in 0..4 {
                p = skip_path_prefix_left(cb, p);
                let q = skip_ws_left(cb, p);
                match cb.get(q.wrapping_sub(1)) {
                    Some(&b':') if q >= 2 && cb[q - 2] != b':' => {
                        // `name: [std::collections::]HashMap<…>`
                        if let Some(n) = ident_left(cb, q - 1) {
                            names.push(n);
                        }
                        break;
                    }
                    Some(&b'=') => {
                        // `let [mut] name = HashMap::new()` / reassignment
                        if let Some(n) = ident_left(cb, q - 1) {
                            names.push(n);
                        }
                        break;
                    }
                    Some(&b'<') => {
                        // Generic argument: hop out one level and retry.
                        p = q - 1;
                        continue;
                    }
                    _ => break,
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Skips a trailing `segment::segment::` chain left of `pos`.
fn skip_path_prefix_left(cb: &[u8], mut pos: usize) -> usize {
    loop {
        let q = skip_ws_left(cb, pos);
        if q >= 2 && cb[q - 1] == b':' && cb[q - 2] == b':' {
            let mut r = q - 2;
            while r > 0 && is_ident(cb[r - 1]) {
                r -= 1;
            }
            if r == q - 2 {
                return q; // `::HashMap` with no segment — stop
            }
            pos = r;
        } else {
            return q;
        }
    }
}

fn skip_ws_left(cb: &[u8], mut pos: usize) -> usize {
    while pos > 0 && cb[pos - 1].is_ascii_whitespace() {
        pos -= 1;
    }
    pos
}

/// Reads the identifier ending just left of `pos` (skipping
/// whitespace); `None` if there isn't one.
fn ident_left(cb: &[u8], pos: usize) -> Option<String> {
    let end = skip_ws_left(cb, pos);
    let mut start = end;
    while start > 0 && is_ident(cb[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let name = String::from_utf8_lossy(&cb[start..end]).into_owned();
    if name == "mut" || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

/// True when the token before `offset` (skipping `&`, `mut`, ws) is
/// the keyword `in` — i.e. `for … in [&[mut ]]name`.
fn token_before_is_in(cb: &[u8], offset: usize) -> bool {
    let mut p = skip_ws_left(cb, offset);
    // skip `mut`
    if p >= 3 && &cb[p - 3..p] == b"mut" && (p == 3 || !is_ident(cb[p - 4])) {
        p = skip_ws_left(cb, p - 3);
    }
    while p > 0 && cb[p - 1] == b'&' {
        p = skip_ws_left(cb, p - 1);
    }
    p >= 2
        && &cb[p - 2..p] == b"in"
        && (p == 2 || !is_ident(cb[p - 3]))
        && (p == cb.len() || !is_ident(cb[p]))
}

/// (D) wall-clock reads outside obs/bench.
fn wall_clock_rule(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_library_src() || ctx.config.clock_crates.contains(&ctx.crate_dir()) {
        return;
    }
    for pat in ["Instant::now", "SystemTime::now"] {
        for off in find_token(&scan.code, pat) {
            let line = scan.line_of(off);
            if regions.is_test(line) {
                continue;
            }
            push(
                diags,
                ctx,
                line,
                "wall-clock",
                format!(
                    "`{pat}` outside `ca-obs`/`ca-bench`; wall-clock reads in result \
                     paths undermine run-to-run reproducibility — route timing through \
                     `ca-obs` spans, or waive with \
                     `// ca-lint: allow(wall-clock) -- <why this never feeds results>`"
                ),
            );
        }
    }
}

/// (D) environment reads outside `ca_obs::env`.
fn env_read_rule(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_library_src() || ctx.rel_path == ctx.config.env_module {
        return;
    }
    for pat in ["env::var", "env::var_os", "env::vars", "env::vars_os"] {
        for off in find_token(&scan.code, pat) {
            let line = scan.line_of(off);
            if regions.is_test(line) {
                continue;
            }
            push(
                diags,
                ctx,
                line,
                "env-read",
                format!(
                    "`{pat}` outside `ca_obs::env`; ad-hoc environment reads bypass the \
                     warn-once/invalid-counting discipline — use `ca_obs::var_parsed[_with]`, \
                     or waive with `// ca-lint: allow(env-read) -- <reason>`"
                ),
            );
        }
    }
}

/// (D) thread-identity reads.
fn thread_id_rule(ctx: &FileCtx<'_>, scan: &Scan, regions: &Regions, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_library_src() {
        return;
    }
    for pat in ["thread::current", "ThreadId"] {
        for off in find_token(&scan.code, pat) {
            let line = scan.line_of(off);
            if regions.is_test(line) {
                continue;
            }
            push(
                diags,
                ctx,
                line,
                "thread-id",
                format!(
                    "`{pat}` — thread-identity-derived logic breaks the \
                     any-worker-count bit-identity contract; key work off shot/job \
                     indices instead, or waive with \
                     `// ca-lint: allow(thread-id) -- <reason>`"
                ),
            );
        }
    }
}

/// (R) no RNG anywhere in the observability crate — including its
/// tests: instrumentation must be provably incapable of perturbing a
/// seeded run.
fn obs_no_rng_rule(ctx: &FileCtx<'_>, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    if ctx.crate_dir() != "crates/obs" {
        return;
    }
    for off in find_token(&scan.code, "rand") {
        let line = scan.line_of(off);
        push(
            diags,
            ctx,
            line,
            "obs-no-rng",
            "`rand` referenced inside `ca-obs` — instrumentation must never import or \
             touch RNG (the no-RNG invariant behind `CA_OBS`-level bit-identity)"
                .to_string(),
        );
    }
}

/// (R) RNG draws in `ca-sim` only in sanctioned modules.
fn rng_containment_rule(
    ctx: &FileCtx<'_>,
    scan: &Scan,
    regions: &Regions,
    diags: &mut Vec<Diagnostic>,
) {
    if !ctx.is_library_src() || ctx.crate_dir() != "crates/sim" {
        return;
    }
    if ctx
        .config
        .sim_rng_modules
        .iter()
        .any(|m| ctx.rel_path.ends_with(m))
    {
        return;
    }
    for off in find_token(&scan.code, "rand") {
        let line = scan.line_of(off);
        if regions.is_test(line) {
            continue;
        }
        push(
            diags,
            ctx,
            line,
            "rng-containment",
            "`rand` referenced outside ca-sim's sanctioned RNG modules — every draw \
             must flow from `plan::shot_seed` through an engine's shot loop; route \
             randomness through an existing sanctioned module or waive with \
             `// ca-lint: allow(rng-containment) -- <reason>`"
                .to_string(),
        );
    }
}

/// (Satellite) every non-shim crate root forbids `unsafe`.
fn forbid_unsafe_rule(ctx: &FileCtx<'_>, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_crate_root() {
        return;
    }
    let normalized: String = scan.code.split_whitespace().collect();
    if !normalized.contains("#![forbid(unsafe_code)]") {
        push(
            diags,
            ctx,
            1,
            "forbid-unsafe",
            "crate root is missing `#![forbid(unsafe_code)]` — the workspace is \
             unsafe-free by policy; add the attribute at the top of the file"
                .to_string(),
        );
    }
}

//! A minimal Rust surface lexer: blanks comments and literal contents
//! out of a source file while preserving its byte length and line
//! structure, and extracts line comments for waiver parsing.
//!
//! The rules engine scans the *blanked* text, so `panic!` inside a doc
//! comment or `"HashMap"` inside a string literal can never trip a
//! rule. This is not a full lexer — it only needs to agree with rustc
//! on where comments and literals start and end: line comments, nested
//! block comments, string / byte-string / raw-string literals (any
//! `#` count), char literals, and the char-vs-lifetime ambiguity.

/// One line comment (`//`, `///`, `//!`) found in the source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text after the leading slashes (untrimmed).
    pub text: String,
    /// True when the comment is the first non-whitespace on its line
    /// (a standalone comment); false when it trails code.
    pub own_line: bool,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct Scan {
    /// The source with comments and literal contents replaced by
    /// spaces. Newlines are preserved, so byte offsets and line
    /// numbers match the original exactly.
    pub code: String,
    /// All line comments, in source order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
}

impl Scan {
    /// 1-based line number of a byte offset in `code`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // offset sits after line_starts[i-1] -> line i
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// True when the given 1-based line holds no code (only blanked
    /// comments/whitespace).
    pub fn line_is_blank(&self, line: usize) -> bool {
        if line == 0 || line > self.line_starts.len() {
            return true;
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.code.len());
        self.code[start..end].trim().is_empty()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source` into a [`Scan`].
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut i = 0usize;

    // Pushes a blank in place of a consumed byte, keeping newlines.
    fn blank_push(out: &mut Vec<u8>, b: u8, line: &mut usize, line_starts: &mut Vec<usize>) {
        if b == b'\n' {
            out.push(b'\n');
            *line += 1;
            line_starts.push(out.len());
        } else {
            out.push(b' ');
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                line_starts.push(out.len());
                line_had_code = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: capture text to end of line.
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    own_line: !line_had_code,
                });
                for k in i..j {
                    blank_push(
                        &mut out,
                        if bytes[k] == b'\n' { b'\n' } else { b' ' },
                        &mut line,
                        &mut line_starts,
                    );
                }
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                for k in i..j {
                    blank_push(&mut out, bytes[k], &mut line, &mut line_starts);
                }
                i = j;
            }
            b'"' => {
                i = consume_string(bytes, i, &mut out, &mut line, &mut line_starts);
                line_had_code = true;
            }
            b'r' | b'b' if !prev_is_ident(&out) => {
                // Possible raw string r"..", r#".."#, byte b"..",
                // raw byte br#".."#, or just an identifier.
                if let Some(end) = raw_or_byte_string_end(bytes, i) {
                    for k in i..end {
                        blank_push(&mut out, bytes[k], &mut line, &mut line_starts);
                    }
                    i = end;
                    line_had_code = true;
                } else {
                    out.push(b);
                    line_had_code = true;
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime.
                if let Some(end) = char_literal_end(bytes, i) {
                    for k in i..end {
                        blank_push(&mut out, bytes[k], &mut line, &mut line_starts);
                    }
                    i = end;
                } else {
                    out.push(b'\''); // lifetime tick
                    i += 1;
                }
                line_had_code = true;
            }
            _ => {
                out.push(b);
                if !b.is_ascii_whitespace() {
                    line_had_code = true;
                }
                i += 1;
            }
        }
    }

    Scan {
        code: String::from_utf8_lossy(&out).into_owned(),
        comments,
        line_starts,
    }
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last().is_some_and(|&b| is_ident(b))
}

/// Consumes a plain `"…"` string starting at `i` (the opening quote),
/// blanking it into `out`; returns the index just past the close.
fn consume_string(
    bytes: &[u8],
    i: usize,
    out: &mut Vec<u8>,
    line: &mut usize,
    line_starts: &mut Vec<usize>,
) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    let end = j.min(bytes.len());
    for k in i..end {
        let b = if bytes[k] == b'\n' { b'\n' } else { b' ' };
        if b == b'\n' {
            out.push(b'\n');
            *line += 1;
            line_starts.push(out.len());
        } else {
            out.push(b' ');
        }
    }
    end
}

/// If a raw / byte / raw-byte string starts at `i` (`r`, `b`, or `br`
/// prefix), returns the index just past its closing delimiter.
fn raw_or_byte_string_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        raw = true;
        j += 1;
    }
    if !raw {
        // b"..." — plain byte string; escapes apply.
        if bytes.get(j) == Some(&b'"') {
            let mut k = j + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'"' => return Some(k + 1),
                    _ => k += 1,
                }
            }
            return Some(bytes.len());
        }
        return None;
    }
    // r / br prefix: count hashes, then require a quote (otherwise it
    // is a raw identifier like r#match, or a plain ident).
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    let mut k = j + 1;
    while k < bytes.len() {
        if bytes[k] == b'"' {
            let mut h = 0usize;
            while h < hashes && bytes.get(k + 1 + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                return Some(k + 1 + hashes);
            }
        }
        k += 1;
    }
    Some(bytes.len())
}

/// If a char literal starts at `i` (the tick), returns the index just
/// past its closing tick; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(&b'\\') => {
            // Escaped char: scan to the closing tick.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        Some(&c) if c != b'\'' => {
            // 'x' is a char literal; 'x followed by anything else is a
            // lifetime. Multi-byte UTF-8 chars: find the next tick
            // within 6 bytes.
            let mut j = i + 1;
            let limit = (i + 7).min(bytes.len());
            while j < limit {
                if bytes[j] == b'\'' {
                    // ''' is not a lifetime; require at least one byte.
                    return if j > i + 1 { Some(j + 1) } else { None };
                }
                if bytes[j] == b'\n'
                    || (bytes[j] == b':'
                        || bytes[j] == b'>'
                        || bytes[j] == b','
                        || bytes[j] == b' '
                        || bytes[j] == b'('
                        || bytes[j] == b')')
                {
                    return None; // lifetime position
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_blanked_and_captured() {
        let s = scan("let x = 1; // trailing\n// own line\nlet y = 2;\n");
        assert!(!s.code.contains("trailing"));
        assert!(s.code.contains("let x = 1;"));
        assert_eq!(s.comments.len(), 2);
        assert!(!s.comments[0].own_line);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[1].own_line);
        assert_eq!(s.comments[1].line, 2);
    }

    #[test]
    fn strings_blanked_lines_preserved() {
        let src = "let s = \"panic! // not a comment\";\nlet t = 1;\n";
        let s = scan(src);
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let t = 1;"));
        assert_eq!(s.code.len(), src.len());
        assert!(s.comments.is_empty());
    }

    #[test]
    fn raw_strings_any_hash_count() {
        let src = r####"let s = r#"unwrap() " inside"#; let u = 1;"####;
        let s = scan(src);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let u = 1;"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scan("let a = b\"x.unwrap()\"; let b2 = br#\"panic!\"#; ok();");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("ok();"));
    }

    #[test]
    fn char_vs_lifetime() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }");
        assert!(s.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.code.contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner unwrap() */ still */ let z = 3;");
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let z = 3;"));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let src = "let s = \"line1\nline2\";\nlet x = 1;\n";
        let s = scan(src);
        assert_eq!(s.line_count(), 4);
        let off = s.code.find("let x").unwrap();
        assert_eq!(s.line_of(off), 3);
    }

    #[test]
    fn line_blankness() {
        let s = scan("// only a comment\nlet x = 1;\n\n");
        assert!(s.line_is_blank(1));
        assert!(!s.line_is_blank(2));
        assert!(s.line_is_blank(3));
    }

    #[test]
    fn raw_identifier_not_a_string() {
        let s = scan("let r#match = 1; let ok = r#match;");
        assert!(s.code.contains("r#match"));
    }
}

//! Diagnostics and the aggregate report: rustc-style rendering, a
//! `--fix-list` mode, and the waiver ledger CI budgets against.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`panic`, `hash-iter`, …).
    pub rule: &'static str,
    /// Human-readable message including the suggested fix.
    pub message: String,
}

/// One accepted waiver, for the ledger.
#[derive(Debug, Clone)]
pub struct WaiverEntry {
    pub path: String,
    /// Line of the waiver comment.
    pub line: usize,
    pub rules: Vec<String>,
    pub reason: String,
}

/// Aggregate result of linting one or many files.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived waiver application, sorted by
    /// (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Waivers that suppressed at least one violation.
    pub waivers: Vec<WaiverEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.waivers
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    }

    /// rustc-style error listing plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "error[ca-lint::{}]: {}", d.rule, d.message);
            let _ = writeln!(out, "  --> {}:{}", d.path, d.line);
        }
        let _ = writeln!(
            out,
            "ca-lint: {} violation(s), {} waiver(s) in use, {} file(s) scanned",
            self.diagnostics.len(),
            self.waivers.len(),
            self.files_scanned
        );
        out
    }

    /// Compact per-file action list (`--fix-list`): one line per
    /// violation, grouped by file, for mechanical sweeps.
    pub fn render_fix_list(&self) -> String {
        let mut out = String::new();
        let mut last_path = "";
        for d in &self.diagnostics {
            if d.path != last_path {
                let _ = writeln!(out, "{}:", d.path);
                last_path = &d.path;
            }
            let _ = writeln!(out, "  {}: [{}]", d.line, d.rule);
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "nothing to fix");
        }
        out
    }

    /// The waiver ledger: every accepted waiver with its reason.
    pub fn render_waivers(&self) -> String {
        let mut out = String::new();
        for w in &self.waivers {
            let _ = writeln!(
                out,
                "{}:{}: allow({}) -- {}",
                w.path,
                w.line,
                w.rules.join(", "),
                w.reason
            );
        }
        let _ = writeln!(out, "ca-lint: {} waiver(s) in use", self.waivers.len());
        out
    }
}

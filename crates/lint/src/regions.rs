//! Region tracking over blanked source: which lines are test code
//! (`#[cfg(test)]` / `#[test]` items, `mod tests` blocks) and which
//! lines sit inside debug assertions (`debug_assert*!` invocations or
//! `#[cfg(debug_assertions)]` items). Panic-freedom and determinism
//! rules skip test lines; panic sites inside debug assertions are the
//! sanctioned "checked in debug, free in release" idiom.

use crate::lexer::Scan;

/// Per-line region flags (index 0 = line 1).
#[derive(Debug)]
pub struct Regions {
    /// Line is inside test-only code.
    pub test: Vec<bool>,
    /// Line is inside a debug assertion.
    pub debug: Vec<bool>,
}

impl Regions {
    pub fn is_test(&self, line: usize) -> bool {
        line >= 1 && self.test.get(line - 1).copied().unwrap_or(false)
    }

    pub fn is_debug(&self, line: usize) -> bool {
        line >= 1 && self.debug.get(line - 1).copied().unwrap_or(false)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum AttrKind {
    Test,
    Debug,
    Other,
}

/// Computes test/debug line flags for a blanked file.
pub fn compute(scan: &Scan) -> Regions {
    let code = scan.code.as_bytes();
    let nlines = scan.line_count();
    let mut test = vec![false; nlines];
    let mut debug = vec![false; nlines];

    let mut i = 0usize;
    // When set, an item-marking attribute is waiting for its item: the
    // next `{ … }` block or `;` at bracket depth 0 closes the region.
    let mut pending: Option<(AttrKind, usize)> = None; // (kind, attr start)
    let mut bracket_depth = 0usize; // [ ] depth outside attributes

    while i < code.len() {
        match code[i] {
            b'#' => {
                // Attribute? `#[...]` or `#![...]` — consume to the
                // matching `]`.
                let mut j = i + 1;
                let inner = code.get(j) == Some(&b'!');
                if inner {
                    j += 1;
                }
                if code.get(j) == Some(&b'[') {
                    let end = matching(code, j, b'[', b']').unwrap_or(code.len());
                    let body = String::from_utf8_lossy(&code[j + 1..end.min(code.len())])
                        .split_whitespace()
                        .collect::<String>();
                    let kind = classify_attr(&body);
                    if !inner && kind != AttrKind::Other {
                        // Keep an earlier pending Test over a later
                        // Debug, but never downgrade.
                        pending = match pending {
                            Some((AttrKind::Test, s)) => Some((AttrKind::Test, s)),
                            Some((_, s)) => Some((kind, s)),
                            None => Some((kind, i)),
                        };
                    }
                    i = (end + 1).min(code.len());
                    continue;
                }
                i += 1;
            }
            b'[' => {
                bracket_depth += 1;
                i += 1;
            }
            b']' => {
                bracket_depth = bracket_depth.saturating_sub(1);
                i += 1;
            }
            b'{' => {
                if let Some((kind, start)) = pending.take() {
                    let end = matching(code, i, b'{', b'}').unwrap_or(code.len());
                    mark(scan, &mut test, &mut debug, kind, start, end);
                }
                // Keep scanning inside the block for nested regions.
                i += 1;
            }
            b';' if bracket_depth == 0 => {
                if let Some((kind, start)) = pending.take() {
                    mark(scan, &mut test, &mut debug, kind, start, i);
                }
                i += 1;
            }
            b'm' if ident_at(code, i, b"mod") => {
                // `mod tests {` / `mod test {` without an attribute.
                let mut j = i + 3;
                while j < code.len() && code[j].is_ascii_whitespace() {
                    j += 1;
                }
                if ident_at(code, j, b"tests") || ident_at(code, j, b"test") {
                    let name_len = if ident_at(code, j, b"tests") { 5 } else { 4 };
                    let mut k = j + name_len;
                    while k < code.len() && code[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    if code.get(k) == Some(&b'{') {
                        let end = matching(code, k, b'{', b'}').unwrap_or(code.len());
                        mark(scan, &mut test, &mut debug, AttrKind::Test, i, end);
                    }
                }
                i += 3;
            }
            b'd' if ident_at(code, i, b"debug_assert")
                || ident_at(code, i, b"debug_assert_eq")
                || ident_at(code, i, b"debug_assert_ne") =>
            {
                // debug_assert*!( … ) — mark the argument span.
                let mut j = i;
                while j < code.len() && (code[j].is_ascii_alphanumeric() || code[j] == b'_') {
                    j += 1;
                }
                if code.get(j) == Some(&b'!') {
                    let mut k = j + 1;
                    while k < code.len() && code[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    let (open, close) = match code.get(k) {
                        Some(&b'(') => (b'(', b')'),
                        Some(&b'[') => (b'[', b']'),
                        Some(&b'{') => (b'{', b'}'),
                        _ => (0, 0),
                    };
                    if open != 0 {
                        let end = matching(code, k, open, close).unwrap_or(code.len());
                        mark(scan, &mut test, &mut debug, AttrKind::Debug, i, end);
                    }
                }
                i = j;
            }
            _ => i += 1,
        }
    }

    Regions { test, debug }
}

fn classify_attr(body: &str) -> AttrKind {
    // body has all whitespace removed.
    if body == "test" || body.starts_with("test(") {
        return AttrKind::Test;
    }
    if body.starts_with("cfg(") {
        if body.contains("not(test)") || body.contains("not(debug_assertions)") {
            return AttrKind::Other;
        }
        if contains_word(body, "test") {
            return AttrKind::Test;
        }
        if contains_word(body, "debug_assertions") {
            return AttrKind::Debug;
        }
    }
    AttrKind::Other
}

/// Word-boundary substring check over attribute text.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_bytes();
    let n = needle.len();
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(h[at - 1]);
        let after_ok = at + n >= h.len() || !is_ident_byte(h[at + n]);
        if before_ok && after_ok {
            return true;
        }
        start = at + n;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `code[i..]` starts with the identifier `word` at an
/// identifier boundary on both sides.
fn ident_at(code: &[u8], i: usize, word: &[u8]) -> bool {
    if i + word.len() > code.len() || &code[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(code[i - 1]);
    let after_ok = i + word.len() == code.len() || !is_ident_byte(code[i + word.len()]);
    before_ok && after_ok
}

/// Byte offset of the delimiter matching `code[open_pos]`.
fn matching(code: &[u8], open_pos: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_pos;
    while i < code.len() {
        if code[i] == open {
            depth += 1;
        } else if code[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

fn mark(
    scan: &Scan,
    test: &mut [bool],
    debug: &mut [bool],
    kind: AttrKind,
    start: usize,
    end: usize,
) {
    let first = scan.line_of(start);
    let last = scan.line_of(end.min(scan.code.len().saturating_sub(1)));
    let flags = match kind {
        AttrKind::Test => test,
        AttrKind::Debug => debug,
        AttrKind::Other => return,
    };
    for line in first..=last {
        if line >= 1 && line <= flags.len() {
            flags[line - 1] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn regions_of(src: &str) -> Regions {
        compute(&scan(src))
    }

    #[test]
    fn cfg_test_mod_is_test() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n";
        let r = regions_of(src);
        assert!(!r.is_test(1));
        assert!(r.is_test(2));
        assert!(r.is_test(3));
        assert!(r.is_test(4));
        assert!(r.is_test(5));
    }

    #[test]
    fn test_attr_marks_one_fn() {
        let src = "#[test]\nfn t() {\n    q.unwrap();\n}\nfn prod() {\n    p.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_test(1) && r.is_test(2) && r.is_test(3) && r.is_test(4));
        assert!(!r.is_test(5) && !r.is_test(6));
    }

    #[test]
    fn stacked_attributes_keep_pending() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    q.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_test(4));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))]\nfn prod() {\n    p.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(!r.is_test(3));
    }

    #[test]
    fn cfg_any_test_is_test() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() {\n    h.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_test(3));
    }

    #[test]
    fn attribute_on_use_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { p(); }\n";
        let r = regions_of(src);
        assert!(r.is_test(2));
        assert!(!r.is_test(3));
    }

    #[test]
    fn debug_assert_span_is_debug() {
        let src = "fn f() {\n    debug_assert!(\n        check().unwrap()\n    );\n    real().unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_debug(2) && r.is_debug(3) && r.is_debug(4));
        assert!(!r.is_debug(5));
        assert!(!r.is_test(5));
    }

    #[test]
    fn cfg_debug_assertions_block() {
        let src = "#[cfg(debug_assertions)]\nfn check() {\n    inner.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_debug(3));
    }

    #[test]
    fn semicolon_inside_array_type_does_not_close_pending() {
        let src = "#[test]\nfn t(x: [u8; 4]) {\n    q.unwrap();\n}\n";
        let r = regions_of(src);
        assert!(r.is_test(3));
    }

    #[test]
    fn mod_tests_without_attr() {
        let src = "fn prod() {}\nmod tests {\n    fn t() { q.unwrap(); }\n}\n";
        let r = regions_of(src);
        assert!(r.is_test(3));
        assert!(!r.is_test(1));
    }
}

#![forbid(unsafe_code)]
//! `ca-lint` CLI.
//!
//! ```text
//! cargo run -p ca-lint -- --check [--max-waivers N] [--root PATH]
//! cargo run -p ca-lint -- --fix-list
//! cargo run -p ca-lint -- --waivers
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or waiver budget exceeded),
//! 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    fix_list: bool,
    waivers: bool,
    max_waivers: Option<usize>,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fix_list: false,
        waivers: false,
        max_waivers: None,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {}
            "--fix-list" => args.fix_list = true,
            "--waivers" => args.waivers = true,
            "--max-waivers" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--max-waivers needs a number".to_string())?;
                args.max_waivers = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-waivers value {v:?}"))?,
                );
            }
            "--root" => {
                let v = it.next().ok_or_else(|| "--root needs a path".to_string())?;
                args.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(
                "usage: ca-lint [--check] [--fix-list] [--waivers] [--max-waivers N] [--root PATH]"
                    .to_string(),
            ),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first directory whose
/// `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("ca-lint: no workspace root found (run from the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let config = ca_lint::Config::default();
    let report = match ca_lint::lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ca-lint: IO error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if args.fix_list {
        print!("{}", report.render_fix_list());
    } else if args.waivers {
        print!("{}", report.render_waivers());
    } else {
        print!("{}", report.render());
    }

    if !report.is_clean() {
        return ExitCode::from(1);
    }
    if let Some(max) = args.max_waivers {
        if report.waivers.len() > max {
            eprintln!(
                "ca-lint: waiver budget exceeded: {} in use > {} allowed — new waivers \
                 need review; raise the CI baseline only with one",
                report.waivers.len(),
                max
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

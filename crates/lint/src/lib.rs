#![forbid(unsafe_code)]
//! `ca-lint` — a hand-rolled, zero-dependency static-analysis pass
//! that enforces the workspace's determinism, panic-freedom, and
//! observability no-RNG invariants at the source level.
//!
//! The repo's headline guarantee is bit-identical results across
//! serial/batch engines, worker counts, cache states, and `CA_OBS`
//! levels. The equivalence proptests enforce that *dynamically* — but
//! only for the seeds they happen to draw. `ca-lint` is the *static*
//! gate: it refuses the source patterns that create nondeterminism
//! (hash-order iteration in result paths, ad-hoc clock/env/thread-id
//! reads, stray RNG) and the panics that turn malformed inputs into
//! aborts, before they can reach a run at all.
//!
//! The container is offline — no `syn`, no `proc-macro2` — so the
//! analyzer carries its own comment/string-stripping lexer
//! ([`lexer`]), a test/debug region tracker ([`regions`]), and a
//! token-level rules engine ([`rules`]), in the same vendor-shim
//! spirit as `crates/shims`. See the rule table in [`rules`] and the
//! waiver syntax in [`waiver`].
//!
//! Shipped three ways so it cannot rot: the `workspace_is_lint_clean`
//! integration test rides plain `cargo test -q` (tier-1), the
//! `cargo run -p ca-lint -- --check` CLI gates CI with a waiver
//! budget (`--max-waivers`), and `--fix-list` emits a mechanical
//! sweep list.

pub mod config;
pub mod lexer;
pub mod regions;
pub mod report;
pub mod rules;
pub mod waiver;

pub use config::Config;
pub use report::{Diagnostic, Report, WaiverEntry};

use std::path::{Path, PathBuf};

/// Lints one file's source text under a workspace-relative path (the
/// path drives rule scoping; fixtures pass virtual paths).
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Report {
    let scan = lexer::scan(source);
    let regions = regions::compute(&scan);
    let ctx = rules::FileCtx { rel_path, config };
    let raw = rules::run_all(&ctx, &scan, &regions);
    let mut waivers = waiver::collect(&scan);

    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };

    for diag in raw {
        let waived = waivers.iter_mut().find(|w| {
            w.applies_to == diag.line
                && w.rules.iter().any(|r| r == diag.rule)
                && !w.reason.is_empty()
        });
        match waived {
            Some(w) => w.used = true,
            None => report.diagnostics.push(diag),
        }
    }

    for w in &waivers {
        if w.reason.is_empty() {
            report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "waiver for `{}` is missing its reason — the syntax is \
                     `// ca-lint: allow(<rule>) -- <non-empty reason>`; a reasonless \
                     waiver suppresses nothing",
                    w.rules.join(", ")
                ),
            });
        } else if w.used {
            report.waivers.push(WaiverEntry {
                path: rel_path.to_string(),
                line: w.line,
                rules: w.rules.clone(),
                reason: w.reason.clone(),
            });
        } else {
            report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: w.line,
                rule: "unused-waiver",
                message: format!(
                    "waiver for `{}` matches no violation on line {} — stale waivers \
                     hide real regressions; delete it",
                    w.rules.join(", "),
                    w.applies_to
                ),
            });
        }
    }

    report.sort();
    report
}

/// Recursively lints every `.rs` file under `root` (a workspace
/// checkout), honoring [`Config::skip_dirs`].
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let file_report = lint_source(&rel_str, &source, config);
        report.diagnostics.extend(file_report.diagnostics);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if path.is_dir() {
            if config.skip_dirs.iter().any(|s| rel == *s) || rel.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, config, out)?;
        } else if rel.ends_with(".rs") {
            if let Ok(r) = path.strip_prefix(root) {
                out.push(r.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn unwaived_unwrap_is_flagged_at_its_line() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "panic");
        assert_eq!(r.diagnostics[0].line, 3);
    }

    #[test]
    fn waiver_with_reason_suppresses_and_is_counted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // ca-lint: allow(panic) -- caller checked is_some\n}\n";
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].reason, "caller checked is_some");
    }

    #[test]
    fn waiver_without_reason_rejected_and_violation_kept() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // ca-lint: allow(panic)\n}\n";
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        let rules: Vec<_> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"panic"), "{rules:?}");
        assert!(rules.contains(&"waiver"), "{rules:?}");
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let src = "// ca-lint: allow(panic) -- nothing here panics\nfn f() -> u8 {\n    3\n}\n";
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unused-waiver");
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn non_result_crate_skips_hash_iter() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) -> usize {\n    m.iter().count()\n}\n";
        let r = lint_source("crates/device/src/f.rs", src, &cfg());
        assert!(r.diagnostics.iter().all(|d| d.rule != "hash-iter"));
        let r = lint_source("crates/sim/src/f.rs", src, &cfg());
        assert!(r.diagnostics.iter().any(|d| d.rule == "hash-iter"));
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let r = lint_source("crates/device/src/lib.rs", "pub fn f() {}\n", &cfg());
        assert!(r.diagnostics.iter().any(|d| d.rule == "forbid-unsafe"));
        let r = lint_source(
            "crates/device/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &cfg(),
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn shims_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = lint_source("crates/shims/rand/src/lib.rs", src, &cfg());
        assert!(r.is_clean());
    }

    #[test]
    fn integration_tests_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = lint_source("tests/engine_equivalence.rs", src, &cfg());
        assert!(r.is_clean());
        let r = lint_source("crates/sim/benches/foo.rs", src, &cfg());
        assert!(r.is_clean());
    }
}

//! The tier-1 gate: lints the entire workspace as part of plain
//! `cargo test -q`, so a determinism/panic/RNG regression fails the
//! default test run — no separate CI wiring required.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let config = ca_lint::Config::default();
    let report = ca_lint::lint_workspace(workspace_root(), &config).expect("scan workspace");
    assert!(
        report.is_clean(),
        "ca-lint found violations — fix them or add a reasoned \
         `// ca-lint: allow(<rule>) -- <reason>` waiver:\n{}",
        report.render()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
}

#[test]
fn waivers_all_carry_reasons() {
    let config = ca_lint::Config::default();
    let report = ca_lint::lint_workspace(workspace_root(), &config).expect("scan workspace");
    for w in &report.waivers {
        assert!(
            !w.reason.trim().is_empty(),
            "waiver at {}:{} has an empty reason",
            w.path,
            w.line
        );
    }
}

//! Fixture-driven rule tests: every rule has a positive fixture (must
//! fire), a negative fixture (must stay clean), and a waived fixture
//! (reasoned waiver suppresses the violation and lands in the
//! ledger). The fixture files live under `crates/lint/fixtures/` and
//! are linted under *virtual* workspace paths, since path scoping is
//! what routes each rule.

use ca_lint::{lint_source, Config, Report};

fn fixture(rule_dir: &str, name: &str) -> String {
    let path = format!(
        "{}/fixtures/{rule_dir}/{name}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

fn lint_fixture(rule_dir: &str, name: &str, virtual_path: &str) -> Report {
    lint_source(virtual_path, &fixture(rule_dir, name), &Config::default())
}

/// Asserts the positive fixture fires `rule` (and only rules we
/// planted), the negative fixture is clean, and the waived fixture is
/// clean with exactly one ledger entry for `rule`.
fn check_rule_triple(rule_dir: &str, rule: &str, virtual_path: &str) {
    let pos = lint_fixture(rule_dir, "positive", virtual_path);
    assert!(
        pos.diagnostics.iter().any(|d| d.rule == rule),
        "{rule_dir}/positive.rs must trigger `{rule}`:\n{}",
        pos.render()
    );
    assert!(
        pos.diagnostics.iter().all(|d| d.rule == rule),
        "{rule_dir}/positive.rs triggered rules besides `{rule}`:\n{}",
        pos.render()
    );

    let neg = lint_fixture(rule_dir, "negative", virtual_path);
    assert!(
        neg.is_clean(),
        "{rule_dir}/negative.rs must be clean:\n{}",
        neg.render()
    );

    let waived = lint_fixture(rule_dir, "waived", virtual_path);
    assert!(
        waived.is_clean(),
        "{rule_dir}/waived.rs must be clean (waiver applied):\n{}",
        waived.render()
    );
    assert_eq!(
        waived.waivers.len(),
        1,
        "{rule_dir}/waived.rs must land exactly one waiver in the ledger"
    );
    assert_eq!(waived.waivers[0].rules, vec![rule.to_string()]);
    assert!(!waived.waivers[0].reason.is_empty());
}

#[test]
fn panic_rule_fixtures() {
    check_rule_triple("panic", "panic", "crates/sim/src/fixture.rs");
    // All six panicking forms are caught.
    let pos = lint_fixture("panic", "positive", "crates/sim/src/fixture.rs");
    assert!(pos.diagnostics.len() >= 6, "{}", pos.render());
}

#[test]
fn hash_iter_rule_fixtures() {
    check_rule_triple("hash-iter", "hash-iter", "crates/sim/src/fixture.rs");
    // Outside the result-producing crates the same source is fine.
    let elsewhere = lint_fixture("hash-iter", "positive", "crates/device/src/fixture.rs");
    assert!(elsewhere.is_clean(), "{}", elsewhere.render());
}

#[test]
fn wall_clock_rule_fixtures() {
    check_rule_triple("wall-clock", "wall-clock", "crates/core/src/fixture.rs");
    // The clock crates may read clocks freely.
    let in_obs = lint_fixture("wall-clock", "positive", "crates/obs/src/fixture.rs");
    assert!(in_obs.is_clean(), "{}", in_obs.render());
}

#[test]
fn env_read_rule_fixtures() {
    check_rule_triple("env-read", "env-read", "crates/core/src/fixture.rs");
    // The sanctioned env module is the one place allowed to read.
    let in_env = lint_fixture("env-read", "positive", "crates/obs/src/env.rs");
    assert!(in_env.is_clean(), "{}", in_env.render());
}

#[test]
fn thread_id_rule_fixtures() {
    check_rule_triple("thread-id", "thread-id", "crates/sim/src/fixture.rs");
}

#[test]
fn obs_no_rng_rule_fixtures() {
    check_rule_triple("obs-no-rng", "obs-no-rng", "crates/obs/src/fixture.rs");
    // The same source outside ca-obs does not trip obs-no-rng (the
    // sim containment rule has its own fixtures).
    let elsewhere = lint_fixture("obs-no-rng", "positive", "crates/core/src/fixture.rs");
    assert!(elsewhere.diagnostics.iter().all(|d| d.rule != "obs-no-rng"));
}

#[test]
fn rng_containment_rule_fixtures() {
    let pos = lint_fixture("rng-containment", "positive", "crates/sim/src/fixture.rs");
    assert!(
        pos.diagnostics.iter().any(|d| d.rule == "rng-containment"),
        "{}",
        pos.render()
    );
    // The identical source in a sanctioned module is the blessed
    // `plan::shot_seed` pattern.
    let neg = lint_fixture("rng-containment", "negative", "crates/sim/src/noise.rs");
    assert!(neg.is_clean(), "{}", neg.render());

    let waived = lint_fixture("rng-containment", "waived", "crates/sim/src/fixture.rs");
    assert!(waived.is_clean(), "{}", waived.render());
    assert_eq!(waived.waivers.len(), 1);
}

#[test]
fn forbid_unsafe_rule_fixtures() {
    check_rule_triple("forbid-unsafe", "forbid-unsafe", "crates/sim/src/lib.rs");
    // Non-root files do not need the attribute.
    let non_root = lint_fixture("forbid-unsafe", "positive", "crates/sim/src/fixture.rs");
    assert!(non_root.is_clean(), "{}", non_root.render());
}

#[test]
fn reasonless_waiver_is_rejected_and_suppresses_nothing() {
    let r = lint_fixture("waiver", "noreason", "crates/sim/src/fixture.rs");
    let rules: Vec<_> = r.diagnostics.iter().map(|d| d.rule).collect();
    assert!(
        rules.contains(&"panic"),
        "original violation kept: {rules:?}"
    );
    assert!(
        rules.contains(&"waiver"),
        "reasonless waiver flagged: {rules:?}"
    );
    assert!(r.waivers.is_empty(), "nothing lands in the ledger");
}

#[test]
fn unused_waiver_is_flagged_as_stale() {
    let r = lint_fixture("waiver", "unused", "crates/sim/src/fixture.rs");
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render());
    assert_eq!(r.diagnostics[0].rule, "unused-waiver");
    assert!(r.waivers.is_empty());
}

//! Offline JSON shim: renders and parses the `serde` shim's
//! [`Value`](serde::Value) tree. Covers the workspace's needs —
//! `to_string`, `to_string_pretty`, `from_str` — with exact `f64`
//! round-tripping (shortest-representation formatting).

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

// --- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_number(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Arr(a) => write_seq(out, a.iter(), indent, depth, ('[', ']'), |out, e, i, d| {
            write_value(out, e, i, d)
        }),
        Value::Obj(o) => write_seq(
            out,
            o.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, e), i, d| {
                write_string(out, k);
                out.push(':');
                if i.is_some() {
                    out.push(' ');
                }
                write_value(out, e, i, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip representation.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut a = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(a));
                }
                loop {
                    self.skip_ws();
                    a.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(a));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut o = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(o));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    o.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(o));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("bad number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Num(1.5),
            Value::Num(-3.0),
            Value::Num(0.1),
            Value::Str("a \"quoted\"\nline".into()),
        ] {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            assert_eq!(parse_value(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.25)]),
            ),
            ("name".into(), Value::Str("dev".into())),
            ("empty".into(), Value::Arr(vec![])),
            ("obj".into(), Value::Obj(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_api() {
        let xs: Vec<f64> = vec![1.0, 0.5];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,0.5]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{],").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("[1] extra").is_err());
    }
}

//! Offline shim for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `RngExt` extension trait (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality, fully deterministic PRNG. It is *not* the same stream
//! as upstream `StdRng` (ChaCha12), which is fine: nothing in this
//! workspace depends on a particular stream, only on determinism for a
//! fixed seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full bit pattern ("standard"
/// distribution): the target of [`RngExt::random`].
pub trait Random: Sized {
    /// Draws a value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u16 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Random for u8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from: the argument of
/// [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the naive approach would be harmless
                // here, but this is just as cheap.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Random::random_from(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Random::random_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A value drawn from the standard distribution of `T`
    /// (`f64`/`f32`: uniform `[0,1)`; integers: uniform; `bool`: fair).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A value uniform over `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Random::random_from(self);
        u < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for &mut StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
        for _ in 0..100 {
            let v = rng.random_range(3..=4u32);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((ones as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((hits as f64 / 20_000.0 - 0.2).abs() < 0.01);
    }
}

//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim
//! (de)serialises through an owned [`Value`] tree — slower, but tiny,
//! dependency-free, and sufficient for calibration snapshots and
//! circuit JSON. `#[derive(Serialize, Deserialize)]` is provided by
//! the sibling `serde_derive` shim and supports non-generic structs
//! and enums plus `#[serde(with = "module")]` field overrides (the
//! module must expose `to_value` / `from_value`).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON-like value tree: the interchange format between
/// `Serialize`, `Deserialize`, and `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics map through `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, for lookup fallbacks.
pub static NULL: Value = Value::Null;

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The numeric value, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup; missing fields read as `Null` (so
    /// `Option<T>` fields tolerate omission).
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Obj(o) => o
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls ----------------------------------------------------

macro_rules! num_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(x) => Ok(*x as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

num_impl!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Maps serialise as `[key, value]` entry lists (JSON object keys
    /// would have to be strings).
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| DeError::expected("entry list", v))?;
        let mut out = BTreeMap::new();
        for e in arr {
            let pair = e
                .as_arr()
                .ok_or_else(|| DeError::expected("[key, value] entry", e))?;
            if pair.len() != 2 {
                return Err(DeError::expected("[key, value] entry", e));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let a = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                if a.len() != LEN {
                    return Err(DeError(format!("expected tuple of {LEN}, got {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i8::from_value(&(-1i8).to_value()).unwrap(), -1);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(usize, usize)> = vec![(0, 1), (2, 3)];
        assert_eq!(Vec::<(usize, usize)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn missing_object_field_reads_null() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a"), &Value::Num(1.0));
        assert_eq!(v.get("b"), &Value::Null);
        assert_eq!(Option::<f64>::from_value(v.get("b")).unwrap(), None);
    }
}

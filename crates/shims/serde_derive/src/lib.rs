//! Offline `#[derive(Serialize, Deserialize)]` shim.
//!
//! Generates impls of the value-tree `serde::Serialize` /
//! `serde::Deserialize` shim traits for non-generic structs with named
//! fields and enums (unit, tuple, and struct variants). Supports the
//! one serde attribute this workspace uses, `#[serde(with = "module")]`
//! on fields, by calling `module::to_value` / `module::from_value`.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline); the parser covers exactly the shapes the
//! workspace defines and fails loudly on anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// --- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);
    let kw = expect_ident(&mut toks);
    let name = expect_ident(&mut toks);
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` not supported");
    }
    match kw.as_str() {
        "struct" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!(
                    "serde_derive shim: only brace structs supported for `{name}`, got {other:?}"
                ),
            };
            Item::Struct {
                name,
                fields: parse_named_fields(body),
            }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn expect_ident(toks: &mut Toks) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

/// Skips (and inspects) leading `#[...]` attributes; returns the
/// `with = "module"` payload if a `#[serde(with = "...")]` is present.
fn take_attrs(toks: &mut Toks) -> Option<String> {
    let mut with = None;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(w) = parse_serde_with(g.stream()) {
                    with = Some(w);
                }
            }
            other => panic!("serde_derive shim: malformed attribute: {other:?}"),
        }
    }
    with
}

fn skip_attrs(toks: &mut Toks) {
    let _ = take_attrs(toks);
}

fn skip_visibility(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Matches `serde ( with = "module" )` inside an attribute's brackets.
fn parse_serde_with(stream: TokenStream) -> Option<String> {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let parts: Vec<TokenTree> = inner.into_iter().collect();
    match parts.as_slice() {
        [TokenTree::Ident(k), TokenTree::Punct(eq), TokenTree::Literal(l)]
            if k.to_string() == "with" && eq.as_char() == '=' =>
        {
            let s = l.to_string();
            Some(s.trim_matches('"').to_string())
        }
        other => panic!("serde_derive shim: unsupported serde attribute: {other:?}"),
    }
}

/// Skips a type expression up to a top-level `,` (tracking `<...>`
/// nesting; parenthesised types arrive as single groups).
fn skip_type(toks: &mut Toks) {
    let mut angle: i32 = 0;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    while toks.peek().is_some() {
        let with = take_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        let name = expect_ident(&mut toks);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut toks);
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        fields.push(Field { name, with });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks);
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                toks.next();
                VariantKind::Named(names)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut commas = 0;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

// --- codegen ------------------------------------------------------------

fn ser_field_expr(f: &Field, access: &str) -> String {
    match &f.with {
        Some(m) => format!("{m}::to_value({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn de_field_expr(f: &Field, value: &str) -> String {
    match &f.with {
        Some(m) => format!("{m}::from_value({value})?"),
        None => format!("::serde::Deserialize::from_value({value})?"),
    }
}

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        let expr = ser_field_expr(f, &format!("&self.{}", f.name));
        pushes.push_str(&format!(
            "__obj.push((::std::string::String::from(\"{}\"), {expr}));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Obj(__obj)\n\
             }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let expr = de_field_expr(f, &format!("__v.get(\"{}\")", f.name));
        inits.push_str(&format!("{}: {expr},\n", f.name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if __v.as_obj().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\"object for {name}\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "Self::{vn}({}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})]),\n",
                    binds.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let binds = fields.join(", ");
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "__o.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})));\n"
                    ));
                }
                arms.push_str(&format!(
                    "Self::{vn} {{ {binds} }} => {{\n\
                         let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Obj(__o))])\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let body = if *n == 1 {
                    format!(
                        "::std::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_value(__p)?))"
                    )
                } else {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                        .collect();
                    format!(
                        "{{\n\
                             let __a = __p.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\", __p))?;\n\
                             if __a.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-tuple for {name}::{vn}\", __p));\n\
                             }}\n\
                             ::std::result::Result::Ok(Self::{vn}({}))\n\
                         }}",
                        elems.join(", ")
                    )
                };
                data_arms.push_str(&format!("\"{vn}\" => {body},\n"));
            }
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::Deserialize::from_value(__p.get(\"{f}\"))?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok(Self::{vn} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown unit variant {{__other}} for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(__o) if __o.len() == 1 => {{\n\
                         let (__k, __p) = &__o[0];\n\
                         match __k.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant {{__other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", __v)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

//! Offline mini property-testing shim exposing the subset of the
//! `proptest` API this workspace uses: `Strategy` with `prop_map`,
//! range and tuple strategies, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, the `proptest!` test macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case panics with the case index and the
//! deterministic per-test seed, which is reproducible by rerunning the
//! test (generation is seeded from the test name).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The RNG driving generation (deterministic per test).
pub type TestRng = StdRng;

/// Builds the deterministic generator for a named test.
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Per-invocation configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property: carries the rendered assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A constant strategy: always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// A `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Uniform choice across strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a `proptest!` body; failure aborts only the current
/// case with a rendered message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// The test harness macro: runs each embedded test over `cases`
/// random inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate() {
        let mut rng = crate::new_rng("ranges_and_maps_generate");
        let s = (0..10usize).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn oneof_hits_all_options() {
        let mut rng = crate::new_rng("oneof_hits_all_options");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::new_rng("vec_strategy_respects_length");
        let s = crate::collection::vec(0.0f64..1.0, 1..5);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_cases(x in 0.0f64..1.0, n in 1..10usize) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(9), n, "n was {}", n);
        }
    }
}

//! Device calibration data.
//!
//! Mirrors the "reported backend information" the paper's CA-EC pass
//! consumes without extra calibration (Sec. II-D): per-edge always-on
//! ZZ rates, per-qubit coherence and readout numbers, spectator Stark
//! shifts, charge-parity strengths, and next-nearest-neighbour
//! collision terms.
//!
//! Units: times in nanoseconds or microseconds as named; rates in kHz.

use ca_circuit::GateDurations;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serde adapter: (de)serialises `BTreeMap<(usize, usize), V>` as a
/// list of `(a, b, value)` entries, since JSON map keys must be
/// strings. Written against the offline serde shim's value-tree API
/// (`to_value`/`from_value` instead of `serialize`/`deserialize`).
pub mod pair_map {
    use serde::{DeError, Deserialize, Serialize, Value};
    use std::collections::BTreeMap;

    /// Serialises the map as an entry list.
    pub fn to_value<V: Serialize>(map: &BTreeMap<(usize, usize), V>) -> Value {
        Value::Arr(
            map.iter()
                .map(|(&(a, b), v)| Value::Arr(vec![a.to_value(), b.to_value(), v.to_value()]))
                .collect(),
        )
    }

    /// Rebuilds the map from an entry list.
    pub fn from_value<V: Deserialize>(v: &Value) -> Result<BTreeMap<(usize, usize), V>, DeError> {
        let entries: Vec<(usize, usize, V)> = Vec::from_value(v)?;
        Ok(entries.into_iter().map(|(a, b, v)| ((a, b), v)).collect())
    }
}

/// Converts a rate ν (kHz) acting for τ (ns) into an accumulated phase
/// angle in radians: `θ = 2π·ν·τ`. `#[inline]` because it sits on the
/// per-lane flush path of the frame engines (cross-crate).
#[inline]
pub fn phase_rad(nu_khz: f64, tau_ns: f64) -> f64 {
    2.0 * std::f64::consts::PI * nu_khz * 1e3 * tau_ns * 1e-9
}

/// Per-qubit calibration record.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QubitCal {
    /// Energy-relaxation time T1 (µs).
    pub t1_us: f64,
    /// Dephasing time T2 (µs).
    pub t2_us: f64,
    /// Readout assignment error probability.
    pub readout_err: f64,
    /// Depolarizing error probability per physical 1q gate.
    pub gate_err_1q: f64,
    /// RMS of the quasi-static (low-frequency) detuning distribution
    /// (kHz); sampled once per shot. DD refocuses it, EC cannot.
    pub quasistatic_khz: f64,
    /// Charge-parity splitting δ (kHz); its *sign* flips shot to shot
    /// (Eq. 6), so only DD can remove it.
    pub charge_parity_khz: f64,
}

impl Default for QubitCal {
    fn default() -> Self {
        Self {
            t1_us: 250.0,
            t2_us: 150.0,
            readout_err: 0.015,
            gate_err_1q: 2e-4,
            quasistatic_khz: 3.0,
            charge_parity_khz: 0.0,
        }
    }
}

/// Per-edge (coupled-pair) calibration record.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeCal {
    /// Always-on ZZ rate ν (kHz) of Eq. (1).
    pub zz_khz: f64,
    /// Depolarizing error probability per two-qubit gate on this edge.
    pub gate_err_2q: f64,
}

impl Default for EdgeCal {
    fn default() -> Self {
        Self {
            zz_khz: 60.0,
            gate_err_2q: 7e-3,
        }
    }
}

/// A next-nearest-neighbour ZZ term from a frequency collision
/// (Sec. III-C): qubits `i` and `k` interact through middle qubit `j`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NnnTerm {
    /// First outer qubit.
    pub i: usize,
    /// Middle (mediating) qubit.
    pub j: usize,
    /// Second outer qubit.
    pub k: usize,
    /// The enhanced ZZ rate between `i` and `k` (kHz).
    pub zz_khz: f64,
}

/// Full calibration snapshot for a device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Per-qubit records, indexed by qubit.
    pub qubits: Vec<QubitCal>,
    /// Per-edge records keyed by normalised `(min, max)` pairs.
    #[serde(with = "pair_map")]
    pub edges: BTreeMap<(usize, usize), EdgeCal>,
    /// Directed spectator Stark shift (kHz): key `(driven, spectator)`;
    /// a gate driving `driven` Stark-shifts `spectator` (Fig. 4a).
    #[serde(with = "pair_map")]
    pub stark_khz: BTreeMap<(usize, usize), f64>,
    /// Next-nearest-neighbour collision terms.
    pub nnn: Vec<NnnTerm>,
    /// Gate durations for scheduling.
    pub durations: GateDurations,
}

impl Calibration {
    /// A uniform calibration over a given edge set: every pair gets
    /// `zz_khz`, every qubit the default record. Deterministic —
    /// useful for tests and controlled experiments.
    pub fn uniform(num_qubits: usize, edges: &[(usize, usize)], zz_khz: f64) -> Self {
        let mut map = BTreeMap::new();
        for &(a, b) in edges {
            map.insert(
                (a.min(b), a.max(b)),
                EdgeCal {
                    zz_khz,
                    ..EdgeCal::default()
                },
            );
        }
        Self {
            qubits: vec![QubitCal::default(); num_qubits],
            edges: map,
            stark_khz: BTreeMap::new(),
            nnn: Vec::new(),
            durations: GateDurations::default(),
        }
    }

    /// The ZZ rate on edge `(a, b)` in kHz (0 if not coupled).
    pub fn zz_khz(&self, a: usize, b: usize) -> f64 {
        self.edges
            .get(&(a.min(b), a.max(b)))
            .map_or(0.0, |e| e.zz_khz)
    }

    /// The two-qubit gate error on edge `(a, b)`.
    pub fn gate_err_2q(&self, a: usize, b: usize) -> f64 {
        self.edges
            .get(&(a.min(b), a.max(b)))
            .map_or(0.0, |e| e.gate_err_2q)
    }

    /// Stark shift (kHz) on `spectator` while `driven` is being driven.
    pub fn stark_on(&self, driven: usize, spectator: usize) -> f64 {
        self.stark_khz
            .get(&(driven, spectator))
            .copied()
            .unwrap_or(0.0)
    }

    /// NNN ZZ rate between outer qubits `i` and `k` (kHz), summed over
    /// all collision records matching the unordered pair.
    pub fn nnn_khz(&self, i: usize, k: usize) -> f64 {
        self.nnn
            .iter()
            .filter(|t| (t.i == i && t.k == k) || (t.i == k && t.k == i))
            .map(|t| t.zz_khz)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_conversion() {
        // 100 kHz for 500 ns → 2π·0.05 rad ≈ 0.3141…
        let th = phase_rad(100.0, 500.0);
        assert!((th - 2.0 * std::f64::consts::PI * 0.05).abs() < 1e-12);
    }

    #[test]
    fn uniform_calibration_covers_edges() {
        let edges = [(0, 1), (1, 2)];
        let cal = Calibration::uniform(3, &edges, 80.0);
        assert_eq!(cal.zz_khz(1, 0), 80.0);
        assert_eq!(cal.zz_khz(2, 1), 80.0);
        assert_eq!(cal.zz_khz(0, 2), 0.0);
    }

    #[test]
    fn stark_is_directed() {
        let mut cal = Calibration::uniform(2, &[(0, 1)], 50.0);
        cal.stark_khz.insert((0, 1), 20.0);
        assert_eq!(cal.stark_on(0, 1), 20.0);
        assert_eq!(cal.stark_on(1, 0), 0.0);
    }

    #[test]
    fn nnn_lookup_is_symmetric() {
        let mut cal = Calibration::uniform(3, &[(0, 1), (1, 2)], 50.0);
        cal.nnn.push(NnnTerm {
            i: 0,
            j: 1,
            k: 2,
            zz_khz: 10.0,
        });
        assert_eq!(cal.nnn_khz(0, 2), 10.0);
        assert_eq!(cal.nnn_khz(2, 0), 10.0);
        assert_eq!(cal.nnn_khz(0, 1), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let cal = Calibration::uniform(2, &[(0, 1)], 75.0);
        let s = serde_json::to_string(&cal).unwrap();
        let back: Calibration = serde_json::from_str(&s).unwrap();
        assert_eq!(cal, back);
    }
}

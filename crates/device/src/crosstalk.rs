//! The crosstalk interaction graph (Algorithm 1, line 2:
//! `BuildInteractionGraph`).
//!
//! Nodes are qubits; edges carry the ZZ rate that two qubits accrue
//! when jointly idle. Nearest-neighbour edges come from the coupling
//! map; next-nearest-neighbour edges are added for frequency-collision
//! triplets above a threshold (Fig. 4c).

use crate::calibration::Calibration;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The provenance of a crosstalk edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrosstalkKind {
    /// Directly coupled pair (always-on ZZ, Eq. 1).
    NearestNeighbor,
    /// Collision-enhanced next-nearest-neighbour pair (Sec. III-C).
    NextNearest,
}

/// An edge of the crosstalk graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkEdge {
    /// Lower qubit index.
    pub a: usize,
    /// Higher qubit index.
    pub b: usize,
    /// ZZ rate in kHz.
    pub zz_khz: f64,
    /// Edge provenance.
    pub kind: CrosstalkKind,
}

/// The crosstalk graph used by coloring (CA-DD) and accumulation
/// (CA-EC).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkGraph {
    /// Number of qubits.
    pub num_qubits: usize,
    /// All crosstalk edges.
    pub edges: Vec<CrosstalkEdge>,
}

impl CrosstalkGraph {
    /// Builds the graph from device data: one edge per coupled pair,
    /// plus NNN edges whose rate exceeds `nnn_threshold_khz`.
    pub fn build(topology: &Topology, cal: &Calibration, nnn_threshold_khz: f64) -> Self {
        let mut edges = Vec::new();
        for &(a, b) in &topology.edges {
            edges.push(CrosstalkEdge {
                a,
                b,
                zz_khz: cal.zz_khz(a, b),
                kind: CrosstalkKind::NearestNeighbor,
            });
        }
        for t in &cal.nnn {
            if t.zz_khz >= nnn_threshold_khz {
                edges.push(CrosstalkEdge {
                    a: t.i.min(t.k),
                    b: t.i.max(t.k),
                    zz_khz: t.zz_khz,
                    kind: CrosstalkKind::NextNearest,
                });
            }
        }
        Self {
            num_qubits: topology.num_qubits,
            edges,
        }
    }

    /// Crosstalk neighbours of `q` (over both edge kinds), ascending.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|e| {
                if e.a == q {
                    Some(e.b)
                } else if e.b == q {
                    Some(e.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The edge between `a` and `b`, if any.
    pub fn edge(&self, a: usize, b: usize) -> Option<&CrosstalkEdge> {
        let (lo, hi) = (a.min(b), a.max(b));
        self.edges.iter().find(|e| e.a == lo && e.b == hi)
    }

    /// True when `a` and `b` share a crosstalk edge.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.edge(a, b).is_some()
    }

    /// Maximum degree of the graph — a lower bound driver for the
    /// number of colors CA-DD may need.
    pub fn max_degree(&self) -> usize {
        (0..self.num_qubits)
            .map(|q| self.neighbors(q).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::NnnTerm;

    #[test]
    fn nn_edges_from_topology() {
        let topo = Topology::line(3);
        let cal = Calibration::uniform(3, &topo.edges, 42.0);
        let g = CrosstalkGraph::build(&topo, &cal, 5.0);
        assert_eq!(g.edges.len(), 2);
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        assert_eq!(g.edge(0, 1).unwrap().zz_khz, 42.0);
    }

    #[test]
    fn nnn_edge_added_above_threshold() {
        let topo = Topology::line(3);
        let mut cal = Calibration::uniform(3, &topo.edges, 42.0);
        cal.nnn.push(NnnTerm {
            i: 0,
            j: 1,
            k: 2,
            zz_khz: 12.0,
        });
        let g = CrosstalkGraph::build(&topo, &cal, 5.0);
        assert!(g.connected(0, 2));
        assert_eq!(g.edge(0, 2).unwrap().kind, CrosstalkKind::NextNearest);
        // Below threshold it is ignored.
        cal.nnn[0].zz_khz = 0.1;
        let g2 = CrosstalkGraph::build(&topo, &cal, 5.0);
        assert!(!g2.connected(0, 2));
    }

    #[test]
    fn collision_triplet_raises_degree() {
        let topo = Topology::line(3);
        let mut cal = Calibration::uniform(3, &topo.edges, 42.0);
        cal.nnn.push(NnnTerm {
            i: 0,
            j: 1,
            k: 2,
            zz_khz: 12.0,
        });
        let g = CrosstalkGraph::build(&topo, &cal, 5.0);
        // Qubit 1 still has 2 neighbours, but 0 and 2 now have 2 each:
        // the triangle forces 3 colors in CA-DD.
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert_eq!(g.max_degree(), 2);
    }
}

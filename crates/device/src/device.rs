//! The device: topology + calibration + derived crosstalk graph.

use crate::calibration::Calibration;
use crate::crosstalk::CrosstalkGraph;
use crate::topology::Topology;
use ca_circuit::GateDurations;
use serde::{Deserialize, Serialize};

/// Default kHz threshold above which an NNN collision term earns an
/// edge in the crosstalk graph (typical mediated NNN ZZ is O(0.1 kHz),
/// collisions reach O(10 kHz) — Sec. III-C).
pub const DEFAULT_NNN_THRESHOLD_KHZ: f64 = 2.0;

/// A quantum device as the compiler and simulator see it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable name (e.g. `"nazca_like"`).
    pub name: String,
    /// Coupling topology.
    pub topology: Topology,
    /// Calibration snapshot.
    pub calibration: Calibration,
    /// Crosstalk graph derived from topology + calibration.
    pub crosstalk: CrosstalkGraph,
}

impl Device {
    /// Assembles a device, deriving the crosstalk graph.
    pub fn new(name: impl Into<String>, topology: Topology, calibration: Calibration) -> Self {
        let crosstalk = CrosstalkGraph::build(&topology, &calibration, DEFAULT_NNN_THRESHOLD_KHZ);
        Self {
            name: name.into(),
            topology,
            calibration,
            crosstalk,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits
    }

    /// Gate durations.
    pub fn durations(&self) -> GateDurations {
        self.calibration.durations
    }

    /// A structural fingerprint of the device: any change to the
    /// topology, calibration snapshot, or derived crosstalk graph
    /// changes the hash (up to 64-bit collisions). Computed from the
    /// canonical JSON snapshot — calibration maps are `BTreeMap`s, so
    /// the serialisation (and therefore the hash) is deterministic.
    /// Plan-cache layers compute this once per device, not per
    /// lookup.
    pub fn fingerprint(&self) -> u64 {
        let mut h = ca_circuit::Fnv::new();
        h.str(&self.to_json());
        h.finish()
    }

    /// Serialises the device to JSON (calibration snapshot format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("device serialises") // ca-lint: allow(panic) -- Device is plain data; JSON serialisation cannot fail
    }

    /// Loads a device from its JSON snapshot.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_derives_crosstalk() {
        let topo = Topology::line(4);
        let cal = Calibration::uniform(4, &topo.edges, 55.0);
        let dev = Device::new("test", topo, cal);
        assert_eq!(dev.num_qubits(), 4);
        assert_eq!(dev.crosstalk.edges.len(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let topo = Topology::ring(6);
        let cal = Calibration::uniform(6, &topo.edges, 45.0);
        let dev = Device::new("ring6", topo, cal);
        let json = dev.to_json();
        let back = Device::from_json(&json).unwrap();
        assert_eq!(dev, back);
    }
}

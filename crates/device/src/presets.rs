//! Synthetic device presets.
//!
//! The paper's experiments ran on `ibm_nazca`, `ibm_brisbane`,
//! `ibm_sherbrooke`, and `ibm_penguino1`. We cannot access those
//! devices, so these presets draw calibration values from the ranges
//! that the paper and IBM backend reporting describe for
//! fixed-frequency ECR transmon processors (see DESIGN.md §2):
//!
//! * always-on ZZ: 20–120 kHz per coupled pair,
//! * spectator Stark shifts ~20 kHz (Fig. 4a),
//! * charge-parity splittings 0–5 kHz (Fig. 4b),
//! * NNN collision terms ~10 kHz where present (Fig. 4c),
//! * T1 150–350 µs, T2 80–250 µs,
//! * 1q error ~2·10⁻⁴, ECR error 5·10⁻³–10⁻², readout ~1–2·10⁻².
//!
//! Every preset is seeded and fully deterministic.

use crate::calibration::{Calibration, EdgeCal, NnnTerm, QubitCal};
use crate::device::Device;
use crate::topology::Topology;
use ca_circuit::GateDurations;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Tunable ranges for sampling a synthetic calibration.
#[derive(Clone, Copy, Debug)]
pub struct NoiseProfile {
    /// Always-on ZZ range (kHz).
    pub zz_khz: (f64, f64),
    /// Spectator Stark shift range (kHz).
    pub stark_khz: (f64, f64),
    /// Charge-parity splitting range (kHz).
    pub charge_parity_khz: (f64, f64),
    /// Quasi-static detuning RMS range (kHz).
    pub quasistatic_khz: (f64, f64),
    /// T1 range (µs).
    pub t1_us: (f64, f64),
    /// T2 range (µs), capped at 2·T1 after sampling.
    pub t2_us: (f64, f64),
    /// 1q gate error range.
    pub err_1q: (f64, f64),
    /// 2q gate error range.
    pub err_2q: (f64, f64),
    /// Readout error range.
    pub readout: (f64, f64),
    /// Probability that an NNN triplet is collision-enhanced.
    pub collision_prob: f64,
    /// Collision-enhanced NNN ZZ range (kHz).
    pub collision_khz: (f64, f64),
}

impl Default for NoiseProfile {
    fn default() -> Self {
        Self {
            zz_khz: (20.0, 120.0),
            stark_khz: (10.0, 30.0),
            charge_parity_khz: (0.0, 3.0),
            quasistatic_khz: (1.5, 5.0),
            t1_us: (150.0, 350.0),
            t2_us: (80.0, 250.0),
            err_1q: (1e-4, 4e-4),
            err_2q: (5e-3, 1.1e-2),
            readout: (0.008, 0.025),
            collision_prob: 0.05,
            collision_khz: (6.0, 15.0),
        }
    }
}

fn sample(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.random_range(range.0..range.1)
    }
}

/// Samples a calibration for `topology` from `profile` with a fixed
/// seed.
pub fn sample_calibration(topology: &Topology, profile: &NoiseProfile, seed: u64) -> Calibration {
    let mut rng = StdRng::seed_from_u64(seed);
    let qubits: Vec<QubitCal> = (0..topology.num_qubits)
        .map(|_| {
            let t1 = sample(&mut rng, profile.t1_us);
            let t2 = sample(&mut rng, profile.t2_us).min(2.0 * t1);
            QubitCal {
                t1_us: t1,
                t2_us: t2,
                readout_err: sample(&mut rng, profile.readout),
                gate_err_1q: sample(&mut rng, profile.err_1q),
                quasistatic_khz: sample(&mut rng, profile.quasistatic_khz),
                charge_parity_khz: sample(&mut rng, profile.charge_parity_khz),
            }
        })
        .collect();

    let mut edges = BTreeMap::new();
    let mut stark = BTreeMap::new();
    for &(a, b) in &topology.edges {
        edges.insert(
            (a, b),
            EdgeCal {
                zz_khz: sample(&mut rng, profile.zz_khz),
                gate_err_2q: sample(&mut rng, profile.err_2q),
            },
        );
        // Driving either endpoint Stark-shifts the other.
        stark.insert((a, b), sample(&mut rng, profile.stark_khz));
        stark.insert((b, a), sample(&mut rng, profile.stark_khz));
    }

    let mut nnn = Vec::new();
    for (i, j, k) in topology.nnn_triplets() {
        if rng.random::<f64>() < profile.collision_prob {
            nnn.push(NnnTerm {
                i,
                j,
                k,
                zz_khz: sample(&mut rng, profile.collision_khz),
            });
        }
    }

    Calibration {
        qubits,
        edges,
        stark_khz: stark,
        nnn,
        durations: GateDurations::default(),
    }
}

/// An `ibm_nazca`-like device on the given topology (Figs. 3, 6–9).
pub fn nazca_like(topology: Topology, seed: u64) -> Device {
    let cal = sample_calibration(&topology, &NoiseProfile::default(), seed);
    Device::new("nazca_like", topology, cal)
}

/// An `ibm_brisbane`-like device: somewhat stronger ZZ spread
/// (used for case IV of Fig. 3f).
pub fn brisbane_like(topology: Topology, seed: u64) -> Device {
    let profile = NoiseProfile {
        zz_khz: (30.0, 140.0),
        ..NoiseProfile::default()
    };
    let cal = sample_calibration(&topology, &profile, seed);
    Device::new("brisbane_like", topology, cal)
}

/// An `ibm_sherbrooke`-like device: guaranteed NNN collision structure
/// (used for Fig. 4c).
pub fn sherbrooke_like(topology: Topology, seed: u64) -> Device {
    let profile = NoiseProfile {
        collision_prob: 1.0,
        ..NoiseProfile::default()
    };
    let cal = sample_calibration(&topology, &profile, seed);
    Device::new("sherbrooke_like", topology, cal)
}

/// An `ibm_penguino1`-like device (Fig. 10): slightly noisier 1q gates
/// so DD pulse cost is visible in the combined-strategy comparison.
pub fn penguino_like(topology: Topology, seed: u64) -> Device {
    let profile = NoiseProfile {
        err_1q: (3e-4, 8e-4),
        zz_khz: (40.0, 130.0),
        ..NoiseProfile::default()
    };
    let cal = sample_calibration(&topology, &profile, seed);
    Device::new("penguino_like", topology, cal)
}

/// A full 127-qubit Eagle-class device on the heavy-hex lattice of
/// [`Topology::heavy_hex_127`] with the default noise profile — the
/// scale regime of the paper's flagship experiments (Figs. 6–8 ran on
/// 100+ qubit devices). Dense simulation is infeasible here; the
/// stabilizer engine runs it comfortably.
pub fn eagle_like(seed: u64) -> Device {
    let topology = Topology::heavy_hex_127();
    let cal = sample_calibration(&topology, &NoiseProfile::default(), seed);
    Device::new("eagle_like", topology, cal)
}

/// A full 433-qubit Osprey-class device on the heavy-hex lattice of
/// [`Topology::heavy_hex_433`] with the default noise profile — the
/// first post-Eagle scale step. Only the sparse frame engines are
/// practical here; the batched engine's activity-tracked storage keeps
/// per-shot cost proportional to the driven sublattice, not the full
/// width.
pub fn osprey_like(seed: u64) -> Device {
    let topology = Topology::heavy_hex_433();
    let cal = sample_calibration(&topology, &NoiseProfile::default(), seed);
    Device::new("osprey_like", topology, cal)
}

/// A full 1121-qubit Condor-class device on the heavy-hex lattice of
/// [`Topology::heavy_hex_1121`] with the default noise profile — the
/// largest heavy-hex generation, exercising the engine's sparse
/// pending banks and qubit-sharded strip sampling at full stretch.
pub fn condor_like(seed: u64) -> Device {
    let topology = Topology::heavy_hex_1121();
    let cal = sample_calibration(&topology, &NoiseProfile::default(), seed);
    Device::new("condor_like", topology, cal)
}

/// A deterministic uniform device: identical ZZ on every edge, default
/// qubit records, no Stark/NNN. The workhorse for unit tests and
/// isolated characterization experiments.
pub fn uniform_device(topology: Topology, zz_khz: f64) -> Device {
    let cal = Calibration::uniform(topology.num_qubits, &topology.edges, zz_khz);
    Device::new("uniform", topology, cal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic() {
        let a = nazca_like(Topology::line(5), 7);
        let b = nazca_like(Topology::line(5), 7);
        assert_eq!(a, b);
        let c = nazca_like(Topology::line(5), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_values_in_range() {
        let dev = nazca_like(Topology::ring(12), 3);
        let profile = NoiseProfile::default();
        for q in &dev.calibration.qubits {
            assert!(q.t1_us >= profile.t1_us.0 && q.t1_us <= profile.t1_us.1);
            assert!(q.t2_us <= 2.0 * q.t1_us);
        }
        for e in dev.calibration.edges.values() {
            assert!(e.zz_khz >= profile.zz_khz.0 && e.zz_khz <= profile.zz_khz.1);
        }
    }

    #[test]
    fn sherbrooke_has_nnn_collisions() {
        let dev = sherbrooke_like(Topology::line(3), 11);
        assert_eq!(dev.calibration.nnn.len(), 1);
        assert!(dev.crosstalk.connected(0, 2));
    }

    #[test]
    fn eagle_preset_has_full_scale() {
        let dev = eagle_like(3);
        assert_eq!(dev.num_qubits(), 127);
        assert_eq!(dev.calibration.qubits.len(), 127);
        assert_eq!(dev.calibration.edges.len(), 144);
        // Deterministic per seed.
        assert_eq!(dev, eagle_like(3));
        assert_ne!(dev, eagle_like(4));
    }

    #[test]
    fn osprey_and_condor_presets_have_full_scale() {
        let osprey = osprey_like(3);
        assert_eq!(osprey.num_qubits(), 433);
        assert_eq!(osprey.calibration.edges.len(), 504);
        assert_eq!(osprey, osprey_like(3));
        let condor = condor_like(3);
        assert_eq!(condor.num_qubits(), 1121);
        assert_eq!(condor.calibration.edges.len(), 1320);
        assert_eq!(condor, condor_like(3));
        assert_ne!(condor, condor_like(4));
    }

    #[test]
    fn uniform_device_is_flat() {
        let dev = uniform_device(Topology::line(4), 66.0);
        assert_eq!(dev.calibration.zz_khz(0, 1), 66.0);
        assert_eq!(dev.calibration.zz_khz(2, 3), 66.0);
        assert!(dev.calibration.nnn.is_empty());
    }

    #[test]
    fn stark_terms_cover_both_directions() {
        let dev = nazca_like(Topology::line(2), 5);
        assert!(dev.calibration.stark_on(0, 1) > 0.0);
        assert!(dev.calibration.stark_on(1, 0) > 0.0);
    }
}

#![forbid(unsafe_code)]
//! # ca-device
//!
//! Device-model substrate: coupling topologies, calibration snapshots
//! (always-on ZZ rates, Stark shifts, charge-parity strengths, NNN
//! collision terms, coherence and error numbers), the crosstalk
//! interaction graph consumed by CA-DD's coloring, and seeded
//! synthetic presets standing in for the IBM backends of the paper.

#![warn(missing_docs)]

pub mod calibration;
pub mod crosstalk;
pub mod device;
pub mod presets;
pub mod topology;

pub use calibration::{phase_rad, Calibration, EdgeCal, NnnTerm, QubitCal};
pub use crosstalk::{CrosstalkEdge, CrosstalkGraph, CrosstalkKind};
pub use device::{Device, DEFAULT_NNN_THRESHOLD_KHZ};
pub use presets::{
    brisbane_like, eagle_like, nazca_like, penguino_like, sample_calibration, sherbrooke_like,
    uniform_device, NoiseProfile,
};
pub use topology::Topology;

//! Qubit coupling topologies.
//!
//! Provides the layouts the paper's experiments run on: linear chains,
//! the 12-qubit ring embedded in a heavy-hex lattice (Fig. 7a), a
//! generic heavy-hex patch, and the 10-qubit sparse layer of Fig. 8a.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected coupling graph over `num_qubits` qubits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Undirected edges with `a < b`, sorted, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl Topology {
    /// Builds a topology from an edge list (normalised and validated).
    pub fn new(num_qubits: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set = BTreeSet::new();
        for (a, b) in edges {
            assert!(a != b, "self-loop on qubit {a}");
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            set.insert((a.min(b), a.max(b)));
        }
        Self {
            num_qubits,
            edges: set.into_iter().collect(),
        }
    }

    /// A linear chain `0—1—…—(n−1)`.
    pub fn line(n: usize) -> Self {
        Self::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A ring `0—1—…—(n−1)—0` (the paper's 12-qubit Heisenberg ring is
    /// such a ring embedded in heavy hex; the embedding does not change
    /// its coupling graph).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 qubits");
        Self::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// A heavy-hex patch with `rows` rows of `cols` qubits, bridged by
    /// one connector qubit per pair of adjacent rows every 4 columns
    /// (the IBM Eagle/Heron unit-cell pattern, simplified).
    ///
    /// Returns the topology; qubits are numbered row-major, with the
    /// bridge qubits appended after the row qubits.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 2);
        let mut edges = Vec::new();
        // Row chains.
        for r in 0..rows {
            for c in 0..cols - 1 {
                edges.push((r * cols + c, r * cols + c + 1));
            }
        }
        // Bridges between adjacent rows, staggered every 4 columns.
        let mut next = rows * cols;
        for r in 0..rows.saturating_sub(1) {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            let mut c = offset;
            while c < cols {
                let top = r * cols + c;
                let bottom = (r + 1) * cols + c;
                edges.push((top, next));
                edges.push((next, bottom));
                next += 1;
                c += 4;
            }
        }
        Self::new(next, edges)
    }

    /// The IBM heavy-hex device family at generation `k`: `2k + 1`
    /// qubit rows spanning columns `0..=4k + 2` (the first row drops
    /// its last column, the last row its first) joined by
    /// `(k + 1)`-qubit bridge groups whose columns alternate between
    /// `{0, 4, …, 4k}` and `{2, 6, …, 4k + 2}`. Qubit numbering
    /// interleaves rows and bridge groups exactly like the real
    /// devices (for `k = 3`: row 0 = 0–13, bridges 14–17,
    /// row 1 = 18–32, …, row 6 = 113–126).
    ///
    /// Sizes follow `10k² + 12k + 1` qubits and `12k² + 12k` edges:
    /// `k = 3` is Eagle (127q), `k = 6` Osprey (433q), `k = 10`
    /// Condor (1121q).
    pub fn heavy_hex_family(k: usize) -> Self {
        assert!(k >= 1, "heavy-hex family needs k >= 1");
        let last_col = 4 * k + 2;
        let rows = 2 * k + 1;
        let mut next = 0usize;
        let mut row_qubit: Vec<std::collections::BTreeMap<usize, usize>> = Vec::new();
        let mut edges = Vec::new();
        let mut bridge_starts = Vec::new();
        for r in 0..rows {
            // Row chain: the top row ends one column early, the bottom
            // row starts one column late.
            let (c0, c1) = if r == 0 {
                (0, last_col - 1)
            } else if r == rows - 1 {
                (1, last_col)
            } else {
                (0, last_col)
            };
            let mut map = std::collections::BTreeMap::new();
            for c in c0..=c1 {
                map.insert(c, next);
                if c > c0 {
                    edges.push((next - 1, next));
                }
                next += 1;
            }
            row_qubit.push(map);
            // Bridge group below this row (none after the last row).
            if r < rows - 1 {
                bridge_starts.push(next);
                next += k + 1;
            }
        }
        for (r, &start) in bridge_starts.iter().enumerate() {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            for b in 0..=k {
                let c = offset + 4 * b;
                let bridge = start + b;
                if let Some(&top) = row_qubit[r].get(&c) {
                    edges.push((top, bridge));
                }
                if let Some(&bottom) = row_qubit[r + 1].get(&c) {
                    edges.push((bridge, bottom));
                }
            }
        }
        let t = Self::new(next, edges);
        debug_assert_eq!(t.num_qubits, 10 * k * k + 12 * k + 1);
        debug_assert_eq!(t.edges.len(), 12 * k * k + 12 * k);
        t
    }

    /// The 127-qubit heavy-hex lattice of IBM's Eagle processors
    /// (`ibm_washington` / `ibm_nazca` class):
    /// [`Topology::heavy_hex_family`] at `k = 3`.
    pub fn heavy_hex_127() -> Self {
        Self::heavy_hex_family(3)
    }

    /// The 433-qubit heavy-hex lattice of IBM's Osprey processor:
    /// [`Topology::heavy_hex_family`] at `k = 6`.
    pub fn heavy_hex_433() -> Self {
        Self::heavy_hex_family(6)
    }

    /// The 1121-qubit heavy-hex lattice of IBM's Condor processor:
    /// [`Topology::heavy_hex_family`] at `k = 10`.
    pub fn heavy_hex_1121() -> Self {
        Self::heavy_hex_family(10)
    }

    /// The 10-qubit sparse-layer layout of Fig. 8a (`ibm_nazca` qubits
    /// 37–40, 52, 56–60 relabelled 0–9):
    ///
    /// ```text
    /// 0(37) — 1(38) — 2(39) — 3(40)
    /// |
    /// 4(52)
    /// |
    /// 5(56) — 6(57) — 7(58) — 8(59) — 9(60)
    /// ```
    pub fn fig8_layer() -> Self {
        Self::new(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
            ],
        )
    }

    /// Neighbors of `q`, ascending.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// True when `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.edges.binary_search(&key).is_ok()
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.neighbors(q).len()
    }

    /// All ordered next-nearest-neighbor triplets `(i, j, k)` with
    /// `i—j` and `j—k` edges, `i < k`, and no direct `i—k` edge.
    pub fn nnn_triplets(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for j in 0..self.num_qubits {
            let nb = self.neighbors(j);
            for (x, &i) in nb.iter().enumerate() {
                for &k in nb.iter().skip(x + 1) {
                    if !self.has_edge(i, k) {
                        out.push((i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Greedy proper edge coloring; returns color index per edge (in
    /// `self.edges` order). Used to schedule disjoint two-qubit layers.
    pub fn edge_coloring(&self) -> Vec<usize> {
        let mut colors = vec![usize::MAX; self.edges.len()];
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            let mut used = BTreeSet::new();
            for (j, &(c, d)) in self.edges.iter().enumerate() {
                if j != i && colors[j] != usize::MAX && (c == a || c == b || d == a || d == b) {
                    used.insert(colors[j]);
                }
            }
            let mut color = 0;
            while used.contains(&color) {
                color += 1;
            }
            colors[i] = color;
        }
        colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(4);
        assert_eq!(t.edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.neighbors(1), vec![0, 2]);
        assert_eq!(t.degree(0), 1);
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::ring(12);
        assert_eq!(t.edges.len(), 12);
        assert!(t.has_edge(0, 11));
        assert_eq!(t.degree(5), 2);
    }

    #[test]
    fn fig8_layout_shape() {
        let t = Topology::fig8_layer();
        assert_eq!(t.num_qubits, 10);
        assert_eq!(t.edges.len(), 9);
        // Bridge path 0—4—5.
        assert!(t.has_edge(0, 4) && t.has_edge(4, 5));
        // 3 and 9 are chain ends.
        assert_eq!(t.degree(3), 1);
        assert_eq!(t.degree(9), 1);
    }

    #[test]
    fn heavy_hex_has_bridges() {
        let t = Topology::heavy_hex(2, 5);
        // 2 rows of 5 plus bridges at columns 0 and 4.
        assert_eq!(t.num_qubits, 12);
        assert!(t.has_edge(0, 10));
        assert!(t.has_edge(10, 5));
        assert!(t.has_edge(4, 11));
        assert!(t.has_edge(11, 9));
    }

    #[test]
    fn heavy_hex_127_matches_eagle() {
        let t = Topology::heavy_hex_127();
        assert_eq!(t.num_qubits, 127);
        assert_eq!(t.edges.len(), 144);
        // Heavy hex: degree ≤ 3 everywhere, graph fully connected.
        for q in 0..127 {
            let d = t.degree(q);
            assert!((1..=3).contains(&d), "qubit {q} degree {d}");
        }
        // Spot-check the known Eagle couplings.
        assert!(t.has_edge(0, 14) && t.has_edge(14, 18), "bridge 14: 0↔18");
        assert!(t.has_edge(12, 17) && t.has_edge(17, 30), "bridge 17: 12↔30");
        assert!(
            t.has_edge(96, 109) && t.has_edge(109, 114),
            "bridge 109: 96↔114"
        );
        assert!(
            t.has_edge(108, 112) && t.has_edge(112, 126),
            "bridge 112: 108↔126"
        );
        // Connectivity via BFS.
        let mut seen = [false; 127];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(q) = stack.pop() {
            for nb in t.neighbors(q) {
                if !seen[nb] {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        assert!(seen.iter().all(|s| *s), "lattice is connected");
    }

    #[test]
    fn heavy_hex_family_scales_to_osprey_and_condor() {
        for (k, qubits, edge_count) in [(6, 433, 504), (10, 1121, 1320)] {
            let t = Topology::heavy_hex_family(k);
            assert_eq!(t.num_qubits, qubits, "k={k}");
            assert_eq!(t.edges.len(), edge_count, "k={k}");
            // Heavy hex: degree ≤ 3 everywhere, graph fully connected.
            for q in 0..qubits {
                let d = t.degree(q);
                assert!((1..=3).contains(&d), "k={k} qubit {q} degree {d}");
            }
            let mut seen = vec![false; qubits];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(q) = stack.pop() {
                for nb in t.neighbors(q) {
                    if !seen[nb] {
                        seen[nb] = true;
                        stack.push(nb);
                    }
                }
            }
            assert!(seen.iter().all(|s| *s), "k={k} lattice is connected");
        }
        assert_eq!(Topology::heavy_hex_433(), Topology::heavy_hex_family(6));
        assert_eq!(Topology::heavy_hex_1121(), Topology::heavy_hex_family(10));
    }

    #[test]
    fn heavy_hex_127_is_family_k3() {
        assert_eq!(Topology::heavy_hex_127(), Topology::heavy_hex_family(3));
    }

    #[test]
    fn nnn_triplets_exclude_triangles() {
        let t = Topology::line(3);
        assert_eq!(t.nnn_triplets(), vec![(0, 1, 2)]);
        let tri = Topology::new(3, [(0, 1), (1, 2), (0, 2)]);
        assert!(tri.nnn_triplets().is_empty());
    }

    #[test]
    fn edge_coloring_is_proper() {
        let t = Topology::ring(12);
        let colors = t.edge_coloring();
        for (i, &(a, b)) in t.edges.iter().enumerate() {
            for (j, &(c, d)) in t.edges.iter().enumerate() {
                if i != j && (a == c || a == d || b == c || b == d) {
                    assert_ne!(colors[i], colors[j]);
                }
            }
        }
        // Even ring is 2-edge-colorable... but our greedy may use 3 on
        // odd structures; the ring of 12 needs exactly 2.
        assert!(colors.iter().max().unwrap() <= &2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        let _ = Topology::new(2, [(0, 5)]);
    }
}

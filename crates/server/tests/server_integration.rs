//! End-to-end tests over a real loopback socket: submit jobs (QASM
//! and native), stream chunked counts, exercise every rejection path
//! (malformed JSON, bad QASM, quota, queue-full backpressure,
//! deadline), and read `/stats`.

use ca_device::{uniform_device, Topology};
use ca_server::{QuotaConfig, Server, ServerConfig, ServerHandle};
use ca_sim::session::{Job, Session};
use ca_sim::{Engine, NoiseConfig, Simulator};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const QUBITS: usize = 4;

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 16,
        chunk_entries: 4,
        io_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    }
}

fn spawn(config: ServerConfig) -> ServerHandle {
    let device = uniform_device(Topology::line(QUBITS), 60.0);
    Server::bind("127.0.0.1:0", device, NoiseConfig::default(), config).expect("bind loopback")
}

/// A parsed response: status code, headers (lowercase names), body
/// (chunked transfer decoded).
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn request(handle: &ServerHandle, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let payload = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    // A rejected connection may be answered and closed before the
    // whole request lands; the response is still readable.
    let _ = stream.write_all(raw.as_bytes());
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("receive");
    parse_response(&bytes)
}

fn parse_response(bytes: &[u8]) -> Response {
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8_lossy(&bytes[..head_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|line| {
            let (k, v) = line.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    let raw_body = &bytes[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        decode_chunked(raw_body)
    } else {
        raw_body.to_vec()
    };
    Response {
        status,
        headers,
        body,
    }
}

fn decode_chunked(mut raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&raw[..line_end]).expect("chunk size utf8"),
            16,
        )
        .expect("hex chunk size");
        raw = &raw[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

/// The exporter output for a Bell-like circuit measuring every qubit.
fn bell_qasm() -> String {
    let mut qc = ca_circuit::Circuit::new(QUBITS, QUBITS);
    qc.h(0);
    for q in 0..QUBITS - 1 {
        qc.cx(q, q + 1);
    }
    for q in 0..QUBITS {
        qc.measure(q, q);
    }
    ca_circuit::to_qasm3(&qc)
}

fn job_body(qasm: &str, shots: usize, seed: u64, extra: &str) -> String {
    let qasm_json = serde_json::to_string(&qasm.to_string()).expect("encode qasm");
    format!("{{\"shots\":{shots},\"seed\":{seed},\"qasm\":{qasm_json}{extra}}}")
}

/// Parses `{"shots":...,"num_clbits":...,"counts":{"0101":n,...}}`
/// back into a key->count map on the packed-bit keys.
fn counts_from_json(body: &str) -> BTreeMap<u64, usize> {
    let value = serde_json::parse_value(body).expect("valid counts JSON");
    let mut out = BTreeMap::new();
    if let serde::Value::Obj(entries) = value.get("counts") {
        for (bits, count) in entries {
            let key = u64::from_str_radix(bits, 2).expect("bitstring key");
            out.insert(key, count.as_f64().expect("count") as usize);
        }
    }
    out
}

#[test]
fn healthz_and_unknown_routes() {
    let handle = spawn(test_config());
    assert_eq!(request(&handle, "GET", "/healthz", None).status, 200);
    assert_eq!(request(&handle, "GET", "/nope", None).status, 404);
    assert_eq!(request(&handle, "DELETE", "/v1/jobs", None).status, 405);
    handle.shutdown();
}

#[test]
fn qasm_job_round_trips_bit_identical_to_direct_session() {
    let handle = spawn(test_config());
    let shots = 513; // odd: exercises tail lanes through the whole stack
    let seed = 42;
    let body = job_body(&bell_qasm(), shots, seed, "");
    let response = request(&handle, "POST", "/v1/jobs", Some(&body));
    assert_eq!(response.status, 200, "body: {}", response.body_text());
    let served = counts_from_json(&response.body_text());

    // The same device/noise/engine stack, driven directly.
    let device = uniform_device(Topology::line(QUBITS), 60.0);
    let sim = Simulator::with_engine(device, NoiseConfig::default(), Engine::Auto);
    let session = Session::with_capacity(sim, 4);
    let qc = ca_circuit::parse(&bell_qasm()).expect("own qasm");
    let sc = ca_circuit::schedule_asap(&qc, ca_circuit::GateDurations::default());
    let reference = session
        .run(&Job::counts(sc, shots, seed))
        .expect("direct run");
    let reference_counts = match reference {
        ca_sim::session::JobOutput::Counts(r) => r.counts,
        other => panic!("expected counts, got {other:?}"),
    };
    assert_eq!(
        served, reference_counts,
        "served counts must be bit-identical"
    );
    handle.shutdown();
}

#[test]
fn native_schema_submits_and_matches_qasm_submission() {
    let handle = spawn(test_config());
    let qc = ca_circuit::parse(&bell_qasm()).expect("bell circuit");
    let circuit_json = serde_json::to_string(&qc).expect("encode circuit");
    let native = format!("{{\"shots\":128,\"seed\":7,\"circuit\":{circuit_json}}}");
    let via_native = request(&handle, "POST", "/v1/jobs", Some(&native));
    assert_eq!(via_native.status, 200, "body: {}", via_native.body_text());

    let via_qasm = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 128, 7, "")),
    );
    assert_eq!(via_qasm.status, 200);
    assert_eq!(
        counts_from_json(&via_native.body_text()),
        counts_from_json(&via_qasm.body_text()),
        "native and QASM encodings of one circuit must agree bit-for-bit"
    );
    handle.shutdown();
}

#[test]
fn large_count_maps_stream_chunked() {
    // chunk_entries = 4 and a 4-qubit superposition (16 outcomes)
    // forces the chunked path.
    let handle = spawn(test_config());
    let response = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 4096, 3, "")),
    );
    assert_eq!(response.status, 200);
    let total: usize = counts_from_json(&response.body_text()).values().sum();
    assert_eq!(total, 4096, "chunked body must reassemble to all shots");
    handle.shutdown();
}

#[test]
fn malformed_json_and_bad_qasm_get_400() {
    let handle = spawn(test_config());
    let garbage = request(&handle, "POST", "/v1/jobs", Some("{not json"));
    assert_eq!(garbage.status, 400);
    assert!(garbage.body_text().contains("malformed JSON"));

    let bad_qasm = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some("{\"shots\":8,\"qasm\":\"OPENQASM 3.0;\\nqubit[2] q;\\nfrobnicate q[0];\"}"),
    );
    assert_eq!(bad_qasm.status, 400);
    assert!(
        bad_qasm.body_text().contains("line 3"),
        "qasm errors carry position: {}",
        bad_qasm.body_text()
    );

    let no_shots = request(&handle, "POST", "/v1/jobs", Some("{\"qasm\":\"x\"}"));
    assert_eq!(no_shots.status, 400);

    let too_wide = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some("{\"shots\":8,\"qasm\":\"OPENQASM 3.0;\\nqubit[9] q;\\nh q[0];\"}"),
    );
    assert_eq!(too_wide.status, 400);
    assert!(too_wide.body_text().contains("device"));
    handle.shutdown();
}

#[test]
fn narrow_circuit_on_wide_device_serves_counts() {
    // A 2-qubit job on the 4-qubit device: crosstalk edges past the
    // circuit's registers used to panic inside plan compilation and
    // kill the worker thread (the client saw an empty reply). The
    // engine must skip out-of-register couplings and the job must
    // round-trip normally.
    let handle = spawn(test_config());
    let mut qc = ca_circuit::Circuit::new(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.measure(0, 0);
    qc.measure(1, 1);
    let narrow = ca_circuit::to_qasm3(&qc);
    let response = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&narrow, 256, 9, "")),
    );
    assert_eq!(response.status, 200, "body: {}", response.body_text());
    let counts = counts_from_json(&response.body_text());
    assert_eq!(counts.values().sum::<usize>(), 256);
    // Both workers must still be alive afterwards.
    for _ in 0..4 {
        let again = request(
            &handle,
            "POST",
            "/v1/jobs",
            Some(&job_body(&narrow, 16, 1, "")),
        );
        assert_eq!(again.status, 200);
    }
    handle.shutdown();
}

#[test]
fn shot_quota_rejects_with_retry_after() {
    let config = ServerConfig {
        quota: QuotaConfig {
            shots_per_sec: 10.0,
            burst_shots: 1000.0,
        },
        ..test_config()
    };
    let handle = spawn(config);
    let first = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 900, 1, "")),
    );
    assert_eq!(first.status, 200, "body: {}", first.body_text());
    let second = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 900, 1, "")),
    );
    assert_eq!(second.status, 429, "body: {}", second.body_text());
    assert!(second.header("retry-after").is_some());
    assert!(second.body_text().contains("quota"));

    // Another tenant's bucket is untouched.
    let other = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 900, 1, ",\"tenant\":\"other\"")),
    );
    assert_eq!(other.status, 200);
    handle.shutdown();
}

#[test]
fn zero_capacity_queue_backpressures_with_429() {
    let config = ServerConfig {
        queue_capacity: 0,
        ..test_config()
    };
    let handle = spawn(config);
    let response = request(&handle, "GET", "/healthz", None);
    assert_eq!(response.status, 429);
    assert!(response.body_text().contains("overloaded"));
    handle.shutdown();
}

#[test]
fn expired_deadline_returns_structured_timeout() {
    let handle = spawn(test_config());
    let response = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 4096, 1, ",\"deadline_ms\":0")),
    );
    assert_eq!(response.status, 408, "body: {}", response.body_text());
    assert!(response.body_text().contains("deadline"));

    // The worker that absorbed the expired job still serves.
    let healthy = request(
        &handle,
        "POST",
        "/v1/jobs",
        Some(&job_body(&bell_qasm(), 64, 1, "")),
    );
    assert_eq!(healthy.status, 200);
    handle.shutdown();
}

#[test]
fn stats_surface_cache_and_counters() {
    let handle = spawn(test_config());
    for seed in 0..3 {
        // Same circuit+seed twice -> guaranteed plan-cache hits.
        for _ in 0..2 {
            let response = request(
                &handle,
                "POST",
                "/v1/jobs",
                Some(&job_body(&bell_qasm(), 64, seed, ",\"tenant\":\"stats-t\"")),
            );
            assert_eq!(response.status, 200);
        }
    }
    let stats = request(&handle, "GET", "/stats", None);
    assert_eq!(stats.status, 200);
    let doc = serde_json::parse_value(&stats.body_text()).expect("stats JSON");
    let tenant = doc.get("tenants").get("stats-t");
    assert!(
        tenant.get("cache_hits").as_f64().unwrap_or(0.0) >= 3.0,
        "repeat submissions must hit the plan cache: {}",
        stats.body_text()
    );
    assert!(tenant.get("quota_shots_available").as_f64().is_some());
    assert!(
        doc.get("counters")
            .get("server.jobs_ok")
            .as_f64()
            .unwrap_or(0.0)
            >= 6.0,
        "obs counters must appear in /stats"
    );
    assert!(
        doc.get("latencies")
            .get("server/request")
            .as_obj()
            .is_some(),
        "request latency percentiles must appear in /stats"
    );
    handle.shutdown();
}

#[test]
fn concurrent_submissions_are_bit_identical_to_serial_replay() {
    let handle = spawn(test_config());
    let jobs: Vec<(usize, u64)> = (0..8).map(|i| (65 + i, 100 + i as u64)).collect();

    // Fire all jobs from parallel client threads.
    let concurrent: Vec<BTreeMap<u64, usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(shots, seed)| {
                let handle = &handle;
                scope.spawn(move || {
                    let response = request(
                        handle,
                        "POST",
                        "/v1/jobs",
                        Some(&job_body(&bell_qasm(), shots, seed, "")),
                    );
                    assert_eq!(response.status, 200);
                    counts_from_json(&response.body_text())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Replay serially against a fresh session.
    let device = uniform_device(Topology::line(QUBITS), 60.0);
    let sim = Simulator::with_engine(device, NoiseConfig::default(), Engine::Auto);
    let session = Session::with_capacity(sim, 4);
    let qc = ca_circuit::parse(&bell_qasm()).expect("bell");
    let sc = ca_circuit::schedule_asap(&qc, ca_circuit::GateDurations::default());
    for (&(shots, seed), served) in jobs.iter().zip(&concurrent) {
        let reference = session
            .run(&Job::counts(sc.clone(), shots, seed))
            .expect("serial replay");
        let reference_counts = match reference {
            ca_sim::session::JobOutput::Counts(r) => r.counts,
            other => panic!("expected counts, got {other:?}"),
        };
        assert_eq!(served, &reference_counts, "shots={shots} seed={seed}");
    }
    handle.shutdown();
}

//! Minimal HTTP/1.1 on blocking sockets: request parsing with
//! `Content-Length` bodies, fixed-length responses, and chunked
//! transfer encoding for streamed payloads.
//!
//! Deliberately small: one request per connection
//! (`Connection: close`), no keep-alive, no compression, headers
//! case-folded to lowercase. Size limits are enforced while reading,
//! so a hostile peer cannot balloon memory.

use std::io::{self, Read, Write};

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …) as sent.
    pub method: String,
    /// Request target, e.g. `/v1/jobs`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers, or framing.
    BadRequest(String),
    /// Headers or body exceeded the configured limit.
    PayloadTooLarge,
    /// The socket failed mid-read.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "payload too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`, holding the head (request line +
/// headers) under `max_head` bytes and the body under `max_body`.
pub fn read_request(
    stream: &mut impl Read,
    max_head: usize,
    max_body: usize,
) -> Result<Request, HttpError> {
    // Read until the blank line terminating the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut scratch = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_subslice(&buf, b"\r\n\r\n") {
            break i;
        }
        if buf.len() > max_head {
            return Err(HttpError::PayloadTooLarge);
        }
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of headers".into(),
            ));
        }
        buf.extend_from_slice(&scratch[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge);
    }

    // Body bytes already read past the head, then the remainder.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(scratch.len());
        let n = stream.read(&mut scratch[..want])?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of body".into(),
            ));
        }
        body.extend_from_slice(&scratch[..n]);
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response with `Content-Length` framing.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response body writer. Construction
/// sends the response head; [`finish`](ChunkedWriter::finish) sends
/// the terminating zero-length chunk.
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Starts a chunked `200 OK` response with the given content type.
    pub fn start(stream: &'a mut W, content_type: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        Ok(Self { stream })
    }

    /// Sends one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the stream prematurely).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")
    }

    /// Terminates the stream and flushes.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// First index of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..], 8192, 1 << 20).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 8192, 1024).expect("parse");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 8192, 10),
            Err(HttpError::PayloadTooLarge)
        ));
    }

    #[test]
    fn rejects_oversized_head() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(&vec![b'a'; 9000]);
        assert!(matches!(
            read_request(&mut &raw[..], 8192, 1024),
            Err(HttpError::PayloadTooLarge)
        ));
    }

    #[test]
    fn rejects_malformed_header() {
        let raw = b"GET / HTTP/1.1\r\nnocolon\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 8192, 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_non_http() {
        let raw = b"NONSENSE\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 8192, 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_writer_frames_payload() {
        let mut out: Vec<u8> = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, "application/json").expect("start");
        w.chunk(b"{\"a\":").expect("chunk");
        w.chunk(b"1}").expect("chunk");
        w.finish().expect("finish");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("5\r\n{\"a\":\r\n2\r\n1}\r\n0\r\n\r\n"));
    }

    #[test]
    fn respond_writes_content_length() {
        let mut out: Vec<u8> = Vec::new();
        respond(
            &mut out,
            429,
            &[("Retry-After", "2".into())],
            "application/json",
            b"{}",
        )
        .expect("respond");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2"));
        assert!(text.contains("Retry-After: 2"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

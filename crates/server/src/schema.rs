//! The JSON job schema and response rendering.
//!
//! A job is a JSON object:
//!
//! ```json
//! {
//!   "tenant": "alice",            // optional, default "anonymous"
//!   "shots": 1024,                // required, >= 1
//!   "seed": 7,                    // optional, default 0
//!   "deadline_ms": 2000,          // optional job deadline
//!   "qasm": "OPENQASM 3.0; ..."   // either an OpenQASM 3 program…
//!   "circuit": { ... }            // …or the native circuit schema
//! }
//! ```
//!
//! The QASM path goes through [`ca_circuit::parse`], so syntax errors
//! come back with the 1-based line/column; the native path is the
//! serde tree of [`Circuit`] itself (what `serde_json::to_string(&circuit)`
//! emits). Either way the circuit is validated — qubit/clbit indices
//! in range, conditions on declared bits — before it reaches the
//! session layer, keeping hostile input away from the engines'
//! invariants.
//!
//! Count maps render with bitstring keys (leftmost character =
//! highest classical bit), split into bounded pieces so large results
//! can stream as HTTP chunks.

use ca_circuit::Circuit;
use ca_sim::RunResult;
use serde::{Deserialize, Value};

/// A validated job, ready to schedule and submit.
#[derive(Debug)]
pub struct JobRequest {
    /// Tenant key for session/quota lookup.
    pub tenant: String,
    /// Shots to run.
    pub shots: usize,
    /// Base seed for the deterministic noise schedule.
    pub seed: u64,
    /// Relative deadline, if any.
    pub deadline_ms: Option<u64>,
    /// The circuit to execute.
    pub circuit: Circuit,
}

/// A schema rejection: maps to `400 Bad Request`.
#[derive(Debug)]
pub struct SchemaError {
    /// What the client got wrong.
    pub message: String,
}

impl SchemaError {
    fn new(message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Parses and validates a job body.
pub fn parse_job(body: &[u8]) -> Result<JobRequest, SchemaError> {
    let text =
        std::str::from_utf8(body).map_err(|_| SchemaError::new("body is not valid UTF-8"))?;
    let value = serde_json::parse_value(text)
        .map_err(|e| SchemaError::new(format!("malformed JSON: {e}")))?;
    if value.as_obj().is_none() {
        return Err(SchemaError::new("job must be a JSON object"));
    }

    let tenant = match value.get("tenant") {
        Value::Null => "anonymous".to_string(),
        v => v
            .as_str()
            .ok_or_else(|| SchemaError::new("`tenant` must be a string"))?
            .to_string(),
    };
    if tenant.is_empty() || tenant.len() > 128 {
        return Err(SchemaError::new("`tenant` must be 1..=128 characters"));
    }

    let shots = non_negative_int(value.get("shots"), "shots")?
        .ok_or_else(|| SchemaError::new("`shots` is required"))?;
    if shots == 0 {
        return Err(SchemaError::new("`shots` must be >= 1"));
    }
    let seed = non_negative_int(value.get("seed"), "seed")?.unwrap_or(0);
    let deadline_ms = non_negative_int(value.get("deadline_ms"), "deadline_ms")?;

    let circuit = match (value.get("qasm"), value.get("circuit")) {
        (Value::Str(src), Value::Null) => ca_circuit::parse(src).map_err(|e| {
            SchemaError::new(format!(
                "qasm parse error at line {}, column {}: {}",
                e.line, e.col, e.message
            ))
        })?,
        (Value::Null, circuit @ Value::Obj(_)) => Circuit::from_value(circuit)
            .map_err(|e| SchemaError::new(format!("bad native circuit: {e}")))?,
        (Value::Null, Value::Null) => {
            return Err(SchemaError::new(
                "job must carry either `qasm` (string) or `circuit` (object)",
            ))
        }
        (_, Value::Null) => return Err(SchemaError::new("`qasm` must be a string")),
        (Value::Null, _) => return Err(SchemaError::new("`circuit` must be an object")),
        _ => {
            return Err(SchemaError::new(
                "`qasm` and `circuit` are mutually exclusive",
            ))
        }
    };
    validate_circuit(&circuit)?;

    Ok(JobRequest {
        tenant,
        shots: shots as usize,
        seed,
        deadline_ms,
        circuit,
    })
}

/// Reads an optional non-negative integer field.
fn non_negative_int(v: &Value, name: &str) -> Result<Option<u64>, SchemaError> {
    match v {
        Value::Null => Ok(None),
        Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
            Ok(Some(*x as u64))
        }
        _ => Err(SchemaError::new(format!(
            "`{name}` must be a non-negative integer"
        ))),
    }
}

/// Rejects circuits whose instructions violate the IR invariants that
/// [`Circuit::push`] (and the engines) assert: indices in range,
/// measures carrying a clbit, conditions on declared bits.
fn validate_circuit(qc: &Circuit) -> Result<(), SchemaError> {
    if qc.num_qubits == 0 {
        return Err(SchemaError::new("circuit declares zero qubits"));
    }
    for (i, instr) in qc.instructions.iter().enumerate() {
        if let Some(&q) = instr.qubits.iter().find(|&&q| q >= qc.num_qubits) {
            return Err(SchemaError::new(format!(
                "instruction {i}: qubit {q} out of range for {} qubits",
                qc.num_qubits
            )));
        }
        if let Some(c) = instr.clbit {
            if c >= qc.num_clbits {
                return Err(SchemaError::new(format!(
                    "instruction {i}: clbit {c} out of range for {} clbits",
                    qc.num_clbits
                )));
            }
        }
        if let Some(cond) = &instr.condition {
            if cond.clbit >= qc.num_clbits {
                return Err(SchemaError::new(format!(
                    "instruction {i}: condition clbit {} out of range for {} clbits",
                    cond.clbit, qc.num_clbits
                )));
            }
        }
    }
    Ok(())
}

/// Newtype lending the shim's `Serialize` to a raw [`Value`] tree
/// (the shim implements the trait for data types, not `Value`).
pub(crate) struct Raw(pub Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// A JSON error body: `{"error": "..."}` with proper escaping.
pub fn error_json(message: &str) -> String {
    let value = Value::Obj(vec![("error".to_string(), Value::Str(message.to_string()))]);
    serde_json::to_string(&Raw(value))
        .unwrap_or_else(|_| "{\"error\":\"unrenderable\"}".to_string())
}

/// Renders a count map as JSON pieces sized for chunked streaming:
/// the opening object, then batches of `entries_per_piece` outcome
/// entries, then the closing braces. Concatenating the pieces yields
/// one valid JSON document; keys are bitstrings (leftmost character =
/// highest classical bit).
pub fn counts_pieces(result: &RunResult, entries_per_piece: usize) -> Vec<String> {
    let width = result.num_clbits.max(1);
    let per = entries_per_piece.max(1);
    let mut pieces = Vec::with_capacity(2 + result.counts.len() / per);
    pieces.push(format!(
        "{{\"shots\":{},\"num_clbits\":{},\"counts\":{{",
        result.shots, result.num_clbits
    ));
    let mut piece = String::new();
    for (i, (key, count)) in result.counts.iter().enumerate() {
        if i > 0 {
            piece.push(',');
        }
        piece.push_str(&format!("\"{key:0width$b}\":{count}"));
        if (i + 1) % per == 0 {
            pieces.push(std::mem::take(&mut piece));
        }
    }
    if !piece.is_empty() {
        pieces.push(piece);
    }
    pieces.push("}}".to_string());
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    fn qasm_job(extra: &str) -> String {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let qasm = serde_json::to_string(&ca_circuit::to_qasm3(&qc)).expect("string");
        format!("{{\"shots\": 128, \"qasm\": {qasm}{extra}}}")
    }

    #[test]
    fn parses_qasm_job() {
        let job = parse_job(qasm_job("").as_bytes()).expect("valid job");
        assert_eq!(job.tenant, "anonymous");
        assert_eq!(job.shots, 128);
        assert_eq!(job.seed, 0);
        assert_eq!(job.circuit.num_qubits, 2);
        assert_eq!(job.circuit.instructions.len(), 4);
    }

    #[test]
    fn parses_native_job_with_options() {
        let mut qc = Circuit::new(3, 1);
        qc.h(2).measure(2, 0);
        let circuit = serde_json::to_string(&qc).expect("string");
        let body = format!(
            "{{\"tenant\":\"alice\",\"shots\":64,\"seed\":9,\"deadline_ms\":250,\"circuit\":{circuit}}}"
        );
        let job = parse_job(body.as_bytes()).expect("valid job");
        assert_eq!(job.tenant, "alice");
        assert_eq!(job.seed, 9);
        assert_eq!(job.deadline_ms, Some(250));
        assert_eq!(job.circuit, qc);
    }

    #[test]
    fn rejects_malformed_json_and_bad_fields() {
        assert!(parse_job(b"{not json").is_err());
        assert!(parse_job(b"[]").is_err());
        assert!(
            parse_job(b"{\"qasm\":\"OPENQASM 3.0;\\nqubit[1] q;\\nh q[0];\"}")
                .expect_err("shots required")
                .message
                .contains("shots")
        );
        assert!(parse_job(b"{\"shots\":0,\"qasm\":\"x\"}").is_err());
        assert!(parse_job(b"{\"shots\":1.5,\"qasm\":\"x\"}").is_err());
        assert!(parse_job(b"{\"shots\":1}")
            .expect_err("circuit required")
            .message
            .contains("qasm"));
    }

    #[test]
    fn qasm_errors_carry_position() {
        let err =
            parse_job(b"{\"shots\":1,\"qasm\":\"OPENQASM 3.0;\\nqubit[1] q;\\nbogus q[0];\"}")
                .expect_err("bad gate");
        assert!(err.message.contains("line 3"), "got: {}", err.message);
    }

    #[test]
    fn rejects_out_of_range_native_indices() {
        // Hand-built JSON sidesteps Circuit::push's assertions: the
        // schema validator must catch it instead.
        let mut qc = Circuit::new(2, 1);
        qc.h(0);
        let mut v = qc.to_value();
        if let serde::Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "num_qubits" {
                    *val = serde::Value::Num(1.0);
                }
            }
        }
        let body = format!(
            "{{\"shots\":4,\"circuit\":{}}}",
            serde_json::to_string(&Raw(v)).expect("string")
        );
        // h on qubit 0 is fine for 1 qubit; make it out of range too.
        let bad = body.replace("\"qubits\":[0]", "\"qubits\":[5]");
        let err = parse_job(bad.as_bytes()).expect_err("index out of range");
        assert!(err.message.contains("out of range"), "got: {}", err.message);
    }

    #[test]
    fn counts_pieces_concatenate_to_valid_json() {
        let mut counts = BTreeMap::new();
        counts.insert(0b00u64, 5usize);
        counts.insert(0b01u64, 7);
        counts.insert(0b10u64, 2);
        let result = RunResult {
            shots: 14,
            num_clbits: 2,
            counts,
        };
        let pieces = counts_pieces(&result, 2);
        assert!(pieces.len() >= 3, "opening + >=1 entries + closing");
        let whole: String = pieces.concat();
        assert_eq!(
            whole,
            "{\"shots\":14,\"num_clbits\":2,\"counts\":{\"00\":5,\"01\":7,\"10\":2}}"
        );
        let parsed = serde_json::parse_value(&whole).expect("valid JSON");
        assert_eq!(parsed.get("shots").as_f64(), Some(14.0));
    }

    #[test]
    fn error_json_escapes() {
        let body = error_json("bad \"quote\"");
        assert!(serde_json::parse_value(&body).is_ok());
    }
}

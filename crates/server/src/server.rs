//! The daemon: acceptor, fixed worker pool, routing, and the
//! admission/execution path from HTTP request to session job.

use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::quota::{Admission, QuotaConfig, QuotaRegistry};
use crate::schema::{self, JobRequest, Raw};
use ca_circuit::{schedule_asap, GateDurations};
use ca_device::Device;
use ca_sim::session::{Job, JobOutput, Session};
use ca_sim::{Engine, NoiseConfig, SimError, Simulator};
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tunables. The defaults suit an interactive local daemon;
/// the integration tests shrink them to force each rejection path.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Handler threads draining the connection queue.
    pub workers: usize,
    /// Connections queued ahead of the workers before the acceptor
    /// answers `429` (the backpressure bound).
    pub queue_capacity: usize,
    /// Request head size cap in bytes.
    pub max_header_bytes: usize,
    /// Request body size cap in bytes.
    pub max_body_bytes: usize,
    /// Hard per-job shot cap (`400` above it).
    pub max_shots_per_job: usize,
    /// Per-tenant token-bucket parameters.
    pub quota: QuotaConfig,
    /// Plan-cache capacity for each tenant's session.
    pub cache_capacity: usize,
    /// Count-map entries per streamed chunk; maps larger than one
    /// chunk stream with `Transfer-Encoding: chunked`.
    pub chunk_entries: usize,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            max_shots_per_job: 10_000_000,
            quota: QuotaConfig::default(),
            cache_capacity: 64,
            chunk_entries: 256,
            io_timeout: Duration::from_secs(10),
        }
    }
}

struct Shared {
    device: Device,
    noise: NoiseConfig,
    config: ServerConfig,
    sessions: Mutex<BTreeMap<String, Arc<Session>>>,
    quotas: QuotaRegistry,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the acceptor and
    /// worker threads. Jobs execute against clones of `device` under
    /// `noise`, one [`Session`] per tenant.
    pub fn bind(
        addr: impl ToSocketAddrs,
        device: Device,
        noise: NoiseConfig,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        // Metrics feed `/stats`; summary level costs one atomic load
        // per site and never perturbs results.
        ca_obs::enable_summary_if_off();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            device,
            noise,
            quotas: QuotaRegistry::new(config.quota),
            config,
            sessions: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServerHandle {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server. Dropping the handle leaves the threads running;
/// call [`shutdown`](ServerHandle::shutdown) for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the acceptor exits (i.e. until another thread
    /// calls nothing — the daemon runs until killed — or shutdown).
    pub fn wait(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let mut queue = crate::lock_recover(&shared.queue);
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            ca_obs::counter_add("server.rejected_queue_full", 1);
            reject_overloaded(stream, shared);
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.ready.notify_one();
    }
    // Drain: wake workers so they observe shutdown.
    shared.ready.notify_all();
}

/// Answers `429` on the acceptor thread — a bounded, small write so a
/// slow client cannot stall accept for long.
fn reject_overloaded(mut stream: TcpStream, shared: &Shared) {
    let bound = shared.config.io_timeout.min(Duration::from_secs(1));
    let _ = stream.set_write_timeout(Some(bound));
    // Drain what the client already sent: closing with unread bytes
    // provokes a TCP reset that can discard the 429 in flight.
    let _ = stream.set_read_timeout(Some(bound));
    let mut sink = [0u8; 4096];
    let _ = std::io::Read::read(&mut stream, &mut sink);
    let body = schema::error_json("server overloaded: connection queue full");
    let _ = http::respond(
        &mut stream,
        429,
        &[("Retry-After", "1".to_string())],
        "application/json",
        body.as_bytes(),
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = crate::lock_recover(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = match shared.ready.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        handle_connection(stream, shared);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _span = ca_obs::span("server", "request");
    ca_obs::counter_add("server.requests", 1);
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let request = match http::read_request(
        &mut stream,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
    ) {
        Ok(request) => request,
        Err(err) => {
            let (status, message) = match err {
                HttpError::PayloadTooLarge => (413, "request too large".to_string()),
                HttpError::BadRequest(m) => (400, m),
                HttpError::Io(e) => {
                    // Nothing readable arrived; there may be nobody to
                    // answer either.
                    ca_obs::counter_add("server.io_errors", 1);
                    let _ = respond_error(&mut stream, 400, &format!("read failed: {e}"));
                    return;
                }
            };
            ca_obs::counter_add("server.bad_requests", 1);
            let _ = respond_error(&mut stream, status, &message);
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::respond(
                &mut stream,
                200,
                &[],
                "application/json",
                b"{\"status\":\"ok\"}",
            );
        }
        ("GET", "/stats") => {
            let body = stats_json(shared);
            let _ = http::respond(&mut stream, 200, &[], "application/json", body.as_bytes());
        }
        ("POST", "/v1/jobs") => handle_job(&mut stream, &request, shared),
        (_, "/healthz" | "/stats" | "/v1/jobs") => {
            let _ = respond_error(&mut stream, 405, "method not allowed");
        }
        _ => {
            let _ = respond_error(&mut stream, 404, "no such endpoint");
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let body = schema::error_json(message);
    http::respond(stream, status, &[], "application/json", body.as_bytes())
}

fn handle_job(stream: &mut TcpStream, request: &Request, shared: &Shared) {
    let job = match schema::parse_job(&request.body) {
        Ok(job) => job,
        Err(err) => {
            ca_obs::counter_add("server.bad_requests", 1);
            let _ = respond_error(stream, 400, &err.message);
            return;
        }
    };

    // Admission: device fit, shot cap, then the tenant's bucket.
    let device_qubits = shared.device.num_qubits();
    if job.circuit.num_qubits > device_qubits {
        let _ = respond_error(
            stream,
            400,
            &format!(
                "circuit uses {} qubits but the device has {device_qubits}",
                job.circuit.num_qubits
            ),
        );
        return;
    }
    if job.shots > shared.config.max_shots_per_job {
        let _ = respond_error(
            stream,
            400,
            &format!(
                "shots {} exceed the per-job cap {}",
                job.shots, shared.config.max_shots_per_job
            ),
        );
        return;
    }
    match shared.quotas.try_admit(&job.tenant, job.shots) {
        Admission::Granted => {}
        Admission::Denied { retry_after_ms } => {
            ca_obs::counter_add("server.rejected_quota", 1);
            let retry_s = retry_after_ms.div_ceil(1000).max(1);
            let body = schema::error_json(&format!(
                "shot quota exhausted for tenant `{}`; retry in ~{retry_after_ms}ms",
                job.tenant
            ));
            let _ = http::respond(
                stream,
                429,
                &[("Retry-After", retry_s.to_string())],
                "application/json",
                body.as_bytes(),
            );
            return;
        }
    }

    let session = tenant_session(shared, &job.tenant);
    match run_job(&session, &job) {
        Ok(JobOutput::Counts(result)) => {
            ca_obs::counter_add("server.jobs_ok", 1);
            let pieces = schema::counts_pieces(&result, shared.config.chunk_entries);
            // Head + one entry piece + closer fits a fixed response;
            // anything larger streams chunk by chunk.
            if pieces.len() <= 3 {
                let _ = http::respond(
                    stream,
                    200,
                    &[],
                    "application/json",
                    pieces.concat().as_bytes(),
                );
            } else {
                ca_obs::counter_add("server.chunked_responses", 1);
                let _ = stream_pieces(stream, &pieces);
            }
        }
        Ok(other) => {
            // Count jobs are the only kind the schema can express.
            ca_obs::counter_add("server.internal_errors", 1);
            let _ = respond_error(stream, 500, &format!("unexpected job output {other:?}"));
        }
        Err(err) => {
            let (status, counter) = match &err {
                SimError::DeadlineExceeded | SimError::Cancelled => (408, "server.jobs_deadline"),
                SimError::JobPanicked { .. } => (500, "server.jobs_panicked"),
                _ => (422, "server.jobs_rejected"),
            };
            ca_obs::counter_add(counter, 1);
            let _ = respond_error(stream, status, &format!("job failed: {err}"));
        }
    }
}

/// The tenant's session, created on first use.
fn tenant_session(shared: &Shared, tenant: &str) -> Arc<Session> {
    let mut sessions = crate::lock_recover(&shared.sessions);
    if let Some(session) = sessions.get(tenant) {
        return session.clone();
    }
    let sim = Simulator::with_engine(shared.device.clone(), shared.noise, Engine::Auto);
    let session = Arc::new(Session::with_capacity(sim, shared.config.cache_capacity));
    sessions.insert(tenant.to_string(), session.clone());
    session
}

fn run_job(session: &Session, job: &JobRequest) -> Result<JobOutput, SimError> {
    let _span = ca_obs::span("server", "job").with_arg("shots", job.shots as f64);
    let sc = schedule_asap(&job.circuit, GateDurations::default());
    let mut sim_job = Job::counts(sc, job.shots, job.seed);
    if let Some(ms) = job.deadline_ms {
        sim_job = sim_job.with_deadline(Duration::from_millis(ms));
    }
    session.run(&sim_job)
}

fn stream_pieces(stream: &mut TcpStream, pieces: &[String]) -> std::io::Result<()> {
    let mut writer = ChunkedWriter::start(stream, "application/json")?;
    for piece in pieces {
        writer.chunk(piece.as_bytes())?;
    }
    writer.finish()
}

/// The `/stats` document: queue depth, per-tenant cache stats and
/// remaining quota, and the `ca-obs` counters/gauges plus latency
/// percentiles for the server's own histograms.
fn stats_json(shared: &Shared) -> String {
    let queue_depth = crate::lock_recover(&shared.queue).len();
    let tenants: Vec<(String, Value)> = {
        let sessions = crate::lock_recover(&shared.sessions);
        sessions
            .iter()
            .map(|(tenant, session)| {
                let stats = session.cache_stats();
                (
                    tenant.clone(),
                    Value::Obj(vec![
                        ("cache_hits".into(), Value::Num(stats.hits as f64)),
                        ("cache_misses".into(), Value::Num(stats.misses as f64)),
                        ("cache_evictions".into(), Value::Num(stats.evictions as f64)),
                        (
                            "cache_verify_mismatches".into(),
                            Value::Num(stats.verify_mismatches as f64),
                        ),
                        ("cache_len".into(), Value::Num(stats.len as f64)),
                        ("cache_hit_rate".into(), Value::Num(stats.hit_rate())),
                        (
                            "quota_shots_available".into(),
                            Value::Num(shared.quotas.available(tenant)),
                        ),
                    ]),
                )
            })
            .collect()
    };
    let snapshot = ca_obs::snapshot();
    let counters: Vec<(String, Value)> = snapshot
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Value::Num(*v as f64)))
        .collect();
    let gauges: Vec<(String, Value)> = snapshot
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), Value::Num(*v)))
        .collect();
    let latencies: Vec<(String, Value)> = snapshot
        .histograms
        .iter()
        .map(|(key, h)| {
            (
                key.clone(),
                Value::Obj(vec![
                    ("count".into(), Value::Num(h.count() as f64)),
                    ("p50_us".into(), Value::Num(h.p50() as f64 / 1000.0)),
                    ("p95_us".into(), Value::Num(h.p95() as f64 / 1000.0)),
                    ("p99_us".into(), Value::Num(h.p99() as f64 / 1000.0)),
                ]),
            )
        })
        .collect();
    let doc = Value::Obj(vec![
        ("queue_depth".into(), Value::Num(queue_depth as f64)),
        (
            "queue_capacity".into(),
            Value::Num(shared.config.queue_capacity as f64),
        ),
        ("workers".into(), Value::Num(shared.config.workers as f64)),
        ("tenants".into(), Value::Obj(tenants)),
        ("counters".into(), Value::Obj(counters)),
        ("gauges".into(), Value::Obj(gauges)),
        ("latencies".into(), Value::Obj(latencies)),
    ]);
    serde_json::to_string(&Raw(doc)).unwrap_or_else(|_| "{}".to_string())
}

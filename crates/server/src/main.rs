//! `ca-serverd` — the simulation daemon.
//!
//! ```text
//! ca-serverd [--addr HOST:PORT] [--qubits N | --eagle] [--workers W]
//!            [--queue N] [--cache N] [--shots-per-sec R] [--burst B]
//!            [--max-shots N]
//! ```
//!
//! Binds the HTTP front-end over a uniform line device of `--qubits`
//! qubits (default 16) or the 127-qubit Eagle-like preset, then
//! serves until killed. See `ca_server` crate docs for the API.

#![forbid(unsafe_code)]

use ca_device::{eagle_like, uniform_device, Topology};
use ca_server::{Server, ServerConfig};
use ca_sim::NoiseConfig;

fn main() {
    match run() {
        Ok(()) => {}
        Err(message) => {
            eprintln!("ca-serverd: {message}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:8787".to_string();
    let mut qubits = 16usize;
    let mut eagle = false;
    let mut config = ServerConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => addr = take(&mut i)?,
            "--qubits" => qubits = parse(&take(&mut i)?, flag)?,
            "--eagle" => eagle = true,
            "--workers" => config.workers = parse(&take(&mut i)?, flag)?,
            "--queue" => config.queue_capacity = parse(&take(&mut i)?, flag)?,
            "--cache" => config.cache_capacity = parse(&take(&mut i)?, flag)?,
            "--shots-per-sec" => config.quota.shots_per_sec = parse(&take(&mut i)?, flag)?,
            "--burst" => config.quota.burst_shots = parse(&take(&mut i)?, flag)?,
            "--max-shots" => config.max_shots_per_job = parse(&take(&mut i)?, flag)?,
            "--help" | "-h" => {
                println!(
                    "ca-serverd [--addr HOST:PORT] [--qubits N | --eagle] [--workers W] \
                     [--queue N] [--cache N] [--shots-per-sec R] [--burst B] [--max-shots N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let device = if eagle {
        eagle_like(7)
    } else {
        uniform_device(Topology::line(qubits.max(1)), 60.0)
    };
    let n = device.num_qubits();
    let mut handle = Server::bind(&addr, device, NoiseConfig::default(), config)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "ca-serverd listening on http://{} ({n} qubits); POST /v1/jobs, GET /stats, GET /healthz",
        handle.addr()
    );
    handle.wait();
    Ok(())
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value `{value}` for {flag}"))
}

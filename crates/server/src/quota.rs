//! Per-tenant admission control: token buckets denominated in shots.
//!
//! Every tenant owns one bucket holding up to `burst_shots` tokens,
//! refilled continuously at `shots_per_sec`. A job is admitted only
//! if the bucket covers its full shot count — so one tenant spraying
//! million-shot jobs throttles itself, not its neighbours. Time comes
//! from [`ca_obs::monotonic_ns`], the workspace's sanctioned clock,
//! and feeds nothing but admission (results stay deterministic).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Bucket parameters shared by every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Sustained refill rate.
    pub shots_per_sec: f64,
    /// Bucket capacity (instantaneous burst).
    pub burst_shots: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            shots_per_sec: 1_000_000.0,
            burst_shots: 4_000_000.0,
        }
    }
}

/// The outcome of an admission check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// Tokens deducted; run the job.
    Granted,
    /// Bucket exhausted; retry after roughly this long.
    Denied {
        /// Milliseconds until the bucket covers the request (rounded
        /// up, at least 1).
        retry_after_ms: u64,
    },
}

struct Bucket {
    available: f64,
    last_ns: u64,
}

/// All tenants' buckets.
pub struct QuotaRegistry {
    config: QuotaConfig,
    buckets: Mutex<BTreeMap<String, Bucket>>,
}

impl QuotaRegistry {
    /// An empty registry; buckets are created full on first use.
    pub fn new(config: QuotaConfig) -> Self {
        QuotaRegistry {
            config,
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Admits or denies `shots` for `tenant`, deducting on success.
    pub fn try_admit(&self, tenant: &str, shots: usize) -> Admission {
        self.admit_at(tenant, shots, ca_obs::monotonic_ns())
    }

    /// [`try_admit`](Self::try_admit) with an explicit clock, for
    /// deterministic tests.
    pub fn admit_at(&self, tenant: &str, shots: usize, now_ns: u64) -> Admission {
        let cost = shots as f64;
        let mut buckets = crate::lock_recover(&self.buckets);
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            available: self.config.burst_shots,
            last_ns: now_ns,
        });
        let elapsed_s = now_ns.saturating_sub(bucket.last_ns) as f64 * 1e-9;
        bucket.available =
            (bucket.available + elapsed_s * self.config.shots_per_sec).min(self.config.burst_shots);
        bucket.last_ns = now_ns;
        if cost <= bucket.available {
            bucket.available -= cost;
            Admission::Granted
        } else {
            let deficit = cost - bucket.available;
            let secs = if self.config.shots_per_sec > 0.0 {
                deficit / self.config.shots_per_sec
            } else {
                // No refill: signal a long, finite backoff.
                3600.0
            };
            Admission::Denied {
                retry_after_ms: (secs * 1000.0).ceil().max(1.0) as u64,
            }
        }
    }

    /// Tokens currently available to `tenant` (full bucket when the
    /// tenant has never submitted). Surfaced by `/stats`.
    pub fn available(&self, tenant: &str) -> f64 {
        let buckets = crate::lock_recover(&self.buckets);
        buckets
            .get(tenant)
            .map_or(self.config.burst_shots, |b| b.available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(rate: f64, burst: f64) -> QuotaRegistry {
        QuotaRegistry::new(QuotaConfig {
            shots_per_sec: rate,
            burst_shots: burst,
        })
    }

    #[test]
    fn fresh_bucket_grants_up_to_burst() {
        let q = registry(100.0, 1000.0);
        assert_eq!(q.admit_at("t", 1000, 0), Admission::Granted);
        assert!(matches!(q.admit_at("t", 1, 0), Admission::Denied { .. }));
    }

    #[test]
    fn refill_restores_tokens() {
        let q = registry(100.0, 1000.0);
        assert_eq!(q.admit_at("t", 1000, 0), Admission::Granted);
        // 5 seconds at 100 shots/s -> 500 tokens.
        assert_eq!(q.admit_at("t", 500, 5_000_000_000), Admission::Granted);
        assert!(matches!(
            q.admit_at("t", 1, 5_000_000_000),
            Admission::Denied { .. }
        ));
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = registry(100.0, 1000.0);
        assert_eq!(q.admit_at("t", 1000, 0), Admission::Granted);
        // A year later the bucket holds `burst`, not rate x elapsed.
        let year_ns = 31_536_000_000_000_000;
        assert_eq!(q.admit_at("t", 1000, year_ns), Admission::Granted);
        assert!(matches!(
            q.admit_at("t", 1, year_ns),
            Admission::Denied { .. }
        ));
    }

    #[test]
    fn denial_reports_retry_hint() {
        let q = registry(1000.0, 1000.0);
        assert_eq!(q.admit_at("t", 1000, 0), Admission::Granted);
        match q.admit_at("t", 500, 0) {
            Admission::Denied { retry_after_ms } => assert_eq!(retry_after_ms, 500),
            other => panic!("expected denial, got {other:?}"),
        }
    }

    #[test]
    fn tenants_are_isolated() {
        let q = registry(100.0, 1000.0);
        assert_eq!(q.admit_at("a", 1000, 0), Admission::Granted);
        assert_eq!(q.admit_at("b", 1000, 0), Admission::Granted);
        assert!(q.available("a") < 1.0);
        assert!((q.available("never-seen") - 1000.0).abs() < 1e-9);
    }
}

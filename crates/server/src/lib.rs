//! Simulation-as-a-service front-end over the `ca-sim` session layer.
//!
//! A hand-rolled HTTP/1.1 daemon on `std::net` — the container is
//! offline, so no tokio/hyper; the protocol layer is vendored in the
//! same spirit as `crates/shims`. The server accepts JSON jobs
//! carrying either an OpenQASM 3 circuit (via [`ca_circuit::parse`])
//! or the native instruction schema, and executes them through
//! per-tenant [`ca_sim::Session`]s so each tenant gets its own
//! verified LRU plan cache.
//!
//! Operational contract:
//!
//! * **Fixed thread pool** — one acceptor plus `workers` handler
//!   threads draining a bounded connection queue
//!   (`Mutex<VecDeque> + Condvar`). When the queue is full the
//!   acceptor answers `429 Too Many Requests` immediately
//!   (backpressure, never unbounded buffering).
//! * **Admission** — per-tenant token buckets denominated in *shots*
//!   ([`quota`]): a job is admitted only if the tenant's bucket
//!   covers its shot count, otherwise `429` with a `Retry-After`
//!   hint. Oversized jobs and bodies are rejected up front
//!   (`400`/`413`).
//! * **Deadlines & cancellation** — a job's `deadline_ms` arms a
//!   [`ca_sim::CancelToken`] through [`ca_sim::session::Job::with_deadline`];
//!   expiry surfaces as `408` with a structured error, and the worker
//!   is freed at the next shot-chunk boundary rather than pinned.
//! * **Streaming** — large count maps stream back with
//!   `Transfer-Encoding: chunked` so a 127-qubit result never
//!   materialises twice in memory.
//! * **Determinism** — results are produced by the session layer and
//!   inherit its bit-identity guarantees; the server adds no RNG and
//!   reads the clock only through `ca_obs::monotonic_ns`.
//!
//! `GET /stats` surfaces per-tenant [`ca_sim::session::CacheStats`]
//! plus the `ca-obs` counters/histograms, `GET /healthz` is a
//! liveness probe, and `POST /v1/jobs` runs a job. The `ca-serverd`
//! bin wires this up behind a CLI; `cargo bench -p ca-bench --bench
//! serve` drives it with the load generator that writes
//! `BENCH_serve.json`.

#![forbid(unsafe_code)]

pub mod http;
pub mod quota;
pub mod schema;
pub mod server;

pub use quota::{Admission, QuotaConfig, QuotaRegistry};
pub use schema::{parse_job, JobRequest, SchemaError};
pub use server::{Server, ServerConfig, ServerHandle};

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: a handler that panicked
/// while holding a server lock must not take the whole daemon down,
/// and every structure guarded here (connection queue, session map,
/// quota buckets) stays internally consistent across unwinds.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

//! Fig. 3(c–f): Ramsey characterization of the four error contexts.

use ca_experiments::ramsey::{all_cases, RamseyConfig};

fn main() {
    ca_bench::header(
        "Fig. 3 (c-f)",
        "aligned DD cannot remove idle-pair ZZ; EC/staggered DD recover; \
         spectator Z absorbed or decoupled; case IV fixed only by EC",
    );
    let config = RamseyConfig::full();
    for fig in all_cases(&config) {
        fig.print();
        println!();
    }
}

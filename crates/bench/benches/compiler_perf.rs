//! Compiler-performance bench: empirical scaling of the CA-DD and
//! CA-EC passes with circuit depth `d` and device size `n` (the paper
//! states O(d²n) for CA-DD and O(dn) for CA-EC).

use ca_circuit::Circuit;
use ca_core::strategies::{CaDdPass, CaEcPass};
use ca_core::{CaDdConfig, CaEcConfig, Context, PassManager};
use ca_device::{uniform_device, Topology};
use std::time::Instant;

fn workload(n: usize, d: usize) -> Circuit {
    let mut qc = Circuit::new(n, 0);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier(Vec::<usize>::new());
    for step in 0..d {
        // Alternating brickwork with idles at the boundary.
        let offset = step % 2;
        let mut q = offset;
        while q + 1 < n {
            qc.ecr(q, q + 1);
            q += 2;
        }
        qc.barrier(Vec::<usize>::new());
        for q in 0..n {
            qc.delay(500.0, q);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc
}

fn time_pass(make: impl Fn() -> PassManager, n: usize, d: usize, reps: usize) -> f64 {
    let dev = uniform_device(Topology::line(n), 60.0);
    let qc = workload(n, d);
    let start = Instant::now();
    for rep in 0..reps {
        let pm = make();
        let mut ctx = Context::new(&dev, rep as u64);
        let _ = pm.compile(&qc, &mut ctx);
    }
    start.elapsed().as_secs_f64() / reps as f64 * 1000.0
}

fn main() {
    ca_bench::header(
        "Compiler performance",
        "CA-DD scales O(d^2 n), CA-EC O(d n) with depth d and qubits n",
    );
    let cadd = || {
        let mut pm = PassManager::new();
        pm.push(CaDdPass {
            config: CaDdConfig::default(),
        });
        pm
    };
    let caec = || {
        let mut pm = PassManager::new();
        pm.push(CaEcPass {
            config: CaEcConfig::default(),
        });
        pm
    };
    println!(
        "{:>6} {:>6} {:>14} {:>14}",
        "n", "d", "CA-DD (ms)", "CA-EC (ms)"
    );
    for &(n, d) in &[
        (6usize, 8usize),
        (6, 16),
        (6, 32),
        (12, 8),
        (12, 16),
        (12, 32),
        (24, 16),
        (48, 16),
    ] {
        let t_dd = time_pass(cadd, n, d, 3);
        let t_ec = time_pass(caec, n, d, 3);
        println!("{n:>6} {d:>6} {t_dd:>14.2} {t_ec:>14.2}");
    }
}

//! PEC bench: the mitigation consequence of Fig. 8.
//!
//! Learns the per-layer Pauli channel of the sparse 10-qubit layer
//! under the four paper strategies plus CA-EC+DD, inverts it, and
//! prints the learned γ trajectory next to the paper's `γ = LF^{−2}`
//! numbers — asserting the robust ordering bare ≫ DD > {CA-DD,
//! CA-EC} (the two context-aware strategies sit at statistical
//! parity; see `ca_experiments::pec`) with CA-EC+DD at or near the
//! bottom. Then runs the full
//! learn → invert → sample → mitigate pipeline at 127 qubits on the
//! frame-batch engine (one cached plan for every sampled PEC
//! instance) and asserts the mitigated observable lands closer to
//! the ideal value than the unmitigated one at equal shots.
//!
//! Pass `--smoke` for the CI-sized run (smaller budgets, no
//! `BENCH_pec.json` write).

use ca_bench::Raw;
use ca_experiments::pec::{fig_pec_gamma, pec_demo_127, PecDemoResult, PecGammaResult};
use ca_experiments::Budget;
use serde::{Serialize, Value};
use std::time::Instant;

fn gamma_row(r: &PecGammaResult) -> Value {
    Value::Obj(vec![
        ("label".into(), r.label.to_value()),
        ("engine".into(), r.engine.to_value()),
        ("lf".into(), r.lf.to_value()),
        // When `invertible` is false, `gamma_learned` is only the
        // clamped lower bound at the invertibility floor.
        ("gamma_learned".into(), r.gamma_learned.to_value()),
        ("gamma_formula".into(), r.gamma_formula.to_value()),
        ("invertible".into(), r.invertible.to_value()),
    ])
}

fn demo_row(d: &PecDemoResult) -> Value {
    Value::Obj(vec![
        ("label".into(), d.label.to_value()),
        ("depth".into(), d.depth.to_value()),
        ("shots".into(), d.shots.to_value()),
        ("gamma_layer".into(), d.gamma_layer.to_value()),
        ("gamma_total".into(), d.gamma_total.to_value()),
        ("raw".into(), d.raw.to_value()),
        ("raw_err".into(), d.raw_err.to_value()),
        ("mitigated".into(), d.mitigated.to_value()),
        ("mitigated_err".into(), d.mitigated_err.to_value()),
        ("ideal".into(), d.ideal.to_value()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    ca_bench::obs::init();
    ca_bench::header(
        "pec",
        "learned-channel PEC: γ 2.38 → 1.81 → 1.48 → 1.29 (bare → DD → CA-DD → CA-EC); \
         mitigated observable lands on ideal at γ-amplified error bars",
    );

    // The dense-engine strategies (CA-EC variants) need several twirl
    // instances per point: a single fixed twirl leaves coherent
    // residuals un-averaged and blurs the CA-DD vs CA-EC+DD gap.
    let budget = Budget {
        trajectories: if smoke { 192 } else { 512 },
        instances: if smoke { 4 } else { 8 },
        seed: 11,
    };
    let depths: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let gamma_base = ca_bench::obs::snapshot();
    let start = Instant::now();
    let (fig, results) = fig_pec_gamma(depths, &budget).expect("learn the γ trajectory");
    let gamma_s = start.elapsed().as_secs_f64();
    let gamma_phases = ca_bench::obs::phase_breakdown(&gamma_base);
    fig.print();
    println!(
        "{:>10} {:>12} {:>8} {:>14} {:>14}",
        "strategy", "engine", "LF", "γ (learned)", "γ = LF^-2"
    );
    for r in &results {
        println!(
            "{:>10} {:>12} {:>8.4} {:>14.3} {:>14.3}",
            r.label, r.engine, r.lf, r.gamma_learned, r.gamma_formula
        );
    }
    println!("  learned in {gamma_s:.2}s");
    // The phase breakdown must genuinely explain the learn wall
    // clock: the CA-EC strategies run their points on the dense
    // engine, whose per-shot work the engine's own phase timer
    // attributes to sampling/propagation — before the recording was
    // refreshed, the recorded phases summed to well under 1% of the
    // learn wall and the breakdown was decorative. Smoke runs are
    // too short for the ratio to be stable.
    {
        let attributed: f64 = match &gamma_phases {
            serde::Value::Obj(fields) => {
                fields.iter().map(|(_, v)| v.as_f64().unwrap_or(0.0)).sum()
            }
            _ => 0.0,
        };
        let coverage = attributed / gamma_s.max(1e-9);
        println!(
            "  phase attribution: {:.1}% of learn wall",
            coverage * 100.0
        );
        if !smoke {
            assert!(
                coverage >= 0.9,
                "learn phase breakdown accounts for only {:.1}% of the \
                 {gamma_s:.2}s learn wall — a phase has gone unattributed",
                coverage * 100.0
            );
        }
    }
    // The acceptance ordering — context-aware compiling makes the
    // channel cheaper to cancel at every step: bare ≫ DD, both CA
    // strategies beat DD by a clear margin and sit at statistical
    // parity with each other, and the combined CA-EC+DD lands at or
    // near the bottom.
    let (bare, dd, ca_dd, ca_ec, combined) = (
        results[0].gamma_learned,
        results[1].gamma_learned,
        results[2].gamma_learned,
        results[3].gamma_learned,
        results[4].gamma_learned,
    );
    assert!(bare > 2.0 * dd, "bare {bare:.3} must dwarf DD {dd:.3}");
    assert!(dd > ca_dd, "DD {dd:.3} must exceed CA-DD {ca_dd:.3}");
    assert!(dd > ca_ec, "DD {dd:.3} must exceed CA-EC {ca_ec:.3}");
    assert!(
        (ca_dd - ca_ec).abs() < 0.5 * (dd - ca_dd.min(ca_ec)),
        "CA-DD {ca_dd:.3} and CA-EC {ca_ec:.3} must sit at parity (DD {dd:.3})"
    );
    assert!(
        combined <= ca_dd.min(ca_ec) + 0.02,
        "CA-EC+DD {combined:.3} must land at/near the minimum of CA-DD/CA-EC"
    );

    // Full-pipeline demo at 127 qubits: CA-DD layer, first gate pair
    // observable, support-restricted inverse.
    println!();
    println!("-- 127-qubit PEC demo (frame-batch engine, one cached plan) --");
    let demo_budget = Budget {
        trajectories: if smoke { 192 } else { 512 },
        instances: 1,
        seed: 11,
    };
    let shots = if smoke { 4096 } else { 16384 };
    let demo_base = ca_bench::obs::snapshot();
    let start = Instant::now();
    let demo = pec_demo_127(4, &[1, 2, 4], &demo_budget, shots).expect("run the 127q demo");
    let demo_s = start.elapsed().as_secs_f64();
    let demo_phases = ca_bench::obs::phase_breakdown(&demo_base);
    println!(
        "  γ_layer {:.3} γ_total(depth {}) {:.3}",
        demo.gamma_layer, demo.depth, demo.gamma_total
    );
    println!(
        "  raw       {:+.4} ± {:.4}   (ideal {:+.1})",
        demo.raw, demo.raw_err, demo.ideal
    );
    println!(
        "  mitigated {:+.4} ± {:.4}   [{} shots, {demo_s:.2}s]",
        demo.mitigated, demo.mitigated_err, demo.shots
    );
    assert!(
        (demo.mitigated - demo.ideal).abs() < (demo.raw - demo.ideal).abs(),
        "PEC must move the estimate toward ideal: mitigated {} raw {}",
        demo.mitigated,
        demo.raw
    );

    if smoke {
        println!("  smoke run: BENCH_pec.json left untouched");
        ca_bench::obs::finish(3);
        return;
    }

    let doc = Value::Obj(vec![
        ("bench".into(), "pec".to_value()),
        ("learn_depths".into(), depths.to_vec().to_value()),
        ("run".into(), ca_bench::obs::run_metadata()),
        ("gamma_seconds".into(), gamma_s.to_value()),
        ("gamma_phases".into(), gamma_phases),
        (
            "strategies".into(),
            Value::Arr(results.iter().map(gamma_row).collect()),
        ),
        ("demo_127".into(), demo_row(&demo)),
        ("demo_seconds".into(), demo_s.to_value()),
        ("demo_phases".into(), demo_phases),
    ]);
    let json = serde_json::to_string_pretty(&Raw(doc)).expect("serialise bench doc");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pec.json");
    std::fs::write(path, json + "\n").expect("write BENCH_pec.json");
    println!("  wrote {path}");
    ca_bench::obs::finish(3);
}

//! Fig. 10: the combined CA-EC+DD strategy.

use ca_experiments::combined::fig10;
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Fig. 10",
        "CA-EC+DD outperforms CA-EC and CA-DD applied individually",
    );
    let depths: Vec<usize> = (1..=6).collect();
    fig10(&depths, &Budget::full()).print();
}

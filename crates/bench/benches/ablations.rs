//! Ablation benches for the design choices called out in DESIGN.md §6.
//!
//! 1. Walsh escalation vs forced 2-coloring on a collision device:
//!    without NNN edges in the crosstalk graph, CA-DD degenerates to
//!    staggered DD and the NNN ZZ survives.
//! 2. CA-EC absorption vs forced explicit insertion: forbidding
//!    absorption costs extra pulse-stretched gates (and their error).
//! 3. Twirl-sign tracking on/off: with sign tracking disabled, the
//!    compensation carries the wrong sign for roughly half the twirl
//!    samples and stops helping.

use ca_circuit::Circuit;
use ca_core::strategies::{CaDdPass, CaEcPass, TwirlPass};
use ca_core::{ca_ec, pauli_twirl, CaDdConfig, CaEcConfig, PassManager};
use ca_device::{CrosstalkGraph, Device};
use ca_experiments::runner::{
    all_zeros_fidelity, all_zeros_fidelity_observables, averaged_expectations_with, Budget,
};
use ca_experiments::secondary::collision_device;
use ca_sim::NoiseConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn collision_ramsey(d: usize) -> Circuit {
    let mut qc = Circuit::new(3, 0);
    qc.h(0).h(1).h(2);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        qc.delay(1000.0, 0).delay(1000.0, 1).delay(1000.0, 2);
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(0).h(1).h(2);
    qc
}

fn walsh_escalation() {
    ca_bench::header(
        "Ablation 1: Walsh escalation",
        "removing NNN edges from the crosstalk graph reverts CA-DD to a \
         2-coloring and the collision ZZ survives",
    );
    let device = collision_device(50.0, 10.0);
    // A device whose *compiler view* omits the NNN edge while the
    // simulator still applies it physically.
    let mut blind = device.clone();
    blind.crosstalk = CrosstalkGraph::build(&blind.topology, &blind.calibration, f64::INFINITY);
    let noise = NoiseConfig {
        decoherence: false,
        charge_parity: false,
        readout_error: false,
        ..NoiseConfig::default()
    };
    let obs = all_zeros_fidelity_observables(3, &[0, 1, 2]);
    let budget = Budget::full();
    let run = |compiler_view: &Device, sim_view: &Device| {
        // Compile against compiler_view, simulate against sim_view.
        let qc = collision_ramsey(12);
        let pm_dev = compiler_view.clone();
        let sim = ca_sim::Simulator::with_config(sim_view.clone(), noise);
        let mut acc = 0.0;
        for inst in 0..budget.instances {
            let seed = budget.seed + inst as u64;
            let mut pm = PassManager::new();
            pm.push(CaDdPass {
                config: CaDdConfig::default(),
            });
            let mut ctx = ca_core::Context::new(&pm_dev, seed);
            let sc = pm.compile(&qc, &mut ctx).expect("compile");
            let vals = sim
                .expect_paulis(&sc, &obs, budget.trajectories, seed ^ 0x33)
                .expect("simulate");
            acc += all_zeros_fidelity(&vals);
        }
        acc / budget.instances as f64
    };
    let aware = run(&device, &device);
    let unaware = run(&blind, &device);
    println!("  CA-DD with NNN edge in graph:    F = {aware:.4}");
    println!("  CA-DD blind to the NNN edge:     F = {unaware:.4}");
    println!("  (aware must exceed blind — the escalation to a third Walsh level matters)");
}

fn absorption_cost() {
    ca_bench::header(
        "Ablation 2: EC absorption",
        "forbidding absorption forces explicit pulse-stretched Rzz gates",
    );
    let device = ca_experiments::heisenberg::heisenberg_device(23);
    let qc = ca_experiments::heisenberg::trotter_circuit(3, (1.0, 1.0, 1.0), 0.2);
    let layered = ca_circuit::stratify(&qc);
    let mut rng = StdRng::seed_from_u64(5);
    let (twirled, _) = pauli_twirl(&layered, &mut rng);
    let (_, with) = ca_ec(&twirled, &device, CaEcConfig::default());
    let (_, without) = ca_ec(
        &twirled,
        &device,
        CaEcConfig {
            forbid_absorption: true,
            ..CaEcConfig::default()
        },
    );
    println!(
        "  default:            absorbed = {:>3}, inserted gates = {:>3}",
        with.absorbed, with.inserted
    );
    println!(
        "  forbid_absorption:  absorbed = {:>3}, inserted gates = {:>3}",
        without.absorbed, without.inserted
    );
    println!("  (absorption converts explicit compensation gates into free angle shifts)");
}

fn twirl_sign_tracking() {
    ca_bench::header(
        "Ablation 3: twirl-sign tracking",
        "without Algorithm 2's commute/anti-commute bookkeeping the \
         compensation sign is wrong for ~half the twirl samples",
    );
    let device = ca_experiments::combined::combined_device();
    let qc = ca_experiments::combined::floquet_circuit(6, 1000.0);
    let noise = NoiseConfig::coherent_only();
    let obs = all_zeros_fidelity_observables(6, &[2, 3]);
    let budget = Budget::full();
    for (label, ignore) in [
        ("with sign tracking", false),
        ("without sign tracking", true),
    ] {
        let vals = averaged_expectations_with(
            &device,
            &noise,
            &qc,
            &obs,
            |_| {
                let mut pm = PassManager::new();
                pm.push(TwirlPass);
                pm.push(CaEcPass {
                    config: CaEcConfig {
                        ignore_twirl_signs: ignore,
                        ..CaEcConfig::default()
                    },
                });
                pm
            },
            &budget,
        );
        println!(
            "  CA-EC {label}: P00 = {:.4}",
            all_zeros_fidelity(&vals.expect("experiment"))
        );
    }
}

fn main() {
    walsh_escalation();
    absorption_cost();
    twirl_sign_tracking();
}

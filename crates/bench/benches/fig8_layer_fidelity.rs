//! Fig. 8: layer fidelity of the sparse 10-qubit layer and PEC γ.

use ca_experiments::layer_fidelity::fig8;
use ca_experiments::Budget;
use ca_metrics::overhead_ratio;

fn main() {
    ca_bench::header(
        "Fig. 8",
        "LF 0.648 (bare) -> 0.743 (DD) -> 0.822 (CA-DD) -> 0.881 (CA-EC); \
         gamma 2.38 -> 1.81 -> 1.48 -> 1.29; x7/x30 overhead reduction at 10 layers",
    );
    let (fig, results) = fig8(
        &[1, 2, 4, 8],
        4,
        &Budget {
            trajectories: 40,
            instances: 3,
            seed: 11,
        },
    );
    fig.print();
    println!("-- measured vs paper --");
    let paper = [
        ("bare", 0.648, 2.38),
        ("DD", 0.743, 1.81),
        ("CA-DD", 0.822, 1.48),
        ("CA-EC", 0.881, 1.29),
    ];
    for r in &results {
        match paper.iter().find(|(l, _, _)| *l == r.label) {
            Some((_, plf, pg)) => println!(
                "  {:>6}: LF {:.3} (paper {:.3})   gamma {:.3} (paper {:.2})",
                r.label, r.lf, plf, r.gamma, pg
            ),
            None => println!("  {:>6}: LF {:.3} gamma {:.3}", r.label, r.lf, r.gamma),
        }
    }
    let get = |l: &str| results.iter().find(|r| r.label == l).map(|r| r.gamma);
    if let (Some(gdd), Some(gcadd), Some(gcaec)) = (get("DD"), get("CA-DD"), get("CA-EC")) {
        println!(
            "  10-layer overhead reduction vs DD: CA-DD {:.1}x (paper ~7x), CA-EC {:.1}x (paper ~30x)",
            overhead_ratio(gdd, gcadd, 10),
            overhead_ratio(gdd, gcaec, 10)
        );
    }
}

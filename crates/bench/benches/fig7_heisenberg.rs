//! Fig. 7: 12-spin Heisenberg ring — dynamics and mitigation overhead.

use ca_experiments::heisenberg::fig7;
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Fig. 7 (c,d)",
        "CA-EC/CA-DD recover the d=4 oscillation (uniform DD does not); \
         mitigation overhead improves >3.5x vs none and >2.75x vs DD",
    );
    let depths: Vec<usize> = (0..=6).collect();
    let result = fig7(
        &depths,
        &Budget {
            trajectories: 120,
            instances: 6,
            seed: 11,
        },
    );
    result.figure.print();
    println!(
        "-- Fig. 7d: estimated sampling overhead at d = {} --",
        depths.last().unwrap()
    );
    let mut base = None;
    let mut dd = None;
    for (label, o) in &result.overhead {
        println!("  {label:>16}: {o:>10.2}");
        if label == "no suppression" {
            base = Some(*o);
        }
        if label == "DD" {
            dd = Some(*o);
        }
    }
    for (label, o) in &result.overhead {
        if label.starts_with("CA-") {
            if let (Some(b), Some(d)) = (base, dd) {
                println!(
                    "  {label} improvement: {:.2}x vs none (paper >3.5x), {:.2}x vs DD (paper >2.75x)",
                    b / o,
                    d / o
                );
            }
        }
    }
}

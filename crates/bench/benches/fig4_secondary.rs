//! Fig. 4: secondary error characterization (Stark, charge parity,
//! NNN Walsh hierarchy).

use ca_experiments::secondary::{fig4_summary, nnn_walsh};
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Fig. 4 (a,b)",
        "~20 kHz Stark shift on spectators of driven qubits; charge-parity \
         beating at nu +/- delta",
    );
    fig4_summary(&Budget::full()).print();
    ca_bench::header(
        "Fig. 4 (c)",
        "NNN collision suppressed progressively: none < aligned < staggered < Walsh",
    );
    let depths: Vec<usize> = (0..=16).step_by(2).collect();
    nnn_walsh(&depths, &Budget::full()).print();
}

//! Fig. 9: CA-EC for dynamic circuits — Bell fidelity vs assumed τ.

use ca_experiments::dynamic::fig9;
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Fig. 9 (c)",
        "bare 9.5% -> 78.1% with CA-EC (>8x); fidelity peaks at the true \
         measurement + feed-forward window",
    );
    let taus: Vec<f64> = (1..=16).map(|k| k as f64 * 500.0).collect();
    fig9(&taus, &Budget::full()).print();
}

//! Engine scaling sweep: qubit count 10 → 127 across all engines.
//!
//! Runs a DD-compiled Clifford layer circuit at increasing device
//! sizes on the statevector engine (while it remains feasible), the
//! serial stabilizer engine, and the bit-parallel frame-batch engine
//! (to full device scale), prints the wall-clock table, and emits a
//! machine-readable `BENCH_scaling.json` at the repository root so
//! the performance trajectory is recorded across PRs.
//!
//! The serial and batch engines are seeded identically, so beyond the
//! timing rows this bench asserts their 127-qubit counts are
//! bit-identical — the batch speedup is free of any statistical
//! caveat.
//!
//! Beyond the engine sweep, the heavy-hex qubit axis pins the
//! scale-past-127 claim: a fixed driven region on Eagle (127q),
//! Osprey (433q), and Condor (1121q) lattices, asserting that wall
//! time grows sub-linearly in device width — engine cost tracks
//! activity, with idle width costing only the per-qubit noise-code
//! floor — and that counts stay bit-identical across worker counts
//! and plan-cache states.
//!
//! Pass `--smoke` for the CI-sized run: a reduced sweep at a small
//! shot count that still exercises the batch-vs-serial identity, the
//! 433-qubit sub-linearity row, and the 127-qubit experiment, without
//! touching `BENCH_scaling.json`.

use ca_bench::Raw;
use ca_circuit::{schedule_asap, Circuit, GateDurations};
use ca_core::{pipeline, CompileOptions, Context, Strategy};
use ca_device::{uniform_device, Topology};
use ca_experiments::large_scale;
use ca_experiments::Budget;
use ca_sim::{Engine, Job, JobOutput, NoiseConfig, RunResult, Session, Simulator};
use serde::{Serialize, Value};
use std::time::Instant;

const SHOTS: usize = 1000;

struct Row {
    engine: &'static str,
    qubits: usize,
    shots: usize,
    seconds: f64,
    shots_per_s: f64,
    /// Per-phase wall-time attribution for this row (sampling /
    /// propagation / reduction / compile seconds), from `ca-obs`.
    phases: Value,
}

impl Row {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("engine".into(), self.engine.to_value()),
            ("qubits".into(), self.qubits.to_value()),
            ("shots".into(), self.shots.to_value()),
            ("seconds".into(), self.seconds.to_value()),
            ("shots_per_s".into(), self.shots_per_s.to_value()),
            ("phases".into(), self.phases.clone()),
        ])
    }
}

/// A DD-compiled brickwork Clifford circuit on a line of `n` qubits.
fn workload(n: usize, seed: u64) -> ca_circuit::ScheduledCircuit {
    let device = uniform_device(Topology::line(n), 60.0);
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier(Vec::<usize>::new());
    for layer in 0..4 {
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            qc.ecr(q, q + 1);
            q += 2;
        }
        qc.barrier(Vec::<usize>::new());
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    let opts = CompileOptions::new(Strategy::CaDd, seed);
    let pm = pipeline(&opts);
    let mut ctx = Context::new(&device, seed);
    pm.compile(&qc, &mut ctx).expect("compile workload")
}

/// A sparse layer-fidelity workload at fixed driven activity on a
/// heavy-hex lattice of any width: 16 pairs spread evenly across the
/// device's sparse LF layer are prepared, driven for two ECR rounds,
/// and read out, while the rest of the lattice sits idle. Scheduled
/// bare (no DD) so the idle width stays honestly idle — the point of
/// the qubit axis is that engine cost tracks the driven region, not
/// the device width, and DD insertion would re-densify the lattice by
/// construction.
fn heavy_hex_workload(device: &ca_device::Device) -> ca_circuit::ScheduledCircuit {
    let n = device.num_qubits();
    let full = large_scale::sparse_device_layer(&device.topology);
    let step = (full.len() / 16).max(1);
    let layer: Vec<(usize, usize)> = full.iter().copied().step_by(step).take(16).collect();
    let driven: Vec<usize> = layer.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut qc = Circuit::new(n, driven.len());
    for &q in &driven {
        qc.h(q);
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..2 {
        for &(c, t) in &layer {
            qc.ecr(c, t);
        }
        qc.barrier(Vec::<usize>::new());
    }
    for (c, &q) in driven.iter().enumerate() {
        qc.measure(q, c);
    }
    schedule_asap(&qc, GateDurations::default())
}

/// The cold-vs-cached comparison: one 127-qubit LF sweep (3
/// strategies × depths × `instances` twirl instances) run three ways
/// over the same seeds — per-point recompilation with caching off,
/// the twirl-ensemble fast path on a cold cache, and a warm rerun
/// against the populated plan cache. Asserts all three produce
/// bit-identical layer fidelities, and returns the wall times.
fn lf_sweep_cold_vs_cached(
    depths: &[usize],
    instances: usize,
    trajectories: usize,
) -> (f64, f64, f64, Vec<(String, f64)>) {
    let device = large_scale::eagle_device(127);
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let strategies = [Strategy::Bare, Strategy::UniformDd, Strategy::CaDd];
    let budget = Budget {
        trajectories,
        instances,
        seed: 11,
    };
    let sweep = |session: &Session, use_ensemble: bool| -> Vec<large_scale::LargeScaleResult> {
        strategies
            .iter()
            .map(|&s| {
                large_scale::measure_large_layer_fidelity_session_with(
                    session,
                    s,
                    depths,
                    &budget,
                    use_ensemble,
                )
            })
            .collect()
    };

    // Per-point recompilation: no plan cache, no ensemble sharing —
    // every (strategy, depth, instance) pays the full pipeline and
    // planner.
    let cold_session = Session::with_capacity(Simulator::with_config(device.clone(), noise), 0);
    let t = Instant::now();
    let cold = sweep(&cold_session, false);
    let cold_s = t.elapsed().as_secs_f64();

    // Twirl-ensemble fast path, cold cache: the pipeline and timeline
    // segmentation run once per (strategy, depth); instances re-dress
    // the merged twirl slots.
    let cached_session = Session::new(Simulator::with_config(device.clone(), noise));
    let t = Instant::now();
    let ensemble = sweep(&cached_session, true);
    let ensemble_s = t.elapsed().as_secs_f64();

    // Warm rerun against the populated cache: every job's compiled
    // artifact is served from the LRU.
    let before_warm = cached_session.cache_stats();
    let t = Instant::now();
    let warm = sweep(&cached_session, true);
    let warm_s = t.elapsed().as_secs_f64();

    // The warm rerun must actually be served by the cache, not merely
    // happen to be fast — the hit-rate counters make that checkable.
    if ca_sim::session::plan_cache_capacity_from_env() > 0 {
        let stats = cached_session.cache_stats();
        let hits = stats.hits - before_warm.hits;
        let misses = stats.misses - before_warm.misses;
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        println!(
            "  warm-run plan cache: {hits} hits / {misses} misses \
             (hit rate {:.1}%, {} evictions, {} verify mismatches)",
            rate * 100.0,
            stats.evictions,
            stats.verify_mismatches
        );
        assert!(
            rate >= 0.9,
            "warm LF sweep must be >= 90% plan-cache hits \
             (got {hits} hits / {misses} misses)"
        );
    }

    for ((c, e), w) in cold.iter().zip(ensemble.iter()).zip(warm.iter()) {
        assert_eq!(
            c.lf, e.lf,
            "{}: ensemble fast path must be bit-identical to per-point recompilation",
            c.label
        );
        assert_eq!(c.lf, w.lf, "{}: cache hits must be bit-identical", c.label);
    }
    let lfs = cold.iter().map(|r| (r.label.clone(), r.lf)).collect();
    (cold_s, ensemble_s, warm_s, lfs)
}

fn time_run(engine: Engine, n: usize, shots: usize) -> (Row, RunResult) {
    let device = uniform_device(Topology::line(n), 60.0);
    let sc = workload(n, 7);
    let sim = Simulator::with_engine(
        device,
        NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        },
        engine,
    );
    let name = sim.engine_name_for(&sc).expect("resolve engine");
    // Best of several full cold runs (compile included): one frame run
    // is a few milliseconds at the top end, so a single sample is
    // hostage to scheduler noise; the minimum is the reproducible
    // cost. The dense engine gets fewer repeats — its runs are long
    // enough that scheduler jitter is already amortised.
    let repeats = if engine == Engine::Statevector { 3 } else { 9 };
    let mut best: Option<(f64, Value, RunResult)> = None;
    for _ in 0..repeats {
        let base = ca_bench::obs::snapshot();
        let start = Instant::now();
        let res = sim.run_counts(&sc, shots, 11).expect("simulate");
        let seconds = start.elapsed().as_secs_f64();
        let phases = ca_bench::obs::phase_breakdown(&base);
        if best.as_ref().is_none_or(|(s, _, _)| seconds < *s) {
            best = Some((seconds, phases, res));
        }
    }
    let (seconds, phases, res) = best.expect("at least one timed run");
    assert_eq!(res.shots, shots);
    (
        Row {
            engine: name,
            qubits: n,
            shots,
            seconds,
            shots_per_s: shots as f64 / seconds.max(1e-9),
            phases,
        },
        res,
    )
}

fn print_row(r: &Row) {
    println!(
        "{:>12} {:>7} {:>7} {:>10.3} {:>12.0}",
        r.engine, r.qubits, r.shots, r.seconds, r.shots_per_s
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shots = if smoke { 192 } else { SHOTS };
    ca_bench::obs::init();
    ca_bench::header(
        "scaling",
        "frame-batch engine packs 64 shots per word on top of the stabilizer \
         engine's 100+ qubit reach; dense engine caps out near 20 qubits",
    );
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:>12} {:>7} {:>7} {:>10} {:>12}",
        "engine", "qubits", "shots", "seconds", "shots/s"
    );
    // The dense sweep is capped at 14 qubits to keep routine bench
    // runs short — at 18 qubits it already needs ~10 minutes for
    // 1000 shots (the recorded BENCH_scaling.json has that point).
    if !smoke {
        for &n in &[10usize, 12, 14] {
            let (r, _) = time_run(Engine::Statevector, n, shots);
            print_row(&r);
            rows.push(r);
        }
    }
    let frame_sizes: &[usize] = if smoke {
        &[18, 127]
    } else {
        &[10, 14, 18, 28, 44, 64, 96, 127]
    };
    let mut serial_127 = None;
    let mut batch_127 = None;
    let mut batch_127_phases = None;
    for &n in frame_sizes {
        let (r, serial_counts) = time_run(Engine::Stabilizer, n, shots);
        print_row(&r);
        let serial_s = r.seconds;
        rows.push(r);
        let (r, batch_counts) = time_run(Engine::FrameBatch, n, shots);
        print_row(&r);
        let batch_s = r.seconds;
        if n == 127 {
            batch_127_phases = Some(r.phases.clone());
        }
        rows.push(r);
        // Same seed ⇒ the two frame engines must agree bit-for-bit.
        assert_eq!(
            serial_counts, batch_counts,
            "frame-batch counts diverge from serial at {n} qubits"
        );
        if n == 127 {
            serial_127 = Some(serial_s);
            batch_127 = Some(batch_s);
        }
    }
    let speedup_127 = serial_127.unwrap() / batch_127.unwrap().max(1e-9);
    println!("  frame-batch vs serial at 127q: {speedup_127:.1}x (bit-identical counts)");
    // Two-pass regression guards at 127q. Phase *shares* are stable
    // across machine speeds where absolute wall times are not:
    // (a) the bit-plane sampler must keep strip propagation
    // subdominant — before the counter-based schedule, replaying 64
    // positional RNG streams serialised the whole strip and
    // propagation-side work dominated the row; (b) the batch engine
    // must beat the serial engine by a wide factor on the same run.
    {
        let phases = batch_127_phases.expect("127q batch row recorded");
        let sampling = phases.get("sampling_seconds").as_f64().unwrap_or(0.0);
        let propagation = phases.get("propagation_seconds").as_f64().unwrap_or(0.0);
        assert!(
            sampling > 0.0 && propagation > 0.0,
            "127q batch row must attribute both engine phases \
             (sampling {sampling:.6}s, propagation {propagation:.6}s)"
        );
        assert!(
            propagation <= sampling,
            "strip propagation ({propagation:.6}s) outweighs sampling \
             ({sampling:.6}s) at 127q — the bit-parallel propagation \
             pass has regressed"
        );
        let floor = if smoke { 2.0 } else { 4.0 };
        assert!(
            speedup_127 >= floor,
            "frame-batch speedup at 127q fell to {speedup_127:.1}x (< {floor}x)"
        );
    }

    // Worker-count scaling curve on the 127-qubit row: strips are
    // independent, so the batch engine fans them out across threads.
    // Counts must be bit-identical at every width (the curve itself
    // is recorded in BENCH_scaling.json; on single-core hosts it is
    // honestly flat).
    println!();
    println!("-- 127q frame-batch worker scaling ({shots} shots) --");
    let worker_curve: Vec<(usize, f64)> = {
        let device = uniform_device(Topology::line(127), 60.0);
        let sc = workload(127, 7);
        let sim = Simulator::with_engine(
            device,
            NoiseConfig {
                readout_error: false,
                ..NoiseConfig::default()
            },
            Engine::FrameBatch,
        );
        let engine = ca_sim::BatchedFrameEngine::new(&sim);
        let mut reference: Option<RunResult> = None;
        [1usize, 2, 4, 8]
            .into_iter()
            .map(|workers| {
                let mut best = f64::INFINITY;
                let mut res = None;
                for _ in 0..3 {
                    let start = Instant::now();
                    let r = engine
                        .run_counts_with_workers(&sc, shots, 11, Some(workers))
                        .expect("simulate");
                    best = best.min(start.elapsed().as_secs_f64());
                    res = Some(r);
                }
                let res = res.expect("at least one run");
                match &reference {
                    None => reference = Some(res),
                    Some(one) => {
                        assert_eq!(one, &res, "worker count {workers} changed 127q counts")
                    }
                }
                println!("  {workers} workers: {best:.3}s");
                (workers, best)
            })
            .collect()
    };

    // Heavy-hex qubit axis: Eagle 127 → Osprey 433 → Condor 1121.
    // Fixed driven activity (16 sparse-layer ECR pairs, 32 measured
    // bits) on lattices of increasing width. A width-proportional
    // engine would grow wall time linearly in the qubit count; the
    // activity-keyed pending banks and the qubit-sharded strip
    // sampler must hold the added idle width to the per-qubit
    // noise-code floor, so the axis asserts sub-linear wall growth
    // and a per-(qubit·shot) cost at the widest row below the
    // all-qubits-driven brickwork 127q row measured in this same run.
    // Counts are served, and must be bit-identical across worker
    // counts (which cross the shard dispatch boundary) and across
    // cold/warm plan-cache states.
    println!();
    println!("-- heavy-hex qubit axis: fixed driven region, widening lattice ({shots} shots) --");
    let hh_devices = if smoke {
        vec![
            large_scale::eagle_device(127),
            large_scale::osprey_device(127),
        ]
    } else {
        vec![
            large_scale::eagle_device(127),
            large_scale::osprey_device(127),
            large_scale::condor_device(127),
        ]
    };
    let hh_noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let mut hh_rows: Vec<(usize, usize, f64, f64, Value)> = Vec::new();
    for device in &hh_devices {
        let n = device.num_qubits();
        let edges = device.topology.edges.len();
        let sc = heavy_hex_workload(device);
        let sim = Simulator::with_engine(device.clone(), hh_noise, Engine::FrameBatch);
        let name = sim.engine_name_for(&sc).expect("resolve engine");
        assert_eq!(
            name, "frame-batch",
            "{n}q workload must stay on frame-batch"
        );
        let mut best: Option<(f64, Value, RunResult)> = None;
        for _ in 0..5 {
            let base = ca_bench::obs::snapshot();
            let start = Instant::now();
            let res = sim.run_counts(&sc, shots, 11).expect("simulate");
            let seconds = start.elapsed().as_secs_f64();
            let phases = ca_bench::obs::phase_breakdown(&base);
            if best.as_ref().is_none_or(|(s, _, _)| seconds < *s) {
                best = Some((seconds, phases, res));
            }
        }
        let (seconds, phases, reference) = best.expect("at least one timed run");
        assert_eq!(reference.shots, shots);
        let ns_per_qubit_shot = seconds * 1e9 / (n as f64 * shots as f64);
        println!(
            "  {n:>5} qubits ({edges:>4} edges): {seconds:>8.4}s  \
             {ns_per_qubit_shot:>7.2} ns/(qubit-shot)"
        );
        // Shard/worker invariance on every row of the axis: 1 worker
        // never shards, 8 workers shard the sampling pass at 433+.
        let engine = ca_sim::BatchedFrameEngine::new(&sim);
        for workers in [1usize, 2, 8] {
            let got = engine
                .run_counts_with_workers(&sc, shots, 11, Some(workers))
                .expect("simulate");
            assert_eq!(
                reference, got,
                "worker count {workers} changed {n}q heavy-hex counts"
            );
        }
        // Cache-state invariance: the cold submit compiles and plans,
        // the warm resubmit is served from the session LRU; both must
        // reproduce the direct-engine counts bit for bit.
        let session = Session::new(Simulator::with_config(device.clone(), hh_noise));
        let job = Job::counts(sc.clone(), shots, 11);
        for state in ["cold", "warm"] {
            let out = session
                .submit(std::slice::from_ref(&job))
                .pop()
                .expect("one job output")
                .expect("simulate");
            let JobOutput::Counts(got) = out else {
                panic!("counts job returned a non-counts output");
            };
            assert_eq!(reference, got, "{state} plan-cache counts diverge at {n}q");
        }
        hh_rows.push((n, edges, seconds, ns_per_qubit_shot, phases));
    }
    let hh_first = &hh_rows[0];
    let hh_last = &hh_rows[hh_rows.len() - 1];
    let hh_growth = hh_last.2 / hh_first.2.max(1e-9);
    let hh_linear = hh_last.0 as f64 / hh_first.0 as f64;
    println!(
        "  wall growth {}q -> {}q: {hh_growth:.2}x (linear bound {hh_linear:.2}x)",
        hh_first.0, hh_last.0
    );
    assert!(
        hh_growth < hh_linear,
        "heavy-hex wall time grew {hh_growth:.2}x from {}q to {}q — at or \
         above the linear bound {hh_linear:.2}x; engine cost is no longer \
         tracking activity",
        hh_first.0,
        hh_last.0
    );
    // The widest row must also beat the all-qubits-driven brickwork
    // 127q row on per-(qubit·shot) cost: idle width has to be much
    // cheaper than driven width, not merely no worse.
    let brickwork_ratio = batch_127.unwrap() * 1e9 / (127.0 * shots as f64);
    assert!(
        hh_last.3 < brickwork_ratio,
        "heavy-hex {}q costs {:.2} ns/(qubit-shot), not below the 127q \
         brickwork row's {brickwork_ratio:.2}",
        hh_last.0,
        hh_last.3
    );

    // The acceptance-scale experiment: 127-qubit heavy-hex
    // layer-fidelity/DD comparison (runs on the frame-batch engine
    // via `Engine::Auto`).
    println!();
    println!("-- 127-qubit heavy-hex layer-fidelity/DD ({shots} shots) --");
    let budget = Budget {
        trajectories: shots,
        instances: 1,
        seed: 11,
    };
    let depths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let ls_base = ca_bench::obs::snapshot();
    let start = Instant::now();
    let (fig, results) = large_scale::fig_large_scale(depths, &budget);
    let total = start.elapsed().as_secs_f64();
    let ls_phases = ca_bench::obs::phase_breakdown(&ls_base);
    fig.print();
    for r in &results {
        println!(
            "  {:>12}: LF {:.4} gamma {:.3} [{} engine, {:.2}s]",
            r.label, r.lf, r.gamma, r.engine, r.wall_s
        );
        assert_eq!(r.engine, "frame-batch", "Auto must pick the batch engine");
    }
    println!("  total wall time: {total:.2}s (acceptance budget: 10s)");

    // Cold-compile vs cached-job comparison on the twirl-ensemble LF
    // sweep: the session layer's reason to exist, quantified.
    println!();
    println!("-- 127q LF sweep: per-point recompilation vs session cache --");
    let (instances, traj) = if smoke { (4, 64) } else { (8, 128) };
    let sweep_depths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let lf_base = ca_bench::obs::snapshot();
    let (cold_s, ensemble_s, warm_s, lfs) = lf_sweep_cold_vs_cached(sweep_depths, instances, traj);
    let lf_phases = ca_bench::obs::phase_breakdown(&lf_base);
    let ens_speedup = cold_s / ensemble_s.max(1e-9);
    let cached_speedup = cold_s / warm_s.max(1e-9);
    println!("  per-point recompilation: {cold_s:.3}s");
    println!("  twirl-ensemble (cold cache): {ensemble_s:.3}s  ({ens_speedup:.2}x)");
    println!("  cached rerun: {warm_s:.3}s  ({cached_speedup:.2}x)");
    for (label, lf) in &lfs {
        println!("    {label}: LF {lf:.4} (bit-identical in all three modes)");
    }
    // Wall-clock assertion only on the full (non-smoke) run — smoke
    // sweeps are tens of milliseconds and noise-dominated on shared
    // runners — and only when the environment hasn't disabled the
    // plan cache out from under the "cached" session. The capacity
    // resolution is the same helper `Session::new` uses, so the two
    // can't drift apart.
    let cache_disabled = ca_sim::session::plan_cache_capacity_from_env() == 0;
    if !smoke && !cache_disabled {
        assert!(
            cached_speedup >= 2.0,
            "cached twirl-ensemble sweep must be >= 2x faster than \
             per-point recompilation (got {cached_speedup:.2}x)"
        );
    }

    if smoke {
        println!("  smoke run: BENCH_scaling.json left untouched");
        // At `CA_OBS=trace:<path>` this validates the written trace
        // covers the compile, plan, and session layers — the CI
        // smoke job's check.
        ca_bench::obs::finish(3);
        return;
    }

    let experiment = Value::Obj(vec![
        ("depths".into(), depths.to_vec().to_value()),
        ("shots".into(), shots.to_value()),
        ("total_seconds".into(), total.to_value()),
        ("phases".into(), ls_phases),
        (
            "strategies".into(),
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("label".into(), r.label.to_value()),
                            ("engine".into(), r.engine.to_value()),
                            ("lf".into(), r.lf.to_value()),
                            ("gamma".into(), r.gamma.to_value()),
                            ("seconds".into(), r.wall_s.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let lf_sweep = Value::Obj(vec![
        ("depths".into(), sweep_depths.to_vec().to_value()),
        ("instances".into(), instances.to_value()),
        ("trajectories".into(), traj.to_value()),
        ("cold_compile_seconds".into(), cold_s.to_value()),
        ("ensemble_cold_seconds".into(), ensemble_s.to_value()),
        ("cached_rerun_seconds".into(), warm_s.to_value()),
        ("ensemble_speedup".into(), ens_speedup.to_value()),
        ("cached_speedup".into(), cached_speedup.to_value()),
        ("phases".into(), lf_phases),
        (
            "lf".into(),
            Value::Arr(
                lfs.iter()
                    .map(|(label, lf)| {
                        Value::Obj(vec![
                            ("label".into(), label.to_value()),
                            ("lf".into(), lf.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let heavy_hex_axis = Value::Obj(vec![
        ("shots".into(), shots.to_value()),
        ("driven_pairs".into(), 16usize.to_value()),
        (
            "rows".into(),
            Value::Arr(
                hh_rows
                    .iter()
                    .map(|(n, edges, seconds, ratio, phases)| {
                        Value::Obj(vec![
                            ("engine".into(), "frame-batch".to_value()),
                            ("qubits".into(), n.to_value()),
                            ("edges".into(), edges.to_value()),
                            ("seconds".into(), seconds.to_value()),
                            ("ns_per_qubit_shot".into(), ratio.to_value()),
                            ("phases".into(), phases.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("wall_growth_vs_127q".into(), hh_growth.to_value()),
        ("linear_bound".into(), hh_linear.to_value()),
        (
            "brickwork_127q_ns_per_qubit_shot".into(),
            brickwork_ratio.to_value(),
        ),
    ]);
    let doc = Value::Obj(vec![
        ("bench".into(), "scaling".to_value()),
        ("shots".into(), SHOTS.to_value()),
        ("run".into(), ca_bench::obs::run_metadata()),
        (
            "rows".into(),
            Value::Arr(rows.iter().map(Row::to_value).collect()),
        ),
        ("batch_speedup_127q".into(), speedup_127.to_value()),
        (
            "worker_scaling_127q".into(),
            Value::Arr(
                worker_curve
                    .iter()
                    .map(|&(workers, seconds)| {
                        Value::Obj(vec![
                            ("workers".into(), workers.to_value()),
                            ("seconds".into(), seconds.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("heavy_hex_qubit_axis".into(), heavy_hex_axis),
        ("large_scale_127q".into(), experiment),
        ("lf_sweep_cold_vs_cached_127q".into(), lf_sweep),
    ]);
    let json = serde_json::to_string_pretty(&Raw(doc)).expect("serialise bench doc");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(path, json + "\n").expect("write BENCH_scaling.json");
    println!("  wrote {path}");
    ca_bench::obs::finish(3);
}

//! Engine scaling sweep: qubit count 10 → 127 across all engines.
//!
//! Runs a DD-compiled Clifford layer circuit at increasing device
//! sizes on the statevector engine (while it remains feasible), the
//! serial stabilizer engine, and the bit-parallel frame-batch engine
//! (to full device scale), prints the wall-clock table, and emits a
//! machine-readable `BENCH_scaling.json` at the repository root so
//! the performance trajectory is recorded across PRs.
//!
//! The serial and batch engines are seeded identically, so beyond the
//! timing rows this bench asserts their 127-qubit counts are
//! bit-identical — the batch speedup is free of any statistical
//! caveat.
//!
//! Pass `--smoke` for the CI-sized run: a reduced sweep at a small
//! shot count that still exercises the batch-vs-serial identity and
//! the 127-qubit experiment, without touching `BENCH_scaling.json`.

use ca_circuit::Circuit;
use ca_core::{pipeline, CompileOptions, Context, Strategy};
use ca_device::{uniform_device, Topology};
use ca_experiments::large_scale;
use ca_experiments::Budget;
use ca_sim::{Engine, NoiseConfig, RunResult, Simulator};
use serde::{Serialize, Value};
use std::time::Instant;

const SHOTS: usize = 1000;

struct Row {
    engine: &'static str,
    qubits: usize,
    shots: usize,
    seconds: f64,
    shots_per_s: f64,
}

impl Row {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("engine".into(), self.engine.to_value()),
            ("qubits".into(), self.qubits.to_value()),
            ("shots".into(), self.shots.to_value()),
            ("seconds".into(), self.seconds.to_value()),
            ("shots_per_s".into(), self.shots_per_s.to_value()),
        ])
    }
}

/// A DD-compiled brickwork Clifford circuit on a line of `n` qubits.
fn workload(n: usize, seed: u64) -> ca_circuit::ScheduledCircuit {
    let device = uniform_device(Topology::line(n), 60.0);
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier(Vec::<usize>::new());
    for layer in 0..4 {
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            qc.ecr(q, q + 1);
            q += 2;
        }
        qc.barrier(Vec::<usize>::new());
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    let opts = CompileOptions::new(Strategy::CaDd, seed);
    let pm = pipeline(&opts);
    let mut ctx = Context::new(&device, seed);
    pm.compile(&qc, &mut ctx)
}

fn time_run(engine: Engine, n: usize, shots: usize) -> (Row, RunResult) {
    let device = uniform_device(Topology::line(n), 60.0);
    let sc = workload(n, 7);
    let sim = Simulator::with_engine(
        device,
        NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        },
        engine,
    );
    let name = sim.engine_name_for(&sc).expect("resolve engine");
    let start = Instant::now();
    let res = sim.run_counts(&sc, shots, 11).expect("simulate");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(res.shots, shots);
    (
        Row {
            engine: name,
            qubits: n,
            shots,
            seconds,
            shots_per_s: shots as f64 / seconds.max(1e-9),
        },
        res,
    )
}

fn print_row(r: &Row) {
    println!(
        "{:>12} {:>7} {:>7} {:>10.3} {:>12.0}",
        r.engine, r.qubits, r.shots, r.seconds, r.shots_per_s
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shots = if smoke { 192 } else { SHOTS };
    ca_bench::header(
        "scaling",
        "frame-batch engine packs 64 shots per word on top of the stabilizer \
         engine's 100+ qubit reach; dense engine caps out near 20 qubits",
    );
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:>12} {:>7} {:>7} {:>10} {:>12}",
        "engine", "qubits", "shots", "seconds", "shots/s"
    );
    // The dense sweep is capped at 14 qubits to keep routine bench
    // runs short — at 18 qubits it already needs ~10 minutes for
    // 1000 shots (the recorded BENCH_scaling.json has that point).
    if !smoke {
        for &n in &[10usize, 12, 14] {
            let (r, _) = time_run(Engine::Statevector, n, shots);
            print_row(&r);
            rows.push(r);
        }
    }
    let frame_sizes: &[usize] = if smoke {
        &[18, 127]
    } else {
        &[10, 14, 18, 28, 44, 64, 96, 127]
    };
    let mut serial_127 = None;
    let mut batch_127 = None;
    for &n in frame_sizes {
        let (r, serial_counts) = time_run(Engine::Stabilizer, n, shots);
        print_row(&r);
        let serial_s = r.seconds;
        rows.push(r);
        let (r, batch_counts) = time_run(Engine::FrameBatch, n, shots);
        print_row(&r);
        let batch_s = r.seconds;
        rows.push(r);
        // Same seed ⇒ the two frame engines must agree bit-for-bit.
        assert_eq!(
            serial_counts, batch_counts,
            "frame-batch counts diverge from serial at {n} qubits"
        );
        if n == 127 {
            serial_127 = Some(serial_s);
            batch_127 = Some(batch_s);
        }
    }
    let speedup_127 = serial_127.unwrap() / batch_127.unwrap().max(1e-9);
    println!("  frame-batch vs serial at 127q: {speedup_127:.1}x (bit-identical counts)");

    // The acceptance-scale experiment: 127-qubit heavy-hex
    // layer-fidelity/DD comparison (runs on the frame-batch engine
    // via `Engine::Auto`).
    println!();
    println!("-- 127-qubit heavy-hex layer-fidelity/DD ({shots} shots) --");
    let budget = Budget {
        trajectories: shots,
        instances: 1,
        seed: 11,
    };
    let depths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let start = Instant::now();
    let (fig, results) = large_scale::fig_large_scale(depths, &budget);
    let total = start.elapsed().as_secs_f64();
    fig.print();
    for r in &results {
        println!(
            "  {:>12}: LF {:.4} gamma {:.3} [{} engine, {:.2}s]",
            r.label, r.lf, r.gamma, r.engine, r.wall_s
        );
        assert_eq!(r.engine, "frame-batch", "Auto must pick the batch engine");
    }
    println!("  total wall time: {total:.2}s (acceptance budget: 10s)");

    if smoke {
        println!("  smoke run: BENCH_scaling.json left untouched");
        return;
    }

    let experiment = Value::Obj(vec![
        ("depths".into(), depths.to_vec().to_value()),
        ("shots".into(), shots.to_value()),
        ("total_seconds".into(), total.to_value()),
        (
            "strategies".into(),
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("label".into(), r.label.to_value()),
                            ("engine".into(), r.engine.to_value()),
                            ("lf".into(), r.lf.to_value()),
                            ("gamma".into(), r.gamma.to_value()),
                            ("seconds".into(), r.wall_s.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let doc = Value::Obj(vec![
        ("bench".into(), "scaling".to_value()),
        ("shots".into(), SHOTS.to_value()),
        (
            "rows".into(),
            Value::Arr(rows.iter().map(Row::to_value).collect()),
        ),
        ("batch_speedup_127q".into(), speedup_127.to_value()),
        ("large_scale_127q".into(), experiment),
    ]);
    let json = serde_json::to_string_pretty(&RawValue(doc)).expect("serialise bench doc");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(path, json + "\n").expect("write BENCH_scaling.json");
    println!("  wrote {path}");
}

/// Adapter: serialises an already-built [`Value`] tree.
struct RawValue(Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

//! Table I: residual error per (error source × suppression technique).

use ca_experiments::table1::table1;
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Table I",
        "EC fixes always-on Z/ZZ/active-ZZ/Stark but not slow Z; DD needs \
         staggering for idle ZZ, Walsh for NNN, and cannot fix active ZZ",
    );
    table1(&Budget::full()).print();
}

//! Dynamic-circuit bench: the Fig. 9 scenario as a device-scale
//! workload class.
//!
//! Distributes Bell pairs along heavy-hex chains of the 127-qubit
//! Eagle lattice by entanglement swapping — mid-circuit measurement
//! plus X/Z feed-forward — and sweeps chain length × assumed
//! measure-window length τ, with CA-EC's outcome-conditioned
//! compensation closing the window's crosstalk phases. Everything
//! runs through `Engine::Auto`, which resolves the 127-qubit dynamic
//! circuits to the bit-parallel batched frame engine; a dense
//! statevector could not represent one shot of it.
//!
//! Asserts, per chain length: compensation at the true τ beats bare
//! by a wide margin, and the τ sweep peaks at the true latency.
//!
//! Pass `--smoke` for the CI-sized run (smaller budgets, no
//! `BENCH_dynamic.json` write).

use ca_bench::Raw;
use ca_experiments::dynamic_127::{dynamic_127, DynamicChainResult};
use ca_experiments::Budget;
use serde::{Serialize, Value};
use std::time::Instant;

fn chain_row(r: &DynamicChainResult) -> Value {
    Value::Obj(vec![
        ("chain_len".into(), r.chain_len.to_value()),
        ("engine".into(), r.engine.to_value()),
        ("bare".into(), r.bare.to_value()),
        ("taus_ns".into(), r.taus_ns.to_value()),
        ("compensated".into(), r.compensated.to_value()),
        ("true_tau_ns".into(), r.true_tau_ns.to_value()),
        ("wall_seconds".into(), r.wall_s.to_value()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    ca_bench::obs::init();
    ca_bench::header(
        "dynamic",
        "dynamic circuits gain the most from CA-EC (Fig. 9: 9.5% -> 78.1% at the \
         optimal tau); here at device scale: Bell distribution over heavy-hex chains, \
         feed-forward on the frame engines, tau sweep peaking at the true latency",
    );

    let budget = Budget {
        trajectories: if smoke { 192 } else { 1024 },
        instances: if smoke { 2 } else { 4 },
        seed: 11,
    };
    let chain_lens: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 16, 28] };
    let tau_fracs: &[f64] = if smoke {
        &[0.5, 1.0, 1.5]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5]
    };
    let truth_index = tau_fracs
        .iter()
        .position(|&f| f == 1.0)
        .expect("sweep includes the true window");

    let base = ca_bench::obs::snapshot();
    let start = Instant::now();
    let (fig, results) = dynamic_127(chain_lens, tau_fracs, &budget);
    let total_s = start.elapsed().as_secs_f64();
    let phases = ca_bench::obs::phase_breakdown(&base);
    fig.print();
    println!(
        "{:>8} {:>12} {:>8} {:>12} {:>10} {:>8}",
        "chain", "engine", "bare", "F(tau=true)", "peak tau", "wall"
    );
    for r in &results {
        println!(
            "{:>8} {:>12} {:>8.4} {:>12.4} {:>10.2} {:>7.2}s",
            r.chain_len,
            r.engine,
            r.bare,
            r.compensated[truth_index],
            tau_fracs[r.peak_index()],
            r.wall_s
        );
    }
    println!("  full sweep in {total_s:.2}s");

    for r in &results {
        assert_eq!(
            r.engine, "frame-batch",
            "dynamic circuits must not fall back"
        );
        // Long chains pay decoherence and gate error that no phase
        // compensation can recover, so the margin narrows with L —
        // but compensation must always clearly win.
        assert!(
            r.compensated[truth_index] > r.bare + 0.1,
            "L={}: compensated {} must clearly exceed bare {}",
            r.chain_len,
            r.compensated[truth_index],
            r.bare
        );
        assert_eq!(
            r.peak_index(),
            truth_index,
            "L={}: sweep must peak at the true window: {:?}",
            r.chain_len,
            r.compensated
        );
    }

    if smoke {
        println!("  smoke run: BENCH_dynamic.json left untouched");
        ca_bench::obs::finish(3);
        return;
    }

    let doc = Value::Obj(vec![
        ("bench".into(), "dynamic".to_value()),
        ("qubits".into(), ca_experiments::dynamic_127::N.to_value()),
        (
            "shots_per_point".into(),
            (budget.trajectories * budget.instances).to_value(),
        ),
        ("run".into(), ca_bench::obs::run_metadata()),
        ("tau_fracs".into(), tau_fracs.to_vec().to_value()),
        (
            "chains".into(),
            Value::Arr(results.iter().map(chain_row).collect()),
        ),
        ("total_seconds".into(), total_s.to_value()),
        ("phases".into(), phases),
    ]);
    let json = serde_json::to_string_pretty(&Raw(doc)).expect("serialise bench doc");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dynamic.json");
    std::fs::write(path, json + "\n").expect("write BENCH_dynamic.json");
    println!("  wrote {path}");
    ca_bench::obs::finish(3);
}

//! Fig. 6: Floquet Ising boundary correlator.

use ca_experiments::ising::fig6;
use ca_experiments::Budget;

fn main() {
    ca_bench::header(
        "Fig. 6",
        "twirl-only loses the +/-1 boundary-correlator pattern; CA-EC and \
         CA-DD recover it",
    );
    let depths: Vec<usize> = (0..=8).collect();
    fig6(&depths, &Budget::full()).print();
}

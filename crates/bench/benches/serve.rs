//! Serving loadgen: end-to-end throughput and latency through the
//! `ca-server` HTTP front-end.
//!
//! Binds an in-process daemon on a loopback socket and drives it with
//! 1, 8, and 64 concurrent clients submitting QASM jobs, recording
//! requests/s, shots/s, and latency percentiles per concurrency level
//! into `BENCH_serve.json` at the repository root.
//!
//! Pass `--smoke` for the CI-sized run (fewer clients and shots, no
//! JSON write) — it still covers connect → parse → admit → execute →
//! respond for every request and asserts every response is a 200.

use ca_bench::Raw;
use ca_device::{uniform_device, Topology};
use ca_server::{Server, ServerConfig};
use ca_sim::NoiseConfig;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const QUBITS: usize = 8;

/// A GHZ-like circuit measuring every qubit, as QASM3 — the workload
/// every client submits.
fn workload_qasm() -> String {
    let mut qc = ca_circuit::Circuit::new(QUBITS, QUBITS);
    qc.h(0);
    for q in 0..QUBITS - 1 {
        qc.cx(q, q + 1);
    }
    for q in 0..QUBITS {
        qc.measure(q, q);
    }
    ca_circuit::to_qasm3(&qc)
}

/// One request over a fresh connection; returns the latency. Panics
/// on any non-200 so a misconfigured run fails loudly.
fn submit(addr: SocketAddr, body: &str) -> Duration {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect loadgen client");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    let request = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head = String::from_utf8_lossy(&response[..response.len().min(64)]).into_owned();
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "loadgen expects 200s, got: {head}"
    );
    started.elapsed()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

struct LevelResult {
    concurrency: usize,
    requests: usize,
    shots_per_request: usize,
    seconds: f64,
    requests_per_s: f64,
    shots_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

impl LevelResult {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("concurrency".into(), self.concurrency.to_value()),
            ("requests".into(), self.requests.to_value()),
            (
                "shots_per_request".into(),
                self.shots_per_request.to_value(),
            ),
            ("seconds".into(), self.seconds.to_value()),
            ("requests_per_s".into(), self.requests_per_s.to_value()),
            ("shots_per_s".into(), self.shots_per_s.to_value()),
            ("p50_ms".into(), self.p50_ms.to_value()),
            ("p95_ms".into(), self.p95_ms.to_value()),
            ("p99_ms".into(), self.p99_ms.to_value()),
        ])
    }
}

/// Drives one concurrency level: `concurrency` client threads each
/// firing `per_client` sequential requests at `shots` shots.
fn run_level(
    addr: SocketAddr,
    qasm: &str,
    concurrency: usize,
    per_client: usize,
    shots: usize,
) -> LevelResult {
    let qasm_json = serde_json::to_string(&qasm.to_string()).expect("encode workload");
    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                let qasm_json = &qasm_json;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    for round in 0..per_client {
                        let seed = (client * per_client + round) as u64;
                        let body = format!(
                            "{{\"tenant\":\"loadgen-{client}\",\"shots\":{shots},\
                             \"seed\":{seed},\"qasm\":{qasm_json}}}"
                        );
                        latencies.push(submit(addr, &body).as_secs_f64() * 1000.0);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let requests = concurrency * per_client;
    LevelResult {
        concurrency,
        requests,
        shots_per_request: shots,
        seconds,
        requests_per_s: requests as f64 / seconds,
        shots_per_s: (requests * shots) as f64 / seconds,
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    ca_bench::header(
        "serve",
        "HTTP front-end sustains concurrent tenants without result drift",
    );
    ca_bench::obs::init();

    let levels: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64] };
    let per_client = if smoke { 4 } else { 24 };
    let shots = if smoke { 64 } else { 1024 };

    let device = uniform_device(Topology::line(QUBITS), 60.0);
    let config = ServerConfig {
        workers: 8,
        queue_capacity: 256,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", device, NoiseConfig::default(), config)
        .expect("bind loadgen server");
    let addr = handle.addr();
    let qasm = workload_qasm();

    println!(
        "  {:>11}  {:>8}  {:>9}  {:>10}  {:>9}  {:>8}  {:>8}  {:>8}",
        "concurrency", "requests", "seconds", "req/s", "shots/s", "p50 ms", "p95 ms", "p99 ms"
    );
    let mut rows = Vec::new();
    for &concurrency in levels {
        let row = run_level(addr, &qasm, concurrency, per_client, shots);
        println!(
            "  {:>11}  {:>8}  {:>9.3}  {:>10.1}  {:>9.0}  {:>8.2}  {:>8.2}  {:>8.2}",
            row.concurrency,
            row.requests,
            row.seconds,
            row.requests_per_s,
            row.shots_per_s,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms
        );
        rows.push(row);
    }
    handle.shutdown();

    if smoke {
        println!("  smoke run: BENCH_serve.json left untouched");
        return;
    }

    let doc = Value::Obj(vec![
        ("bench".into(), "serve".to_value()),
        ("qubits".into(), QUBITS.to_value()),
        ("workers".into(), 8usize.to_value()),
        ("metadata".into(), ca_bench::obs::run_metadata()),
        (
            "levels".into(),
            Value::Arr(rows.iter().map(LevelResult::to_value).collect()),
        ),
    ]);
    let json = serde_json::to_string(&Raw(doc)).expect("serialise BENCH_serve.json");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json + "\n").expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");
}

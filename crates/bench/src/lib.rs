//! # ca-bench
//!
//! Benchmark harness: one `cargo bench` target per paper table/figure
//! (each prints the regenerated rows next to the paper's claims), a
//! compiler-performance bench (timing the passes' O(d²n)/O(dn)
//! scaling), and ablation benches for the design choices DESIGN.md §6
//! calls out.

#![warn(missing_docs)]

/// Prints a standard header for a figure bench.
pub fn header(id: &str, claim: &str) {
    println!();
    println!("################################################################");
    println!("# {id}");
    println!("# paper claim: {claim}");
    println!("################################################################");
}

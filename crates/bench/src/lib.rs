#![forbid(unsafe_code)]
//! # ca-bench
//!
//! Benchmark harness: one `cargo bench` target per paper table/figure
//! (each prints the regenerated rows next to the paper's claims), a
//! compiler-performance bench (timing the passes' O(d²n)/O(dn)
//! scaling), and ablation benches for the design choices DESIGN.md §6
//! calls out.
//!
//! The [`obs`] module binds the benches to `ca-obs`: each perf bench
//! raises the level to `summary` so its `BENCH_*.json` document can
//! carry a per-phase wall-time breakdown (noise sampling vs frame
//! propagation vs reduction vs plan compilation) and the run metadata
//! (worker count, plan-cache capacity, observability level) needed to
//! compare timings across machines and PRs.

#![warn(missing_docs)]

use serde::{Serialize, Value};

/// Prints a standard header for a figure bench.
pub fn header(id: &str, claim: &str) {
    println!();
    println!("################################################################");
    println!("# {id}");
    println!("# paper claim: {claim}");
    println!("################################################################");
}

/// Adapter: serialises an already-built [`Value`] tree (the benches
/// assemble their JSON documents by hand).
pub struct Raw(pub Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Bench-side observability helpers: level setup, run metadata, and
/// phase breakdowns for the `BENCH_*.json` documents.
pub mod obs {
    use serde::{Serialize, Value};

    pub use ca_obs::{snapshot, Snapshot};

    /// Initialises observability for a bench run: honours `CA_OBS`
    /// when the user set it, otherwise raises the level to `summary`
    /// so phase breakdowns are populated.
    pub fn init() {
        ca_obs::enable_summary_if_off();
    }

    /// Run metadata attached to every perf-bench JSON document, so
    /// recorded timings can be compared across machines and PRs:
    /// the resolved session worker count, the plan-cache capacity,
    /// and the observability level the run executed under.
    pub fn run_metadata() -> Value {
        Value::Obj(vec![
            (
                "workers".into(),
                ca_sim::plan::worker_count(None, usize::MAX).to_value(),
            ),
            (
                "plan_cache_capacity".into(),
                ca_sim::session::plan_cache_capacity_from_env().to_value(),
            ),
            ("obs_level".into(), ca_obs::level().name().to_value()),
        ])
    }

    /// Seconds attributed to each instrumented phase since `base`:
    /// the engines' noise-sampling / frame-propagation / reduction
    /// split, the pass-pipeline compile time, and the simulator-side
    /// plan compilation (timeline plan + frame program + batch
    /// program — the leaf spans, so nothing is double-counted).
    pub fn phase_breakdown(base: &Snapshot) -> Value {
        let d = ca_obs::snapshot().since(base);
        let plan_s = d.total_seconds("sim.compile/timeline-plan")
            + d.total_seconds("sim.compile/frame-plan")
            + d.total_seconds("sim.compile/batch-program");
        Value::Obj(vec![
            (
                "sampling_seconds".into(),
                d.total_seconds("engine/sampling").to_value(),
            ),
            (
                "propagation_seconds".into(),
                d.total_seconds("engine/propagation").to_value(),
            ),
            (
                "reduction_seconds".into(),
                d.total_seconds("engine/reduction").to_value(),
            ),
            (
                "pipeline_compile_seconds".into(),
                d.total_seconds("compile/pipeline").to_value(),
            ),
            ("plan_compile_seconds".into(), plan_s.to_value()),
            // Learner-side phases outside the engines: per-point
            // circuit construction / observable propagation, decay
            // fits, and the Walsh–Hadamard channel transforms.
            (
                "circuit_construction_seconds".into(),
                d.total_seconds("learn/build-point").to_value(),
            ),
            (
                "fit_seconds".into(),
                d.total_seconds("learn/fit-partition").to_value(),
            ),
            (
                "wht_seconds".into(),
                d.total_seconds("channel/wht").to_value(),
            ),
        ])
    }

    /// Flushes observability per the active level ([`ca_obs::finish`])
    /// and, when a Chrome trace file was written (`CA_OBS=trace:…`),
    /// re-reads it and asserts it is well-formed JSON whose complete
    /// spans cover at least `min_categories` distinct instrumented
    /// layers — the check CI's trace smoke job relies on.
    pub fn finish(min_categories: usize) {
        let Some(path) = ca_obs::finish() else {
            return;
        };
        let text = std::fs::read_to_string(&path).expect("read trace file back"); // ca-lint: allow(panic) -- bench smoke assertion must fail loudly in CI
        let doc = serde_json::parse_value(&text).expect("trace file must be valid JSON"); // ca-lint: allow(panic) -- bench smoke assertion must fail loudly in CI
        let events = match lookup(&doc, "traceEvents") {
            Some(Value::Arr(events)) => events,
            _ => panic!("trace file must carry a traceEvents array"), // ca-lint: allow(panic) -- bench smoke assertion must fail loudly in CI
        };
        let mut categories = std::collections::BTreeSet::new();
        for event in events {
            if let (Some(Value::Str(ph)), Some(Value::Str(cat))) =
                (lookup(event, "ph"), lookup(event, "cat"))
            {
                if ph == "X" {
                    categories.insert(cat.clone());
                }
            }
        }
        assert!(
            categories.len() >= min_categories,
            "trace {} must contain spans from >= {min_categories} \
             instrumented layers, got {categories:?}",
            path.display()
        );
        println!(
            "  trace: {} ({} events, {} span categories)",
            path.display(),
            events.len(),
            categories.len()
        );
    }

    fn lookup<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
        match value {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

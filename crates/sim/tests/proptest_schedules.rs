//! Property tests for the v2 counter-based seed schedule.
//!
//! Three layers of guarantees:
//!
//! * **Engine equivalence** — with the schedule pinned *explicitly*
//!   (not read from the environment), the serial stabilizer engine and
//!   the bit-parallel batch engine produce bit-identical counts at
//!   every shot count (full words, partial tail lanes, single shots)
//!   and every worker count, under both [`SeedSchedule::V1`] and
//!   [`SeedSchedule::V2`].
//! * **Statistical equivalence** — v1 and v2 are different RNG
//!   schedules over the *same* physical noise model, so their sampled
//!   distributions must agree up to shot noise (TVD band on a noisy
//!   10-qubit layer).
//! * **Primitive soundness** — the per-(shot, site) hash has no
//!   collisions over a large structured grid and avalanches on
//!   single-bit input flips; the bit-plane threshold ladders
//!   ([`lt_lane`], [`lt_masks`]) agree lane-for-lane with the
//!   reference word ladder [`lt_mask`].

use ca_circuit::{schedule_asap, Circuit, GateDurations, ScheduledCircuit};
use ca_device::{uniform_device, Device, Topology};
use ca_sim::plan::{lt_lane, lt_mask, lt_masks, shot_site_seed, SeedSchedule};
use ca_sim::{BatchedFrameEngine, NoiseConfig, Simulator, StabilizerEngine};
use proptest::prelude::*;

/// A noisy line device with every stochastic channel switched on.
fn noisy_device(n: usize) -> Device {
    let mut dev = uniform_device(Topology::line(n), 60.0);
    for q in 0..n {
        dev.calibration.qubits[q].quasistatic_khz = 30.0;
        dev.calibration.qubits[q].charge_parity_khz = 3.0;
        dev.calibration.qubits[q].t1_us = 80.0;
        dev.calibration.qubits[q].t2_us = 90.0;
        dev.calibration.qubits[q].readout_err = 0.03;
        dev.calibration.qubits[q].gate_err_1q = 0.002;
    }
    dev
}

/// A brickwork Clifford layer with a measurement round: H row, two
/// staggered ECR rows, measure all.
fn layer_circuit(n: usize) -> ScheduledCircuit {
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    for q in (0..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for q in (1..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    schedule_asap(&qc, GateDurations::default())
}

fn sim_with(n: usize, schedule: SeedSchedule) -> Simulator {
    Simulator::with_config(noisy_device(n), NoiseConfig::default()).with_seed_schedule(schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Serial and batch must agree bit-for-bit under BOTH schedules,
    // pinned explicitly so the test is independent of
    // CA_SIM_SEED_SCHEDULE in the environment. Shot counts weight the
    // word-boundary cases (partial tail lanes, exactly one word, one
    // shot) that the bit-plane sampler has to mask correctly.
    #[test]
    fn serial_and_batch_bit_identical_under_pinned_schedules(
        shots in prop_oneof![
            Just(1usize), Just(63), Just(64), Just(65), Just(127), Just(129),
            1..300usize,
        ],
        seed in 0..u64::MAX,
    ) {
        for schedule in [SeedSchedule::V1, SeedSchedule::V2] {
            let sim = sim_with(6, schedule);
            let sc = layer_circuit(6);
            let serial = StabilizerEngine::new(&sim).run_counts(&sc, shots, seed).unwrap();
            let batch = BatchedFrameEngine::new(&sim);
            let one = batch.run_counts_with_workers(&sc, shots, seed, Some(1)).unwrap();
            prop_assert_eq!(
                &serial, &one,
                "serial vs batch diverge: {:?} shots {} seed {}", schedule, shots, seed
            );
            for workers in [2usize, 8] {
                let got = batch.run_counts_with_workers(&sc, shots, seed, Some(workers)).unwrap();
                prop_assert_eq!(
                    &one, &got,
                    "worker-count dependence: {:?} shots {} workers {}", schedule, shots, workers
                );
            }
        }
    }

    // The reference word ladder and its two decompositions: a single
    // lane of `lt_mask` is `lt_lane`, and `lt_masks` over shared
    // planes matches the standalone ladder entry-for-entry.
    #[test]
    fn ladder_decompositions_match_reference(
        base in 0..u64::MAX,
        t0 in prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64 << 63), 0..u64::MAX],
        t1 in prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64), 0..u64::MAX],
        t2 in 0..u64::MAX,
    ) {
        let reference = lt_mask(base, t0);
        for lane in 0..64u32 {
            prop_assert_eq!(
                lt_lane(base, lane, t0),
                reference >> lane & 1 == 1,
                "lane {} base {:#x} t {:#x}", lane, base, t0
            );
        }
        let joint = lt_masks(base, [t0, t1, t2]);
        for (i, &t) in [t0, t1, t2].iter().enumerate() {
            prop_assert_eq!(
                joint[i], lt_mask(base, t),
                "entry {} base {:#x} t {:#x}", i, base, t
            );
        }
        prop_assert_eq!(lt_masks(base, [t1])[0], lt_mask(base, t1));
    }
}

// v1 and v2 sample the same physical model through different RNG
// schedules: distributions must agree up to shot noise. Four measured
// qubits keep the outcome space small (16 patterns), so the empirical
// TVD between two 4096-shot runs of the same distribution concentrates
// well below the 0.1 band asserted here.
#[test]
fn v1_and_v2_agree_statistically_on_noisy_layer() {
    let n = 10;
    let shots = 4096;
    let mut qc = Circuit::new(n, 4);
    for q in 0..n {
        qc.h(q);
    }
    for q in (0..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for q in (1..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for (c, q) in [0usize, 3, 6, 9].into_iter().enumerate() {
        qc.measure(q, c);
    }
    let sc = schedule_asap(&qc, GateDurations::default());
    let run = |schedule| {
        let sim = sim_with(n, schedule);
        BatchedFrameEngine::new(&sim)
            .run_counts(&sc, shots, 41)
            .unwrap()
    };
    let v1 = run(SeedSchedule::V1);
    let v2 = run(SeedSchedule::V2);
    let mut tvd = 0.0f64;
    for pattern in 0..16u64 {
        let p1 = *v1.counts.get(&pattern).unwrap_or(&0) as f64 / shots as f64;
        let p2 = *v2.counts.get(&pattern).unwrap_or(&0) as f64 / shots as f64;
        tvd += (p1 - p2).abs();
    }
    tvd /= 2.0;
    assert!(tvd < 0.1, "v1/v2 TVD {tvd:.4} outside the shot-noise band");
    for c in 0..4 {
        let d = (v1.marginal_one(c) - v2.marginal_one(c)).abs();
        assert!(d < 0.05, "clbit {c}: marginal gap {d:.4}");
    }
}

// 100k structured (shot, site) points — the densest region the
// engines actually use — must map to 100k distinct draw seeds.
#[test]
fn shot_site_seed_has_no_collisions_on_structured_grid() {
    let mut seeds: Vec<u64> = Vec::with_capacity(100_000);
    for shot in 0..1000u64 {
        for site in 0..100u64 {
            seeds.push(shot_site_seed(11, shot, site));
        }
    }
    seeds.sort_unstable();
    let before = seeds.len();
    seeds.dedup();
    assert_eq!(seeds.len(), before, "shot_site_seed collided on the grid");
}

// Single-bit flips of either coordinate must flip about half the
// output bits: the per-(shot, site) draws sit adjacent in shot and
// site space, so weak diffusion would correlate neighbouring lanes.
#[test]
fn shot_site_seed_avalanches_on_single_bit_flips() {
    let mut total = 0u64;
    let mut flips = 0u64;
    for i in 0..64u64 {
        let (shot, site) = (i.wrapping_mul(977), i.wrapping_mul(1213) ^ 5);
        let h = shot_site_seed(7, shot, site);
        for b in 0..64 {
            total += 2;
            flips += (h ^ shot_site_seed(7, shot ^ (1 << b), site)).count_ones() as u64;
            flips += (h ^ shot_site_seed(7, shot, site ^ (1 << b))).count_ones() as u64;
        }
    }
    let mean = flips as f64 / total as f64;
    assert!(
        (28.0..=36.0).contains(&mean),
        "avalanche mean {mean:.2} bits, expected ~32"
    );
}

//! Cooperative cancellation and deadline tests.
//!
//! The contract: a cancelled or deadline-expired job returns a
//! structured [`SimError`] (never a partial result), its workers exit
//! at the next shot-chunk / batch-strip boundary (so the thread pool
//! is freed, not pinned), and jobs sharing a batch with a cancelled
//! job produce bit-identical results to a serial replay.

use ca_circuit::{schedule_asap, Circuit, GateDurations, ScheduledCircuit};
use ca_device::{uniform_device, Topology};
use ca_sim::session::{Job, Session};
use ca_sim::{CancelToken, Engine, InsertionSet, NoiseConfig, SimError, Simulator};
use std::time::Duration;

fn noisy_session(n: usize, engine: Engine) -> Session {
    let mut dev = uniform_device(Topology::line(n), 60.0);
    for q in 0..n {
        dev.calibration.qubits[q].t1_us = 80.0;
        dev.calibration.qubits[q].t2_us = 90.0;
        dev.calibration.qubits[q].readout_err = 0.02;
        dev.calibration.qubits[q].gate_err_1q = 0.002;
    }
    let sim = Simulator::with_engine(dev, NoiseConfig::default(), engine);
    Session::with_capacity(sim, 8)
}

fn workload(n: usize) -> ScheduledCircuit {
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    for q in (0..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    schedule_asap(&qc, GateDurations::default())
}

#[test]
fn pre_cancelled_job_returns_cancelled_without_running() {
    let session = noisy_session(3, Engine::FrameBatch);
    let token = CancelToken::new();
    token.cancel();
    let job = Job::counts(workload(3), 256, 5).with_cancel(token);
    assert!(matches!(session.run(&job), Err(SimError::Cancelled)));
}

#[test]
fn expired_deadline_returns_deadline_exceeded() {
    let session = noisy_session(3, Engine::FrameBatch);
    let job = Job::counts(workload(3), 256, 5).with_deadline(Duration::ZERO);
    // Arming happens at submission; by the first cooperative check the
    // deadline has passed.
    assert!(matches!(session.run(&job), Err(SimError::DeadlineExceeded)));
}

#[test]
fn cancellation_is_observed_at_shot_chunk_boundaries() {
    // Drive the compiled artifact directly so the cancel fires inside
    // the worker fan-out (the session-level pre-check is bypassed),
    // proving the chunk-boundary poll works and the join is clean.
    for engine in [Engine::Stabilizer, Engine::FrameBatch] {
        let session = noisy_session(3, engine);
        let compiled = session.compiled(&workload(3), 9).expect("compile");
        let token = CancelToken::new();
        token.cancel();
        let none = InsertionSet::empty();
        let got = compiled.run_counts_cancel(4096, &none, Some(2), Some(&token));
        assert!(
            matches!(got, Err(SimError::Cancelled)),
            "engine {engine:?}: expected Cancelled, got {got:?}"
        );
    }
}

#[test]
fn deadline_is_observed_at_shot_chunk_boundaries() {
    let session = noisy_session(3, Engine::FrameBatch);
    let compiled = session.compiled(&workload(3), 9).expect("compile");
    let token = CancelToken::new();
    token.set_deadline_in(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(1));
    let none = InsertionSet::empty();
    let got = compiled.run_counts_cancel(4096, &none, Some(2), Some(&token));
    assert!(
        matches!(got, Err(SimError::DeadlineExceeded)),
        "got {got:?}"
    );
}

#[test]
fn cancelled_job_leaves_batch_neighbours_bit_identical() {
    let session = noisy_session(5, Engine::FrameBatch);
    let a = Job::counts(workload(5), 257, 21);
    let b = Job::counts(workload(5), 193, 22);

    // Serial reference, no cancellation anywhere.
    let ref_a = session.run(&a).expect("serial a");
    let ref_b = session.run(&b).expect("serial b");

    let token = CancelToken::new();
    token.cancel();
    let doomed = Job::counts(workload(5), 999, 23).with_cancel(token);
    let out = session.submit(&[a, doomed, b]);

    assert_eq!(out[0].as_ref().expect("job a"), &ref_a);
    assert!(matches!(out[1], Err(SimError::Cancelled)));
    assert_eq!(out[2].as_ref().expect("job b"), &ref_b);
}

#[test]
fn session_worker_is_freed_after_cancellation() {
    let session = noisy_session(3, Engine::FrameBatch);
    let token = CancelToken::new();
    token.cancel();
    let doomed = Job::counts(workload(3), 512, 5).with_cancel(token);
    assert!(matches!(session.run(&doomed), Err(SimError::Cancelled)));

    // The same session (and its fan-out) still executes fresh jobs:
    // nothing is pinned by the cancelled one.
    let healthy = Job::counts(workload(3), 512, 5);
    let first = session.run(&healthy).expect("post-cancel run");
    let second = session.run(&healthy).expect("repeat run");
    assert_eq!(first, second, "cancellation must not perturb later jobs");
}

#[test]
fn mid_run_cancel_from_another_thread_stops_the_job() {
    // A genuinely concurrent cancel: the job is large enough that the
    // canceller thread wins the race against completion by a wide
    // margin (the job takes seconds; the cancel lands in ~10ms).
    let session = noisy_session(5, Engine::FrameBatch);
    // Warm the plan cache so the timing below is all execution.
    session
        .run(&Job::counts(workload(5), 64, 31))
        .expect("warm");

    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        })
    };
    let big = Job::counts(workload(5), 50_000_000, 31).with_cancel(token);
    let got = session.run(&big);
    canceller.join().expect("canceller thread");
    assert!(matches!(got, Err(SimError::Cancelled)), "got {got:?}");
}

//! Bit-identity of the qubit-sharded strip sampler at Osprey scale.
//!
//! The v2 strip runner fans its sampling pass out across contiguous
//! qubit shards when a run has more worker threads than strips (see
//! `ca_sim`'s shard module). Sharding is a wall-clock knob only: the
//! per-shard buffers merged in op order must reproduce the unsharded
//! buffer word for word, so counts must be bit-identical across
//! every worker count — and equal to the serial engine — under both
//! seed schedules, including odd shot counts with partial tail lanes.
//! At 433 qubits the worker-count sweep actually crosses the
//! sharded/unsharded dispatch boundary (narrow devices never shard),
//! which is exactly the boundary these tests pin.

use ca_circuit::{schedule_asap, Circuit, GateDurations, ScheduledCircuit};
use ca_device::{presets, Device};
use ca_sim::plan::SeedSchedule;
use ca_sim::{BatchedFrameEngine, NoiseConfig, Simulator, StabilizerEngine};
use proptest::prelude::*;

/// A sparse layer-fidelity-style workload on a wide heavy-hex device:
/// eigenstate prep and a few ECR rounds on a small driven sublattice,
/// the rest of the lattice idle, then a measured register. The driven
/// and measured qubits span several shard boundaries at every shard
/// count the dispatch policy can pick.
fn sparse_workload(device: &Device, measured: usize) -> ScheduledCircuit {
    let n = device.num_qubits();
    let mut qc = Circuit::new(n, measured);
    let actives: Vec<usize> = (0..8).map(|i| i * n / 8).collect();
    for &q in &actives {
        qc.h(q);
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..2 {
        for &q in &actives {
            if let Some(&(a, b)) = device
                .topology
                .edges
                .iter()
                .find(|&&(a, b)| a == q || b == q)
            {
                qc.ecr(a, b);
            }
        }
        qc.barrier(Vec::<usize>::new());
    }
    for (c, &q) in actives.iter().take(measured).enumerate() {
        qc.measure(q, c);
    }
    schedule_asap(&qc, GateDurations::default())
}

fn sim_433(schedule: SeedSchedule) -> Simulator {
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    Simulator::with_config(presets::osprey_like(7), noise).with_seed_schedule(schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Worker counts 1/2/8 cross the shard dispatch boundary at 433
    // qubits (1 worker → unsharded, 8 workers with ≤ 2 strips → up to
    // 8 shards); all must agree bit-for-bit with each other and with
    // the serial engine, under both schedules. Shot counts weight the
    // strip boundaries: one partial strip, exactly one strip, a tail
    // strip with partial lanes.
    #[test]
    fn sharded_counts_are_worker_invariant_at_433q(
        shots in prop_oneof![
            Just(5usize), Just(64), Just(255), Just(256), Just(257), Just(300),
        ],
        seed in 0..u64::MAX,
    ) {
        for schedule in [SeedSchedule::V1, SeedSchedule::V2] {
            let sim = sim_433(schedule);
            let sc = sparse_workload(&sim.device, 6);
            let serial = StabilizerEngine::new(&sim).run_counts(&sc, shots, seed).unwrap();
            let batch = BatchedFrameEngine::new(&sim);
            let one = batch.run_counts_with_workers(&sc, shots, seed, Some(1)).unwrap();
            prop_assert_eq!(
                &serial, &one,
                "serial vs batch diverge at 433q: {:?} shots {} seed {}", schedule, shots, seed
            );
            for workers in [2usize, 8] {
                let got = batch.run_counts_with_workers(&sc, shots, seed, Some(workers)).unwrap();
                prop_assert_eq!(
                    &one, &got,
                    "worker/shard-count dependence at 433q: {:?} shots {} workers {}",
                    schedule, shots, workers
                );
            }
        }
    }
}

// A narrow circuit on a wide device: crosstalk edges and Stark terms
// reach past the circuit's registers at 433 and 1121 qubits and must
// be dropped, not indexed — the engine-level mirror of the timeline
// `build_segments` regression. Counts must also stay worker-invariant
// in this shape (the plan is narrow while the device is wide).
#[test]
fn narrow_circuit_on_wide_devices_runs_and_stays_invariant() {
    for device in [presets::osprey_like(3), presets::condor_like(3)] {
        let n = device.num_qubits();
        let mut qc = Circuit::new(5, 2);
        qc.h(0).ecr(0, 1).delay(500.0, 3);
        qc.measure(0, 0).measure(1, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let sim = Simulator::with_config(device, NoiseConfig::default())
            .with_seed_schedule(SeedSchedule::V2);
        let batch = BatchedFrameEngine::new(&sim);
        let one = batch.run_counts_with_workers(&sc, 130, 9, Some(1)).unwrap();
        let eight = batch.run_counts_with_workers(&sc, 130, 9, Some(8)).unwrap();
        assert_eq!(one, eight, "worker dependence on {n}-qubit device");
        assert_eq!(one.shots, 130);
    }
}

//! Regression tests for `Session::submit`'s failure isolation and
//! observability contract.
//!
//! Two bugs pinned here:
//!
//! * The single-job `submit` path used to return before the
//!   `session/submit` span, the `session.workers` gauge, and the
//!   `session/job.queue_wait` histogram fired, so a tenant sending
//!   jobs one at a time was invisible to `/stats`. Both paths must now
//!   move the same instruments.
//! * A panicking job used to unwind through the scoped fan-out and
//!   take the whole `submit` batch (and its caller) down. A panic must
//!   fail *that job* with [`SimError::JobPanicked`] and leave every
//!   other job's result untouched.

use ca_circuit::{schedule_asap, Circuit, GateDurations, ScheduledCircuit};
use ca_device::{uniform_device, Topology};
use ca_sim::session::{Job, Session};
use ca_sim::{Engine, NoiseConfig, SimError, Simulator};

fn noisy_session(n: usize) -> Session {
    let mut dev = uniform_device(Topology::line(n), 60.0);
    for q in 0..n {
        dev.calibration.qubits[q].t1_us = 80.0;
        dev.calibration.qubits[q].t2_us = 90.0;
        dev.calibration.qubits[q].readout_err = 0.02;
    }
    let sim = Simulator::with_engine(dev, NoiseConfig::default(), Engine::FrameBatch);
    Session::with_capacity(sim, 8)
}

fn workload(n: usize) -> ScheduledCircuit {
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    for q in (0..n - 1).step_by(2) {
        qc.ecr(q, q + 1);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    schedule_asap(&qc, GateDurations::default())
}

/// A circuit that addresses more qubits than the session's device
/// has: compiling it indexes past the calibration table and panics,
/// standing in for any internal invariant violation.
fn oversized_workload() -> ScheduledCircuit {
    workload(7)
}

#[test]
fn single_job_submit_moves_the_same_instruments_as_batches() {
    ca_obs::set_level(ca_obs::Level::Summary);
    let session = noisy_session(3);
    let job = Job::counts(workload(3), 64, 11);

    let base = ca_obs::snapshot();
    let out = session.submit(std::slice::from_ref(&job));
    assert_eq!(out.len(), 1);
    assert!(out[0].is_ok(), "job failed: {:?}", out[0]);
    let delta = ca_obs::snapshot().since(&base);

    // The span, gauge, and queue-wait histogram all fire for a
    // single-job submit, not just for batches.
    assert!(
        delta.counter("session.jobs") >= 1,
        "session.jobs did not move"
    );
    let submit = delta
        .histogram("session/submit")
        .expect("session/submit span missing on the single-job path");
    assert!(submit.count() >= 1);
    let wait = delta
        .histogram("session/job.queue_wait")
        .expect("session/job.queue_wait missing on the single-job path");
    assert!(wait.count() >= 1);
    assert!(
        ca_obs::snapshot().gauges.contains_key("session.workers"),
        "session.workers gauge missing on the single-job path"
    );
}

#[test]
fn panicking_job_fails_alone_in_a_batch() {
    let session = noisy_session(3);
    let good = Job::counts(workload(3), 128, 7);
    let bad = Job::counts(oversized_workload(), 128, 7);

    // Serial reference for the healthy jobs.
    let expect_first = session.run(&good).expect("healthy job");

    let out = session.submit(&[good.clone(), bad, good.clone()]);
    assert_eq!(out.len(), 3);
    assert_eq!(
        out[0].as_ref().expect("first job unaffected"),
        &expect_first
    );
    assert_eq!(
        out[2].as_ref().expect("third job unaffected"),
        &expect_first
    );
    match &out[1] {
        Err(SimError::JobPanicked { message }) => {
            assert!(!message.is_empty(), "panic message should be captured");
        }
        other => panic!("expected JobPanicked, got {other:?}"),
    }
}

#[test]
fn panicking_single_job_returns_structured_error() {
    let session = noisy_session(2);
    let out = session.submit(&[Job::counts(oversized_workload(), 32, 3)]);
    assert!(
        matches!(&out[0], Err(SimError::JobPanicked { .. })),
        "expected JobPanicked, got {:?}",
        out[0]
    );
    // The session stays usable after absorbing the panic.
    session
        .run(&Job::counts(workload(2), 32, 3))
        .expect("session survives a panicked job");
}

//! Cooperative cancellation and deadlines for long-running jobs.
//!
//! A [`CancelToken`] is a cheaply cloneable handle shared between a
//! submitter (a server connection, a test, a batch coordinator) and
//! the executor running the job. The executor never preempts: it
//! polls [`CancelToken::check`] at coarse work boundaries — dense
//! shot chunks ([`crate::plan::map_shots`]), per-shot stabilizer
//! chunks ([`crate::plan::map_shots_indexed`]), and frame-batch
//! strips ([`crate::frame_batch`]) — so a cancelled or expired job
//! stops within one chunk's worth of work and frees its worker
//! thread without leaving partial state anywhere.
//!
//! Deadlines are absolute instants on the `ca-obs` monotonic clock
//! ([`ca_obs::monotonic_ns`]); arming one is the only path through
//! which the simulator ever consults a clock, and the reading never
//! feeds simulation results — a job either completes bit-identically
//! to an uncancelled run or returns [`SimError::Cancelled`] /
//! [`SimError::DeadlineExceeded`] with no result at all.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::SimError;

/// Sentinel in the deadline slot meaning "no deadline armed".
const NO_DEADLINE: u64 = 0;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline in nanoseconds on the [`ca_obs::monotonic_ns`]
    /// clock; [`NO_DEADLINE`] when unarmed.
    deadline_ns: AtomicU64,
}

/// Shared cancellation handle polled cooperatively by the executor.
///
/// Clones share state: cancelling any clone cancels the job. A token
/// with no deadline armed never reads a clock, so passing one through
/// the executor is free for callers that only want manual
/// cancellation.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the job's
    /// next chunk-boundary poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called. Does not
    /// evaluate the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Arms a deadline `timeout` from now on the `ca-obs` monotonic
    /// clock. Re-arming overwrites the previous deadline.
    pub fn set_deadline_in(&self, timeout: Duration) {
        let now = ca_obs::monotonic_ns();
        let timeout = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        // Saturate; max(1) keeps a zero `now` + zero timeout from
        // colliding with the NO_DEADLINE sentinel.
        let at = now.saturating_add(timeout).max(1);
        self.inner.deadline_ns.store(at, Ordering::Release);
    }

    /// Absolute armed deadline in [`ca_obs::monotonic_ns`] units, if
    /// any.
    pub fn deadline_ns(&self) -> Option<u64> {
        match self.inner.deadline_ns.load(Ordering::Acquire) {
            NO_DEADLINE => None,
            at => Some(at),
        }
    }

    /// The executor's poll: `Err(SimError::Cancelled)` after
    /// [`cancel`](Self::cancel), `Err(SimError::DeadlineExceeded)`
    /// once an armed deadline has passed, `Ok(())` otherwise. Reads
    /// the clock only when a deadline is armed.
    pub fn check(&self) -> Result<(), SimError> {
        if self.is_cancelled() {
            return Err(SimError::Cancelled);
        }
        if let Some(at) = self.deadline_ns() {
            if ca_obs::monotonic_ns() >= at {
                return Err(SimError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Polls an optional token, the form executor internals thread
/// through: `Ok(())` when no token is attached.
pub(crate) fn check_opt(cancel: Option<&CancelToken>) -> Result<(), SimError> {
    match cancel {
        Some(token) => token.check(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
        assert_eq!(check_opt(None), Ok(()));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(SimError::Cancelled));
        assert_eq!(check_opt(Some(&t)), Err(SimError::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::ZERO);
        assert_eq!(t.check(), Err(SimError::DeadlineExceeded));
    }

    #[test]
    fn far_deadline_passes() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::from_secs(3600));
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::ZERO);
        t.cancel();
        assert_eq!(t.check(), Err(SimError::Cancelled));
    }
}

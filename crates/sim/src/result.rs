//! Run results: classical-bit counts and derived statistics.

use std::collections::BTreeMap;

/// Counts of classical-register outcomes over a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Total shots.
    pub shots: usize,
    /// Number of classical bits in the register.
    pub num_clbits: usize,
    /// Outcome → count; keys pack bits little-endian (bit `i` of the
    /// key is classical bit `i`).
    pub counts: BTreeMap<u64, usize>,
}

impl RunResult {
    /// Builds a result by merging partial count maps — the single
    /// aggregation point for every engine's shot fan-out (per-worker
    /// maps from the serial samplers, per-64-shot-word maps from the
    /// batch engine). Integer merges are order-independent, so the
    /// result is identical for any partitioning of the same shots.
    pub fn from_parts(
        shots: usize,
        num_clbits: usize,
        parts: impl IntoIterator<Item = BTreeMap<u64, usize>>,
    ) -> Self {
        let mut counts = BTreeMap::new();
        let mut merged = 0usize;
        for part in parts {
            for (k, v) in part {
                merged += v;
                *counts.entry(k).or_insert(0) += v;
            }
        }
        debug_assert_eq!(merged, shots, "partial counts must cover every shot");
        Self {
            shots,
            num_clbits,
            counts,
        }
    }

    /// Probability of an exact outcome pattern.
    pub fn probability(&self, pattern: u64) -> f64 {
        *self.counts.get(&pattern).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// Marginal probability that classical bit `c` reads 1.
    pub fn marginal_one(&self, c: usize) -> f64 {
        let bit = 1u64 << c;
        let ones: usize = self
            .counts
            .iter()
            .filter(|(k, _)| *k & bit != 0)
            .map(|(_, v)| v)
            .sum();
        ones as f64 / self.shots as f64
    }

    /// ⟨Z⟩-style expectation of the parity of the given classical bits:
    /// `Σ (−1)^{popcount(outcome & mask)} p(outcome)`.
    pub fn parity_expectation(&self, clbits: &[usize]) -> f64 {
        let mask: u64 = clbits.iter().fold(0, |m, &c| m | (1 << c));
        let mut acc = 0.0;
        for (&k, &v) in &self.counts {
            let parity = (k & mask).count_ones() % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            acc += sign * v as f64;
        }
        acc / self.shots as f64
    }

    /// Standard error of the parity expectation (binomial).
    pub fn parity_stderr(&self, clbits: &[usize]) -> f64 {
        let e = self.parity_expectation(clbits);
        ((1.0 - e * e).max(0.0) / self.shots as f64).sqrt()
    }

    /// Merges another result into this one (same register layout).
    pub fn merge(&mut self, other: &RunResult) {
        assert_eq!(self.num_clbits, other.num_clbits);
        self.shots += other.shots;
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(entries: &[(u64, usize)]) -> RunResult {
        let counts: BTreeMap<u64, usize> = entries.iter().copied().collect();
        let shots = counts.values().sum();
        RunResult {
            shots,
            num_clbits: 2,
            counts,
        }
    }

    #[test]
    fn probability_and_marginals() {
        let r = result(&[(0b00, 50), (0b01, 25), (0b11, 25)]);
        assert!((r.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((r.marginal_one(0) - 0.5).abs() < 1e-12);
        assert!((r.marginal_one(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_signs() {
        let r = result(&[(0b00, 50), (0b11, 50)]);
        // Even parity both outcomes → ⟨ZZ⟩ = 1.
        assert!((r.parity_expectation(&[0, 1]) - 1.0).abs() < 1e-12);
        // Single-bit parity: half 0, half 1 → 0.
        assert!(r.parity_expectation(&[0]).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = result(&[(0b00, 10)]);
        let b = result(&[(0b00, 5), (0b01, 5)]);
        a.merge(&b);
        assert_eq!(a.shots, 20);
        assert_eq!(a.counts[&0b00], 15);
    }

    #[test]
    fn from_parts_merges_partition_independently() {
        let a: BTreeMap<u64, usize> = [(0b00u64, 3), (0b01, 2)].into_iter().collect();
        let b: BTreeMap<u64, usize> = [(0b01u64, 1), (0b11, 4)].into_iter().collect();
        let fwd = RunResult::from_parts(10, 2, [a.clone(), b.clone()]);
        let rev = RunResult::from_parts(10, 2, [b, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counts[&0b01], 3);
        assert_eq!(fwd.shots, 10);
    }

    #[test]
    fn stderr_shrinks_with_shots() {
        let small = result(&[(0b00, 10), (0b01, 10)]);
        let big = result(&[(0b00, 1000), (0b01, 1000)]);
        assert!(big.parity_stderr(&[0]) < small.parity_stderr(&[0]));
    }
}

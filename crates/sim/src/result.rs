//! Run results: classical-bit counts and derived statistics.

use std::collections::BTreeMap;

/// Counts of classical-register outcomes over a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Total shots.
    pub shots: usize,
    /// Number of classical bits in the register.
    pub num_clbits: usize,
    /// Outcome → count; keys pack bits little-endian (bit `i` of the
    /// key is classical bit `i`).
    pub counts: BTreeMap<u64, usize>,
}

impl RunResult {
    /// Builds a result by merging partial count maps — the single
    /// aggregation point for every engine's shot fan-out (per-worker
    /// maps from the serial samplers, per-64-shot-word maps from the
    /// batch engine). Integer merges are order-independent, so the
    /// result is identical for any partitioning of the same shots.
    pub fn from_parts(
        shots: usize,
        num_clbits: usize,
        parts: impl IntoIterator<Item = BTreeMap<u64, usize>>,
    ) -> Self {
        let mut counts = BTreeMap::new();
        let mut merged = 0usize;
        for part in parts {
            for (k, v) in part {
                merged += v;
                *counts.entry(k).or_insert(0) += v;
            }
        }
        debug_assert_eq!(merged, shots, "partial counts must cover every shot");
        Self {
            shots,
            num_clbits,
            counts,
        }
    }

    /// Probability of an exact outcome pattern.
    pub fn probability(&self, pattern: u64) -> f64 {
        *self.counts.get(&pattern).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// Marginal probability that classical bit `c` reads 1.
    pub fn marginal_one(&self, c: usize) -> f64 {
        let bit = 1u64 << c;
        let ones: usize = self
            .counts
            .iter()
            .filter(|(k, _)| *k & bit != 0)
            .map(|(_, v)| v)
            .sum();
        ones as f64 / self.shots as f64
    }

    /// ⟨Z⟩-style expectation of the parity of the given classical bits:
    /// `Σ (−1)^{popcount(outcome & mask)} p(outcome)`.
    pub fn parity_expectation(&self, clbits: &[usize]) -> f64 {
        let mask: u64 = clbits.iter().fold(0, |m, &c| m | (1 << c));
        let mut acc = 0.0;
        for (&k, &v) in &self.counts {
            let parity = (k & mask).count_ones() % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            acc += sign * v as f64;
        }
        acc / self.shots as f64
    }

    /// Standard error of the parity expectation (binomial).
    pub fn parity_stderr(&self, clbits: &[usize]) -> f64 {
        let e = self.parity_expectation(clbits);
        ((1.0 - e * e).max(0.0) / self.shots as f64).sqrt()
    }

    /// Merges another result into this one (same register layout).
    pub fn merge(&mut self, other: &RunResult) {
        assert_eq!(self.num_clbits, other.num_clbits);
        self.shots += other.shots;
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }
}

/// Per-shot Pauli-expectation outcomes from the frame engines: for
/// each observable, the reference-tableau expectation and a bitvector
/// over shots marking which shots' frames flip its sign. This is the
/// raw material for sign-weighted estimators (probabilistic error
/// cancellation needs each shot's ±1 outcome, not just the mean), and
/// both frame engines produce it bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliFlips {
    /// Total shots.
    pub shots: usize,
    /// Reference (noiseless) expectation per observable: −1, 0, or +1.
    pub refs: Vec<i32>,
    /// `flips[obs]` is a bitvector of `ceil(shots/64)` words; bit `i`
    /// set means shot `i`'s frame anticommutes with the observable.
    pub flips: Vec<Vec<u64>>,
}

impl PauliFlips {
    /// Shot `shot`'s ±1 outcome for observable `obs` (0.0 when the
    /// reference expectation vanishes — the observable is not a
    /// stabilizer of the prepared state, so single shots carry no
    /// signal).
    pub fn value(&self, obs: usize, shot: usize) -> f64 {
        let flip = self.flips[obs][shot / 64] >> (shot % 64) & 1 == 1;
        let r = self.refs[obs] as f64;
        if flip {
            -r
        } else {
            r
        }
    }

    /// Mean outcome of observable `obs` over all shots — equals the
    /// engines' `expect_paulis` result for the same run.
    pub fn mean(&self, obs: usize) -> f64 {
        if self.refs[obs] == 0 || self.shots == 0 {
            return 0.0;
        }
        let mut flipped = 0u32;
        for (w, word) in self.flips[obs].iter().enumerate() {
            let bits_here = (self.shots - w * 64).min(64);
            let mask = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
            flipped += (word & mask).count_ones();
        }
        let sum = self.refs[obs] as i64 * (self.shots as i64 - 2 * flipped as i64);
        sum as f64 / self.shots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(entries: &[(u64, usize)]) -> RunResult {
        let counts: BTreeMap<u64, usize> = entries.iter().copied().collect();
        let shots = counts.values().sum();
        RunResult {
            shots,
            num_clbits: 2,
            counts,
        }
    }

    #[test]
    fn probability_and_marginals() {
        let r = result(&[(0b00, 50), (0b01, 25), (0b11, 25)]);
        assert!((r.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((r.marginal_one(0) - 0.5).abs() < 1e-12);
        assert!((r.marginal_one(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_signs() {
        let r = result(&[(0b00, 50), (0b11, 50)]);
        // Even parity both outcomes → ⟨ZZ⟩ = 1.
        assert!((r.parity_expectation(&[0, 1]) - 1.0).abs() < 1e-12);
        // Single-bit parity: half 0, half 1 → 0.
        assert!(r.parity_expectation(&[0]).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = result(&[(0b00, 10)]);
        let b = result(&[(0b00, 5), (0b01, 5)]);
        a.merge(&b);
        assert_eq!(a.shots, 20);
        assert_eq!(a.counts[&0b00], 15);
    }

    #[test]
    fn from_parts_merges_partition_independently() {
        let a: BTreeMap<u64, usize> = [(0b00u64, 3), (0b01, 2)].into_iter().collect();
        let b: BTreeMap<u64, usize> = [(0b01u64, 1), (0b11, 4)].into_iter().collect();
        let fwd = RunResult::from_parts(10, 2, [a.clone(), b.clone()]);
        let rev = RunResult::from_parts(10, 2, [b, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counts[&0b01], 3);
        assert_eq!(fwd.shots, 10);
    }

    #[test]
    fn stderr_shrinks_with_shots() {
        let small = result(&[(0b00, 10), (0b01, 10)]);
        let big = result(&[(0b00, 1000), (0b01, 1000)]);
        assert!(big.parity_stderr(&[0]) < small.parity_stderr(&[0]));
    }

    #[test]
    fn pauli_flips_values_and_mean() {
        // 70 shots, one observable with ref +1: shots 0 and 65 flip.
        let flips = vec![vec![1u64, 1u64 << 1]];
        let pf = PauliFlips {
            shots: 70,
            refs: vec![1],
            flips,
        };
        assert_eq!(pf.value(0, 0), -1.0);
        assert_eq!(pf.value(0, 1), 1.0);
        assert_eq!(pf.value(0, 65), -1.0);
        let expect = (70.0 - 2.0 * 2.0) / 70.0;
        assert!((pf.mean(0) - expect).abs() < 1e-12);
    }

    #[test]
    fn pauli_flips_mean_masks_tail_lanes() {
        // Garbage beyond the shot count must not affect the mean.
        let pf = PauliFlips {
            shots: 3,
            refs: vec![-1],
            flips: vec![vec![u64::MAX]],
        };
        assert!((pf.mean(0) - 1.0).abs() < 1e-12);
    }
}

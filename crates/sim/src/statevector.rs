//! Dense statevector with the operations the trajectory engine needs:
//! 1q/2q unitaries, fast diagonal Z/ZZ rotations (the coherent-error
//! workhorse), Pauli expectations, projective measurement, and
//! single-qubit Kraus-channel sampling for amplitude damping.

use ca_circuit::c64::{C64, ONE, ZERO};
use ca_circuit::matrix::{Mat2, Mat4};
use ca_circuit::pauli::{Pauli, PauliString};
use rand::RngExt;

/// A pure state of `n` qubits: `2^n` complex amplitudes, qubit `q` is
/// bit `q` of the basis index (little-endian, matching `ca-circuit`'s
/// matrix convention).
#[derive(Clone, Debug)]
pub struct State {
    /// Number of qubits.
    pub n: usize,
    /// Amplitudes, length `2^n`.
    pub amps: Vec<C64>,
}

impl State {
    /// |0…0⟩.
    pub fn zero(n: usize) -> Self {
        assert!(
            n <= crate::engine::DENSE_MAX_QUBITS,
            "statevector limited to {} qubits",
            crate::engine::DENSE_MAX_QUBITS
        );
        let mut amps = vec![ZERO; 1 << n];
        amps[0] = ONE;
        Self { n, amps }
    }

    /// A computational basis state.
    pub fn basis(n: usize, index: usize) -> Self {
        let mut amps = vec![ZERO; 1 << n];
        amps[index] = ONE;
        Self { n, amps }
    }

    /// Squared norm (should stay ≈1 between explicit renormalisations).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm.
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        let bit = 1usize << q;
        let (m00, m01, m10, m11) = (m.0[0][0], m.0[0][1], m.0[1][0], m.0[1][1]);
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m00 * a0 + m01 * a1;
                self.amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    /// Applies a 4×4 unitary to qubits `(a, b)` where `a` is the
    /// low-order index bit of the matrix (first listed operand).
    pub fn apply_2q(&mut self, m: &Mat4, a: usize, b: usize) {
        assert_ne!(a, b);
        let ba = 1usize << a;
        let bb = 1usize << b;
        for i in 0..self.amps.len() {
            if i & ba == 0 && i & bb == 0 {
                let idx = [i, i | ba, i | bb, i | ba | bb];
                let v = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for (r, &out_i) in idx.iter().enumerate() {
                    let mut acc = ZERO;
                    for (c, &vc) in v.iter().enumerate() {
                        acc += m.0[r][c] * vc;
                    }
                    self.amps[out_i] = acc;
                }
            }
        }
    }

    /// Fast diagonal: `Rz(θ)` on `q`.
    pub fn apply_rz(&mut self, theta: f64, q: usize) {
        let bit = 1usize << q;
        let e0 = C64::cis(-theta / 2.0);
        let e1 = C64::cis(theta / 2.0);
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= if i & bit == 0 { e0 } else { e1 };
        }
    }

    /// Fast diagonal: `Rzz(θ)` on `(a, b)`.
    pub fn apply_rzz(&mut self, theta: f64, a: usize, b: usize) {
        let ba = 1usize << a;
        let bb = 1usize << b;
        let even = C64::cis(-theta / 2.0);
        let odd = C64::cis(theta / 2.0);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((i & ba != 0) as u8) ^ ((i & bb != 0) as u8);
            *amp *= if parity == 0 { even } else { odd };
        }
    }

    /// Probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projective Z measurement of `q`: collapses, renormalises, and
    /// returns the outcome.
    pub fn measure(&mut self, q: usize, rng: &mut impl RngExt) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.random::<f64>() < p1;
        self.project(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given outcome (collapse + renormalise).
    pub fn project(&mut self, q: usize, outcome: bool) {
        let bit = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & bit != 0) != outcome {
                *a = ZERO;
            }
        }
        self.renormalize();
    }

    /// Resets qubit `q` to |0⟩ (measure, then classical flip if 1).
    pub fn reset(&mut self, q: usize, rng: &mut impl RngExt) {
        let outcome = self.measure(q, rng);
        if outcome {
            self.apply_x(q);
        }
    }

    /// Pauli-X on qubit `q`: swaps the paired amplitudes directly, so
    /// the classical flip in [`Self::reset`] needs no gate matrix.
    pub fn apply_x(&mut self, q: usize) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                self.amps.swap(i, i | bit);
            }
        }
    }

    /// Expectation value of a signed Pauli string (real by Hermiticity).
    pub fn expect_pauli(&self, p: &PauliString) -> f64 {
        assert_eq!(p.paulis.len(), self.n);
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() < 1e-30 {
                continue;
            }
            // ⟨ψ|P|ψ⟩ = Σ_i conj(ψ_{j(i)})·phase_i·ψ_i where P|i⟩ = phase·|j⟩.
            let mut j = i;
            let mut phase = C64::real(1.0);
            for (q, pq) in p.paulis.iter().enumerate() {
                let bit = 1usize << q;
                let b = i & bit != 0;
                match pq {
                    Pauli::I => {}
                    Pauli::X => {
                        j ^= bit;
                    }
                    Pauli::Y => {
                        j ^= bit;
                        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                        phase *= if b {
                            C64::new(0.0, -1.0)
                        } else {
                            C64::new(0.0, 1.0)
                        };
                    }
                    Pauli::Z => {
                        if b {
                            phase = -phase;
                        }
                    }
                }
            }
            let term = self.amps[j].conj() * phase * *a;
            acc += term.re;
        }
        acc * p.sign as f64
    }

    /// Samples a full computational-basis bitstring without collapsing
    /// (returns the basis index).
    pub fn sample_index(&self, rng: &mut impl RngExt) -> usize {
        let r: f64 = rng.random::<f64>() * self.norm_sqr();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Applies one branch of a single-qubit Kraus channel, sampled with
    /// the Born weights (Monte-Carlo wavefunction step). The Kraus set
    /// must satisfy `Σ K†K = I`.
    pub fn apply_kraus_1q(&mut self, kraus: &[Mat2], q: usize, rng: &mut impl RngExt) {
        let r: f64 = rng.random();
        let mut acc = 0.0;
        for (idx, k) in kraus.iter().enumerate() {
            let w = self.branch_weight(k, q);
            acc += w;
            if r < acc || idx == kraus.len() - 1 {
                self.apply_1q(k, q);
                self.renormalize();
                return;
            }
        }
    }

    /// ‖K|ψ⟩‖² for a 1q operator K on qubit `q`.
    fn branch_weight(&self, k: &Mat2, q: usize) -> f64 {
        let bit = 1usize << q;
        let mut w = 0.0;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let n0 = k.0[0][0] * self.amps[i] + k.0[0][1] * self.amps[j];
                let n1 = k.0[1][0] * self.amps[i] + k.0[1][1] * self.amps[j];
                w += n0.norm_sqr() + n1.norm_sqr();
            }
        }
        w
    }

    /// Fidelity |⟨other|self⟩|².
    pub fn fidelity(&self, other: &State) -> f64 {
        let ip: C64 = self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| b.conj() * *a)
            .sum();
        ip.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-10;

    #[test]
    fn hadamard_makes_plus_state() {
        let mut s = State::zero(1);
        s.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        assert!((s.amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((s.amps[1].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((s.expect_pauli(&PauliString::parse("X").unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_state_via_cx() {
        let mut s = State::zero(2);
        s.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        s.apply_2q(&Gate::Cx.matrix2().unwrap(), 0, 1);
        assert!((s.expect_pauli(&PauliString::parse("ZZ").unwrap()) - 1.0).abs() < TOL);
        assert!((s.expect_pauli(&PauliString::parse("XX").unwrap()) - 1.0).abs() < TOL);
        assert!(s.expect_pauli(&PauliString::parse("ZI").unwrap()).abs() < TOL);
    }

    #[test]
    fn apply_2q_respects_qubit_order() {
        // CX with control 1, target 0 on |01⟩ (qubit1=0, qubit0=1):
        // index 1 → control clear → unchanged.
        let mut s = State::basis(2, 1);
        s.apply_2q(&Gate::Cx.matrix2().unwrap(), 1, 0);
        assert!(s.amps[1].approx_eq(ONE, TOL));
        // |10⟩ (index 2, qubit1=1): flips qubit 0 → |11⟩ (index 3).
        let mut s = State::basis(2, 2);
        s.apply_2q(&Gate::Cx.matrix2().unwrap(), 1, 0);
        assert!(s.amps[3].approx_eq(ONE, TOL));
    }

    #[test]
    fn rz_diag_matches_dense() {
        let mut a = State::zero(2);
        a.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        a.apply_1q(&Gate::H.matrix1().unwrap(), 1);
        let mut b = a.clone();
        a.apply_rz(0.37, 1);
        b.apply_1q(&Gate::Rz(0.37).matrix1().unwrap(), 1);
        for (x, y) in a.amps.iter().zip(b.amps.iter()) {
            assert!(x.approx_eq(*y, TOL));
        }
    }

    #[test]
    fn rzz_diag_matches_dense() {
        let mut a = State::zero(2);
        a.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        a.apply_1q(&Gate::H.matrix1().unwrap(), 1);
        let mut b = a.clone();
        a.apply_rzz(0.81, 0, 1);
        b.apply_2q(&Gate::Rzz(0.81).matrix2().unwrap(), 0, 1);
        for (x, y) in a.amps.iter().zip(b.amps.iter()) {
            assert!(x.approx_eq(*y, TOL));
        }
    }

    #[test]
    fn measurement_statistics() {
        let mut ones = 0;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let mut s = State::zero(1);
            s.apply_1q(&Gate::Ry(1.0).matrix1().unwrap(), 0);
            if s.measure(0, &mut rng) {
                ones += 1;
            }
        }
        let expect = (0.5f64).sin().powi(2); // sin²(θ/2), θ=1.
        let freq = ones as f64 / 2000.0;
        assert!((freq - expect).abs() < 0.04, "freq {freq} vs {expect}");
    }

    #[test]
    fn projection_collapses() {
        let mut s = State::zero(2);
        s.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        s.apply_2q(&Gate::Cx.matrix2().unwrap(), 0, 1);
        s.project(0, true);
        assert!((s.prob_one(1) - 1.0).abs() < TOL);
        assert!((s.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        // γ = 1: the excited state must fully decay to |0⟩.
        let g = 1.0f64;
        let k0 = Mat2([[ONE, ZERO], [ZERO, C64::real((1.0 - g).sqrt())]]);
        let k1 = Mat2([[ZERO, C64::real(g.sqrt())], [ZERO, ZERO]]);
        let mut s = State::basis(1, 1);
        let mut rng = StdRng::seed_from_u64(1);
        s.apply_kraus_1q(&[k0, k1], 0, &mut rng);
        assert!((s.prob_one(0)).abs() < TOL);
    }

    #[test]
    fn kraus_statistics_partial_damping() {
        let g = 0.3f64;
        let k0 = Mat2([[ONE, ZERO], [ZERO, C64::real((1.0 - g).sqrt())]]);
        let k1 = Mat2([[ZERO, C64::real(g.sqrt())], [ZERO, ZERO]]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut decayed = 0;
        for _ in 0..3000 {
            let mut s = State::basis(1, 1);
            s.apply_kraus_1q(&[k0, k1], 0, &mut rng);
            if s.prob_one(0) < 0.5 {
                decayed += 1;
            }
        }
        let freq = decayed as f64 / 3000.0;
        assert!((freq - g).abs() < 0.03, "freq {freq} vs {g}");
    }

    #[test]
    fn expect_pauli_y() {
        let mut s = State::zero(1);
        // S·H|0⟩ = |+i⟩, the +1 eigenstate of Y.
        s.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        s.apply_1q(&Gate::S.matrix1().unwrap(), 0);
        assert!((s.expect_pauli(&PauliString::parse("Y").unwrap()) - 1.0).abs() < TOL);
        // Signed string flips the expectation.
        assert!((s.expect_pauli(&PauliString::parse("-Y").unwrap()) + 1.0).abs() < TOL);
    }

    #[test]
    fn sample_index_distribution() {
        let mut s = State::zero(1);
        s.apply_1q(&Gate::H.matrix1().unwrap(), 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ones = 0;
        for _ in 0..2000 {
            ones += s.sample_index(&mut rng);
        }
        assert!((ones as f64 / 2000.0 - 0.5).abs() < 0.04);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = State::basis(1, 0);
        let b = State::basis(1, 1);
        assert!(a.fidelity(&b).abs() < TOL);
        assert!((a.fidelity(&a) - 1.0).abs() < TOL);
    }
}

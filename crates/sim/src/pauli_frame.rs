//! Stabilizer-engine shot sampler: one reference tableau run plus
//! per-shot Pauli frames, with the context-aware noise model mapped
//! onto Pauli-twirled stochastic channels.
//!
//! ## How noise survives the Clifford approximation
//!
//! The dense engine accumulates every coherent Z/ZZ phase in scalar
//! *pending banks* and applies them exactly. This engine keeps the
//! identical banks — same timeline segments, same signed-time echo
//! bookkeeping — but at each *flush point* converts the accumulated
//! angle θ into its Pauli twirl: a stochastic `Z` (or `Z⊗Z`) flip
//! with probability `sin²(θ/2)`. Two bank rules make the compiler
//! physics survive:
//!
//! * a 1q Clifford that conjugates `Z → ±Z` (X/Y DD pulses, virtual
//!   phases) does **not** flush; it toggles the bank sign, exactly as
//!   the pulse toggles the physical accumulation frame. Staggered DD
//!   and Walsh sequences therefore drive the banks to ~0 before any
//!   twirl happens — suppression is preserved *coherently*;
//! * basis-changing 1q gates (`H`, `Sx`…), entangling gates,
//!   measurements, and circuit end flush. Flushing at two-qubit gates
//!   is the paper's twirled-layer boundary: leftover coherent phases
//!   become stochastic Pauli noise there, which is precisely the
//!   approximation Pauli twirling makes physical.
//!
//! Decoherence is applied as the Pauli-twirl of amplitude damping
//! (`X`/`Y`/`Z` each with γ/4) plus pure dephasing; depolarizing gate
//! error and readout error are already Pauli/classical channels and
//! match the dense engine exactly.
//!
//! ## Factored pending banks and per-shot RNG streams
//!
//! Per qubit the Z bank is stored *factored* as `(θ_static, t_signed)`
//! — the deterministic phase plus the signed idle time that the
//! shot's stochastic Z rate multiplies at flush:
//! `θ = θ_static + phase_rad(rate, t_signed)`. Both components are
//! RNG-independent (sign toggles negate both), which is what lets the
//! bit-parallel [`crate::frame_batch`] engine precompute the entire
//! bank evolution once per plan and reproduce this sampler's flush
//! angles — and therefore its random draws — *bit for bit*. For the
//! same reason every shot's RNG is seeded from
//! [`crate::plan::shot_seed`]`(seed, shot_index)` alone: shot `i`
//! sees one fixed stream no matter how shots are chunked over threads
//! or packed into 64-lane words.
//!
//! ## Measurement randomness
//!
//! Shots reuse one reference tableau sample; a shot's outcome is the
//! reference bit XOR the frame's X component. The frame's Z component
//! is freshly randomized wherever `Z_q` stabilizes the state (at
//! initialisation and after every measurement/reset) — physically
//! invisible, but it supplies the per-shot randomness that later
//! collapses need (the Stim trick).
//!
//! ## Classical feed-forward
//!
//! Dynamic circuits are first-class. A conditional **Pauli** gate is
//! exact: the reference run keeps its own classical register and
//! fires the gate against *its* recorded bits, and a shot whose
//! recorded bit disagrees with the reference's multiplies the Pauli
//! into its frame — precisely the operator by which the two
//! evolutions then differ. `Reset` is the same mechanism fused
//! (measure, then X when excited). A conditional **diagonal
//! rotation** (the outcome-conditioned `Rz` of CA-EC's Fig. 9b
//! compensation) is rewritten against the measured source qubit:
//! firing on `m` means applying `exp(−i(θ/2)·Z_q·(I∓Z_src)/2)`, an
//! unconditional local-plus-edge bank term that cancels coherently
//! against the crosstalk phases accrued during the measurement
//! window — the cancellation CA-EC exists to deliver — before any
//! twirl happens. Unconditional diagonal rotations of arbitrary
//! angle (`Rz`, `Rzz`, `T`) likewise fold into the banks. What stays
//! out of reach is a conditional that wraps a non-Pauli,
//! non-diagonal gate (`H`, `Sx`, `Rx(θ)`, any 2q conditional): the
//! deviation between fired and unfired shots is not a Pauli, and
//! [`stabilizer_check`] reports it as a structured error.

use crate::error::SimError;
use crate::executor::{pack_bits, Simulator};
use crate::insert::InsertionSet;
use crate::noise::{damping_prob, dephasing_prob, t_phi_us, ShotNoise};
use crate::plan::{
    bern_theta, bern_threshold, damping_thresholds, fair_plane, lt_lane, map_shots_indexed, pick,
    shot_key, site, site_draw, ExecutionPlan, PlanOp, SeedSchedule,
};
use crate::result::{PauliFlips, RunResult};
use crate::stabilizer::{pack_pauli, pauli_from_bits, pauli_to_bits, Tableau};
use ca_circuit::clifford::{conjugation_table_1q, conjugation_table_2q, Table2Q};
use ca_circuit::pauli::{Pauli, PauliString};
use ca_circuit::{Gate, ScheduledCircuit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// First classical-bit index the frame engines' conditionals cannot
/// read (conditions are evaluated against a packed 64-bit key).
pub const COND_CLBIT_MAX: usize = 64;

/// True when the stabilizer engine can execute the scheduled circuit:
/// every unconditional gate is a Clifford or a diagonal rotation
/// (folded into the coherent banks), and every feed-forward condition
/// wraps a Pauli gate (applied exactly) or a single-qubit diagonal
/// rotation (rewritten into bank terms against the measured source).
pub fn stabilizer_supports(sc: &ScheduledCircuit) -> bool {
    stabilizer_check(sc).is_ok()
}

/// [`stabilizer_supports`] with the blocking construct named: `Err`
/// carries the first gate (or conditional construct) that rules the
/// frame representation out.
pub fn stabilizer_check(sc: &ScheduledCircuit) -> Result<(), SimError> {
    crate::engine::check_gate_arities(sc)?;
    for si in &sc.items {
        let g = si.instruction.gate;
        if let Some(cond) = si.instruction.condition {
            if cond.clbit >= COND_CLBIT_MAX {
                return Err(SimError::ConditionalClbitOutOfRange {
                    clbit: cond.clbit,
                    max: COND_CLBIT_MAX,
                });
            }
            let supported =
                g.is_pauli() || (g.is_unitary() && g.num_qubits() == 1 && g.is_diagonal());
            if !supported {
                return Err(SimError::UnsupportedConditional { gate: g.name() });
            }
            continue;
        }
        if !is_structural(g) && !g.is_clifford() && !g.is_diagonal() {
            return Err(SimError::NotClifford { gate: g.name() });
        }
    }
    Ok(())
}

/// Non-unitary circuit-structure ops both support predicates admit.
fn is_structural(g: Gate) -> bool {
    matches!(
        g,
        Gate::Measure | Gate::Reset | Gate::Delay(_) | Gate::Barrier
    )
}

/// True when the circuit is *static Clifford*: no feed-forward and
/// every gate exactly Clifford — the class both frame engines
/// represented before conditional and diagonal-bank support landed.
/// Noise learning pins its frame-batch fast path with this stricter
/// predicate so that learning circuits carrying arbitrary-angle
/// diagonal compensations (CA-EC) keep running on the exact dense
/// engine at small sizes instead of silently switching to the
/// twirled bank model.
pub fn clifford_supports(sc: &ScheduledCircuit) -> bool {
    sc.items.iter().all(|si| {
        let g = si.instruction.gate;
        si.instruction.condition.is_none() && (is_structural(g) || g.is_clifford())
    })
}

/// The `Rz`-equivalent rotation angle of a single-qubit diagonal
/// unitary (up to global phase): the angle the frame engines fold
/// into the qubit's coherent Z bank.
fn diagonal_angle_1q(gate: Gate) -> Option<f64> {
    match gate {
        Gate::I => Some(0.0),
        Gate::Z => Some(std::f64::consts::PI),
        Gate::S => Some(std::f64::consts::FRAC_PI_2),
        Gate::Sdg => Some(-std::f64::consts::FRAC_PI_2),
        Gate::T => Some(std::f64::consts::FRAC_PI_4),
        Gate::Tdg => Some(-std::f64::consts::FRAC_PI_4),
        Gate::Rz(t) => Some(t),
        _ => None,
    }
}

/// The Pauli a conditional Pauli gate injects.
fn pauli_of(gate: Gate) -> Option<Pauli> {
    match gate {
        Gate::I => Some(Pauli::I),
        Gate::X => Some(Pauli::X),
        Gate::Y => Some(Pauli::Y),
        Gate::Z => Some(Pauli::Z),
        _ => None,
    }
}

/// Per-item precomputed frame action.
pub(crate) enum ItemOp {
    One {
        q: usize,
        /// Shared conjugation table (one allocation per distinct gate
        /// per plan, refcounted across items and re-dressed plans).
        table: Arc<[(i8, Pauli); 4]>,
        /// `Some(s)` when the gate conjugates `Z → s·Z` (bank toggles,
        /// no flush); `None` when it changes basis (flush first).
        z_sign: Option<i8>,
    },
    Two {
        a: usize,
        b: usize,
        /// Shared conjugation table (see [`ItemOp::One::table`]).
        table: Arc<Table2Q>,
        diagonal: bool,
    },
    /// Conditional Pauli gate — exact classical feed-forward. The
    /// reference run applies the Pauli when *its* recorded bit
    /// matches `value`; a shot whose recorded bit disagrees with the
    /// reference's multiplies the Pauli into its frame (the two
    /// evolutions then differ by exactly that Pauli).
    CondPauli {
        q: usize,
        pauli: Pauli,
        clbit: usize,
        value: bool,
        /// Whether the reference run fired the gate (resolved during
        /// the reference pass in plan order).
        ref_fired: bool,
        /// True for physical pulses (X/Y): the qubit's banks flush
        /// first (the bank evolution must stay shot-independent, so
        /// a per-shot sign toggle is not an option) and a fired shot
        /// draws the 1q depolarizing error.
        physical: bool,
    },
    /// Virtual diagonal rotation folded into the qubit's coherent Z
    /// bank: cancels coherently against accrued crosstalk phases
    /// (the CA-EC mechanism) and twirls with the rest of the bank at
    /// the next flush.
    BankRz { q: usize, theta: f64 },
    /// Diagonal ZZ rotation folded into an edge bank, plus the
    /// pulse-stretched gate's own two-qubit depolarizing draw.
    BankRzz {
        a: usize,
        b: usize,
        edge: usize,
        theta: f64,
    },
    /// Conditional diagonal rotation rewritten against the measured
    /// source qubit `a` (which stays collapsed in its post-measurement
    /// eigenstate): firing on `m = 1` means applying
    /// `exp(−i(θ/2)·Z_q·(I−Z_a)/2)`, i.e. `Rz(θ/2)` on `q` plus
    /// `Rzz(∓θ/2)` on the `(a, q)` edge — two shot-independent bank
    /// terms. Exact before the twirl whenever the source qubit is not
    /// re-excited before the edge bank flushes; conditions therefore
    /// act on the measured *state* (readout-error flips on the
    /// recorded bit are not seen by this path).
    CondBankRz {
        q: usize,
        theta: f64,
        edge: Option<(usize, f64)>,
    },
}

/// The frame-simulation plan: the shared [`ExecutionPlan`] plus the
/// reference tableau run and per-item conjugation tables.
///
/// Owns its data (the circuit and timeline plan sit behind [`Arc`]s),
/// so frame plans are cacheable `Send + Sync` artifacts. Twirl
/// instances of one schedule share the `Arc<ExecutionPlan>` — the
/// timeline segments are twirl-independent — while each instance
/// carries its own item ops and reference run (see
/// [`crate::session::CompiledCircuit::redress`]).
pub struct FramePlan {
    /// The circuit this plan executes. Equal to `plan.sc` except for
    /// re-dressed twirl instances, where merged Pauli slots differ
    /// (the timeline is unaffected — merged gates are zero-width and
    /// error-free).
    pub(crate) sc: Arc<ScheduledCircuit>,
    pub(crate) plan: Arc<ExecutionPlan>,
    /// Frame action per scheduled item (None for structural ops).
    pub(crate) items: Vec<Option<ItemOp>>,
    /// Reference measurement outcomes, in plan (time) order.
    pub(crate) ref_outcomes: Vec<bool>,
    /// Reference tableau after the full circuit (for expectations).
    pub(crate) ref_tableau: Tableau,
    pub(crate) words: usize,
    /// Per-qubit flag: true when some item op can flush or negate the
    /// qubit's pending bank mid-stream. Only these qubits accrue
    /// signed time segment by segment; every other qubit's bank is
    /// read exactly once (at the final flush), so its accrual
    /// collapses to one shared idle scalar — idle sign is +1, making
    /// the shared accumulator's f64 add sequence identical to the
    /// dense per-qubit walk it replaces.
    pub(crate) streamed: Vec<bool>,
    /// Indices where `streamed` is true, ascending.
    pub(crate) streamed_list: Vec<usize>,
}

/// Exact cache key for conjugation tables: gate mnemonic plus the
/// angle's bit pattern (zero for parameterless gates).
fn table_key(gate: &Gate) -> (&'static str, u64) {
    let angle = match *gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Rzz(t) => t,
        _ => 0.0,
    };
    (gate.name(), angle.to_bits())
}

impl FramePlan {
    /// Builds the plan and executes the noiseless reference run.
    /// Fails with a structured [`SimError`] — never a panic — when the
    /// circuit is outside the tableau representation (non-Clifford,
    /// feed-forward, or an instruction whose operand count does not
    /// match its gate's arity).
    pub fn build(sim: &Simulator, sc: &ScheduledCircuit, seed: u64) -> Result<Self, SimError> {
        let sc = Arc::new(sc.clone());
        let plan = Arc::new(ExecutionPlan::build_arc(
            sc.clone(),
            &sim.device,
            &sim.config,
        )?);
        Self::build_with_plan(sc, plan, seed, sim.schedule)
    }

    /// Builds the frame plan over a prebuilt (possibly shared)
    /// timeline plan. `sc` may differ from `plan.sc` only at merged
    /// single-qubit Pauli slots — the re-dressed-twirl contract; the
    /// timeline, item indices, and op stream are identical by
    /// construction there.
    pub(crate) fn build_with_plan(
        sc: Arc<ScheduledCircuit>,
        plan: Arc<ExecutionPlan>,
        seed: u64,
        schedule: SeedSchedule,
    ) -> Result<Self, SimError> {
        let _s = ca_obs::span("sim.compile", "frame-plan");
        stabilizer_check(&sc)?;
        let mut cache1: BTreeMap<(&'static str, u64), Arc<[(i8, Pauli); 4]>> = BTreeMap::new();
        let mut cache2: BTreeMap<(&'static str, u64), Arc<Table2Q>> = BTreeMap::new();
        let mut items = Vec::with_capacity(sc.items.len());
        for (i, si) in sc.items.iter().enumerate() {
            let gate = si.instruction.gate;
            if !gate.is_unitary() || gate == Gate::Barrier {
                items.push(None);
                continue;
            }
            if let Some(cond) = si.instruction.condition {
                let q = si.instruction.qubits[0];
                let op = if let Some(pauli) = pauli_of(gate) {
                    ItemOp::CondPauli {
                        q,
                        pauli,
                        clbit: cond.clbit,
                        value: cond.value,
                        ref_fired: false,
                        physical: !gate.is_virtual(),
                    }
                } else {
                    // `stabilizer_check` admitted it, so it is a 1q
                    // diagonal rotation: rewrite against the measured
                    // source qubit (see [`ItemOp::CondBankRz`]). A
                    // gate that is diagonal but unknown to the angle
                    // table stays a structured error, never a panic.
                    let theta = diagonal_angle_1q(gate)
                        .ok_or(SimError::UnsupportedConditional { gate: gate.name() })?;
                    match plan.cond_source.get(&i).copied().flatten() {
                        Some(aux) if aux != q => {
                            let edge = plan.edge_index[&(aux.min(q), aux.max(q))];
                            let th_edge = if cond.value {
                                -theta / 2.0
                            } else {
                                theta / 2.0
                            };
                            ItemOp::CondBankRz {
                                q,
                                theta: theta / 2.0,
                                edge: Some((edge, th_edge)),
                            }
                        }
                        // Conditioned on the target's own measurement:
                        // the edge term collapses to a global phase.
                        Some(_) => ItemOp::CondBankRz {
                            q,
                            theta: theta / 2.0,
                            edge: None,
                        },
                        // Bit never written before this point: the
                        // condition resolves statically against 0.
                        None => ItemOp::CondBankRz {
                            q,
                            theta: if cond.value { 0.0 } else { theta },
                            edge: None,
                        },
                    }
                };
                items.push(Some(op));
                continue;
            }
            if !gate.is_clifford() {
                // `stabilizer_check` admitted it, so it is diagonal:
                // fold the rotation into the coherent banks. Gates
                // outside the angle tables stay structured errors,
                // never panics.
                let op = match si.instruction.qubits.len() {
                    1 => ItemOp::BankRz {
                        q: si.instruction.qubits[0],
                        theta: diagonal_angle_1q(gate)
                            .ok_or(SimError::NotClifford { gate: gate.name() })?,
                    },
                    _ => {
                        let Gate::Rzz(theta) = gate else {
                            return Err(SimError::NotClifford { gate: gate.name() });
                        };
                        let (a, b) = (si.instruction.qubits[0], si.instruction.qubits[1]);
                        ItemOp::BankRzz {
                            a,
                            b,
                            edge: plan.edge_index[&(a.min(b), a.max(b))],
                            theta,
                        }
                    }
                };
                items.push(Some(op));
                continue;
            }
            let op = match si.instruction.qubits.len() {
                1 => {
                    let table = cache1
                        .entry(table_key(&gate))
                        .or_insert_with(|| Arc::new(conjugation_table_1q(gate)))
                        .clone();
                    let z_sign = match table[Pauli::Z.index()] {
                        (s, Pauli::Z) => Some(s),
                        _ => None,
                    };
                    ItemOp::One {
                        q: si.instruction.qubits[0],
                        table,
                        z_sign,
                    }
                }
                2 => {
                    let table = cache2
                        .entry(table_key(&gate))
                        .or_insert_with(|| Arc::new(conjugation_table_2q(gate)))
                        .clone();
                    ItemOp::Two {
                        a: si.instruction.qubits[0],
                        b: si.instruction.qubits[1],
                        table,
                        diagonal: gate.is_diagonal(),
                    }
                }
                got => {
                    // Unreachable after `stabilizer_check`, but kept as
                    // a structured error so no caller path can panic.
                    return Err(SimError::UnsupportedGateArity {
                        gate: gate.name(),
                        expected: gate.num_qubits(),
                        got,
                    });
                }
            };
            items.push(Some(op));
        }

        // Reference run: the *noiseless* circuit on the tableau. The
        // reference carries its own classical register so conditional
        // Paulis fire against the reference's recorded bits; bank
        // rotations are invisible here (they live frame-side).
        //
        // Under schedule v2 the Pauli gates of the circuit (DD pulses,
        // twirl dressing — the bulk of a DD-compiled workload) are not
        // applied to the tableau at all: they accumulate in a packed
        // Pauli *skeleton* frame that later gates conjugate in O(1),
        // measurements XOR into their recorded outcome, and one final
        // sweep folds into the tableau signs. The circuit-level
        // semantics are identical; only the mapping of the reference
        // RNG stream onto random-outcome measurements is re-anchored,
        // which is exactly the freedom the v2 re-baseline grants. The
        // v1 path keeps the gate-by-gate tableau walk bit-for-bit.
        let skel = schedule == SeedSchedule::V2;
        let pauli1: Vec<Option<(bool, bool)>> = if skel {
            sc.items
                .iter()
                .zip(&items)
                .map(|(si, it)| match it {
                    Some(ItemOp::One { .. }) => pauli_of(si.instruction.gate).map(pauli_to_bits),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        let words = sc.num_qubits.div_ceil(64);
        let mut skx = vec![0u64; words];
        let mut skz = vec![0u64; words];
        let mut tableau = Tableau::zero(sc.num_qubits);
        let mut ref_rng = StdRng::seed_from_u64(seed ^ 0xC1F0_0D5E_ED00_55AA);
        let x_table = conjugation_table_1q(Gate::X);
        let y_table = conjugation_table_1q(Gate::Y);
        let z_table = conjugation_table_1q(Gate::Z);
        let mut ref_bits = vec![false; sc.num_clbits.max(1)];
        let mut ref_outcomes = Vec::new();
        macro_rules! sk_get {
            ($q:expr) => {
                pauli_from_bits(
                    skx[$q / 64] >> ($q % 64) & 1 == 1,
                    skz[$q / 64] >> ($q % 64) & 1 == 1,
                )
            };
        }
        macro_rules! sk_set {
            ($q:expr, $p:expr) => {{
                let (x, z) = pauli_to_bits($p);
                skx[$q / 64] = skx[$q / 64] & !(1 << ($q % 64)) | (x as u64) << ($q % 64);
                skz[$q / 64] = skz[$q / 64] & !(1 << ($q % 64)) | (z as u64) << ($q % 64);
            }};
        }
        for op in &plan.ops {
            match *op {
                PlanOp::Segment(_) => {}
                // ca-lint: allow(panic) -- plan construction guarantees unitary items at Apply ops
                PlanOp::Apply { item } => match items[item].as_mut().expect("unitary item") {
                    ItemOp::One { q, table, .. } => {
                        if skel {
                            if let Some((px, pz)) = pauli1[item] {
                                skx[*q / 64] ^= (px as u64) << (*q % 64);
                                skz[*q / 64] ^= (pz as u64) << (*q % 64);
                                continue;
                            }
                            // Conjugate the skeleton letter through the
                            // gate (its sign is a global phase).
                            let (_, np) = table[sk_get!(*q).index()];
                            sk_set!(*q, np);
                        }
                        tableau.apply_1q(table, *q);
                    }
                    ItemOp::Two { a, b, table, .. } => {
                        if skel {
                            let (_, (na, nb)) =
                                table[sk_get!(*a).index() + 4 * sk_get!(*b).index()];
                            sk_set!(*a, na);
                            sk_set!(*b, nb);
                        }
                        tableau.apply_2q(table, *a, *b);
                    }
                    ItemOp::CondPauli {
                        q,
                        pauli,
                        clbit,
                        value,
                        ref_fired,
                        ..
                    } => {
                        let fired = ref_bits[*clbit] == *value;
                        *ref_fired = fired;
                        if fired {
                            if skel {
                                let (px, pz) = pauli_to_bits(*pauli);
                                skx[*q / 64] ^= (px as u64) << (*q % 64);
                                skz[*q / 64] ^= (pz as u64) << (*q % 64);
                            } else {
                                match pauli {
                                    Pauli::I => {}
                                    Pauli::X => tableau.apply_1q(&x_table, *q),
                                    Pauli::Y => tableau.apply_1q(&y_table, *q),
                                    Pauli::Z => tableau.apply_1q(&z_table, *q),
                                }
                            }
                        }
                    }
                    ItemOp::BankRz { .. } | ItemOp::BankRzz { .. } | ItemOp::CondBankRz { .. } => {}
                },
                PlanOp::Project { item } => {
                    let si = &sc.items[item];
                    let q = si.instruction.qubits[0];
                    match si.instruction.gate {
                        Gate::Measure => {
                            let mut outcome = tableau.measure(q, &mut ref_rng);
                            if skel {
                                // The skeleton's X component flips the
                                // Z-basis outcome; the frame itself is
                                // untouched by the projection.
                                outcome ^= skx[q / 64] >> (q % 64) & 1 == 1;
                            }
                            if let Some(c) = si.instruction.clbit {
                                ref_bits[c] = outcome;
                            }
                            ref_outcomes.push(outcome);
                        }
                        Gate::Reset => {
                            tableau.reset(q, &mut ref_rng, &x_table);
                            if skel {
                                // Reset re-pins the *true* state to
                                // |0⟩: the deferred frame at q is dead.
                                skx[q / 64] &= !(1 << (q % 64));
                                skz[q / 64] &= !(1 << (q % 64));
                            }
                        }
                        _ => unreachable!(), // ca-lint: allow(panic) -- plan construction guarantees the op kind at this slot
                    }
                }
            }
        }
        if skel {
            tableau.conjugate_by_pauli(&skx, &skz);
        }

        let words = sc.num_qubits.div_ceil(64);
        let mut streamed = vec![false; sc.num_qubits];
        for op in plan.ops.iter() {
            if let PlanOp::Project { item } | PlanOp::Apply { item } = *op {
                for &q in &sc.items[item].instruction.qubits {
                    streamed[q] = true;
                }
            }
        }
        let streamed_list: Vec<usize> = (0..sc.num_qubits).filter(|&q| streamed[q]).collect();
        Ok(Self {
            sc,
            plan,
            items,
            ref_outcomes,
            ref_tableau: tableau,
            words,
            streamed,
            streamed_list,
        })
    }

    /// Runs one shot: propagates a Pauli frame with sampled noise and
    /// returns `(frame_x, frame_z, classical bits)`. `shot_idx` is the
    /// global shot index, used only to look up the shot's Pauli
    /// insertions in `ins` — applying an insertion is an RNG-free
    /// frame XOR, so the random stream is untouched by it.
    fn shot(
        &self,
        sim: &Simulator,
        rng: &mut StdRng,
        shot_idx: usize,
        ins: &InsertionSet,
    ) -> (Vec<u64>, Vec<u64>, Vec<bool>) {
        let n = self.sc.num_qubits;
        let config = &sim.config;
        // Coarse phase attribution for the serial engine: the
        // shot-start noise draws go to `engine/sampling`, the whole
        // shot to `engine/shot` (flush-time draws interleave with
        // frame updates too finely to split here; the batch engine
        // provides the full sampling/propagation breakdown). Clock
        // reads only — never RNG.
        let t_start = ca_obs::enabled().then(std::time::Instant::now); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
        let shot = ShotNoise::sample(&sim.device, config, rng);
        let mut fx = vec![0u64; self.words];
        let mut fz = vec![0u64; self.words];
        // Initial Z-frame randomization: Z stabilizes |0…0⟩.
        randomize_z_all(&mut fz, n, rng);
        if let Some(t0) = t_start {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            ca_obs::observe_ns("engine", "sampling", ns);
        }
        let mut bits = vec![false; self.sc.num_clbits.max(1)];
        // Factored Z banks (see the module docs): deterministic phase
        // plus signed time, combined with the shot's stochastic rate
        // only at flush. ZZ banks have no stochastic part.
        let mut pend_stat = vec![0.0f64; n];
        let mut pend_time = vec![0.0f64; n];
        let mut pend_rzz = vec![0.0f64; self.plan.edge_pairs.len()];
        let mut deco_dt = vec![0.0f64; n];
        let mut idle_elapsed = 0.0f64;
        let mut meas_i = 0usize;

        macro_rules! flush_qubit {
            ($q:expr, $rng:expr) => {{
                let q = $q;
                let theta = pend_stat[q]
                    + ca_device::phase_rad(shot.z_rate_khz(&sim.device, q), pend_time[q]);
                pend_stat[q] = 0.0;
                pend_time[q] = 0.0;
                if theta.abs() > 1e-15 && $rng.random::<f64>() < (theta / 2.0).sin().powi(2) {
                    toggle(&mut fz, q);
                }
                for &e in &self.plan.incident[q] {
                    let th = pend_rzz[e];
                    if th.abs() > 1e-15 {
                        pend_rzz[e] = 0.0;
                        if $rng.random::<f64>() < (th / 2.0).sin().powi(2) {
                            let (a, b) = self.plan.edge_pairs[e];
                            toggle(&mut fz, a);
                            toggle(&mut fz, b);
                        }
                    }
                }
                if config.decoherence && deco_dt[q] > 0.0 {
                    let cal = &sim.device.calibration.qubits[q];
                    let dt = deco_dt[q];
                    deco_dt[q] = 0.0;
                    // Pauli twirl of amplitude damping: X, Y, Z each γ/4.
                    let gamma = damping_prob(dt, cal.t1_us);
                    if gamma > 0.0 {
                        let r: f64 = $rng.random();
                        if r < gamma / 4.0 {
                            toggle(&mut fx, q);
                        } else if r < gamma / 2.0 {
                            toggle(&mut fx, q);
                            toggle(&mut fz, q);
                        } else if r < 3.0 * gamma / 4.0 {
                            toggle(&mut fz, q);
                        }
                    }
                    let p_z = dephasing_prob(dt, t_phi_us(cal.t1_us, cal.t2_us));
                    if p_z > 0.0 && $rng.random::<f64>() < p_z {
                        toggle(&mut fz, q);
                    }
                }
            }};
        }

        for op in &self.plan.ops {
            match *op {
                PlanOp::Segment(i) => {
                    let seg = &self.plan.segments[i];
                    for &(q, th) in &seg.rz_static {
                        pend_stat[q] += th;
                    }
                    for &(e, th) in &self.plan.seg_edges[i] {
                        pend_rzz[e] += th;
                    }
                    let dt = seg.dt();
                    idle_elapsed += dt;
                    for &q in &self.streamed_list {
                        pend_time[q] += seg.signed_dt(q);
                        deco_dt[q] += dt;
                    }
                }
                PlanOp::Project { item } => {
                    let si = &self.sc.items[item];
                    let q = si.instruction.qubits[0];
                    flush_qubit!(q, rng);
                    match si.instruction.gate {
                        Gate::Measure => {
                            let reference = self.ref_outcomes[meas_i];
                            meas_i += 1;
                            let mut outcome = reference ^ get(&fx, q);
                            if config.readout_error {
                                let p = sim.device.calibration.qubits[q].readout_err;
                                if rng.random::<f64>() < p {
                                    outcome = !outcome;
                                }
                            }
                            if let Some(c) = si.instruction.clbit {
                                bits[c] = outcome;
                            }
                            // Post-collapse Z randomization.
                            set(&mut fz, q, rng.random::<bool>());
                        }
                        Gate::Reset => {
                            set(&mut fx, q, false);
                            set(&mut fz, q, rng.random::<bool>());
                        }
                        _ => unreachable!(), // ca-lint: allow(panic) -- plan construction guarantees the op kind at this slot
                    }
                }
                PlanOp::Apply { item } => {
                    let si = &self.sc.items[item];
                    // ca-lint: allow(panic) -- plan construction guarantees unitary items at Apply ops
                    match self.items[item].as_ref().expect("unitary item") {
                        ItemOp::CondPauli {
                            q,
                            pauli,
                            clbit,
                            value,
                            ref_fired,
                            physical,
                        } => {
                            let q = *q;
                            if *physical {
                                // Feed-forward is a twirled-layer
                                // boundary: banks flush so their
                                // evolution stays shot-independent.
                                flush_qubit!(q, rng);
                            }
                            let fired = bits[*clbit] == *value;
                            if fired != *ref_fired {
                                inject(&mut fx, &mut fz, q, *pauli);
                            }
                            if *physical && config.gate_error && fired {
                                let p = sim.device.calibration.qubits[q].gate_err_1q;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(0..3usize);
                                    inject(&mut fx, &mut fz, q, [Pauli::X, Pauli::Y, Pauli::Z][k]);
                                }
                            }
                        }
                        ItemOp::BankRz { q, theta } => {
                            pend_stat[*q] += *theta;
                        }
                        ItemOp::BankRzz { a, b, edge, theta } => {
                            pend_rzz[*edge] += *theta;
                            if config.gate_error {
                                let scale = self
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                let p = sim.device.calibration.gate_err_2q(*a, *b) * scale;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(1..16usize);
                                    inject(&mut fx, &mut fz, *a, Pauli::from_index(k % 4));
                                    inject(&mut fx, &mut fz, *b, Pauli::from_index(k / 4));
                                }
                            }
                        }
                        ItemOp::CondBankRz { q, theta, edge } => {
                            pend_stat[*q] += *theta;
                            if let Some((e, th)) = edge {
                                pend_rzz[*e] += *th;
                            }
                        }
                        ItemOp::One { q, table, z_sign } => {
                            let q = *q;
                            match z_sign {
                                Some(s) => {
                                    if *s < 0 {
                                        // Z-preserving pulse (X/Y): the bank
                                        // toggles with the physical frame.
                                        pend_stat[q] = -pend_stat[q];
                                        pend_time[q] = -pend_time[q];
                                        for &e in &self.plan.incident[q] {
                                            pend_rzz[e] = -pend_rzz[e];
                                        }
                                    }
                                }
                                None => flush_qubit!(q, rng),
                            }
                            let p = get_pauli(&fx, &fz, q);
                            let (_, p2) = table[p.index()];
                            set_pauli(&mut fx, &mut fz, q, p2);
                            if config.gate_error
                                && !si.instruction.gate.is_virtual()
                                && !si.instruction.merged
                            {
                                let p = sim.device.calibration.qubits[q].gate_err_1q;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(0..3usize);
                                    inject(&mut fx, &mut fz, q, [Pauli::X, Pauli::Y, Pauli::Z][k]);
                                }
                            }
                        }
                        ItemOp::Two {
                            a,
                            b,
                            table,
                            diagonal,
                        } => {
                            let (a, b) = (*a, *b);
                            if !diagonal {
                                // Twirled-layer boundary: leftover
                                // coherent phases become Pauli noise here.
                                flush_qubit!(a, rng);
                                flush_qubit!(b, rng);
                            }
                            let pa = get_pauli(&fx, &fz, a);
                            let pb = get_pauli(&fx, &fz, b);
                            let (_, (qa, qb)) = table[pa.index() + 4 * pb.index()];
                            set_pauli(&mut fx, &mut fz, a, qa);
                            set_pauli(&mut fx, &mut fz, b, qb);
                            if config.gate_error {
                                let scale = self
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                let p = sim.device.calibration.gate_err_2q(a, b) * scale;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(1..16usize);
                                    inject(&mut fx, &mut fz, a, Pauli::from_index(k % 4));
                                    inject(&mut fx, &mut fz, b, Pauli::from_index(k / 4));
                                }
                            }
                        }
                    }
                    // Scheduled per-shot Pauli insertions (PEC): pure
                    // frame XORs after the item's own error draws.
                    for &(_, q, p) in ins.for_shot(item, shot_idx) {
                        inject(&mut fx, &mut fz, q, p);
                    }
                }
            }
        }
        for q in 0..n {
            if !self.streamed[q] {
                // Settle the deferred idle accrual (see `streamed`).
                pend_time[q] = idle_elapsed;
                deco_dt[q] = idle_elapsed;
            }
            flush_qubit!(q, rng);
        }
        if let Some(t0) = t_start {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            ca_obs::observe_ns("engine", "shot", ns);
        }
        (fx, fz, bits)
    }

    /// [`Self::shot`] under seed-schedule v2: every draw is a pure
    /// hash of `(seed, shot, site)` where the site id names the
    /// draw's structural location (noise class, plan-op index,
    /// qubit/edge — see [`crate::plan::site`]). Draws are therefore
    /// order-independent: this path may evaluate a different *number*
    /// of random values than the batch engine (e.g. structurally
    /// empty flushes, unfired gate errors) without shifting any other
    /// decision, which is exactly the freedom the bit-sliced batch
    /// sampler exploits. Ladder draws ([`lt_lane`]) read single lane
    /// bits of the same bit-planes the batch engine compares 64 lanes
    /// at a time; per-lane-threshold draws (`FLUSH_Z`) walk the same
    /// ladder with this lane's own `bern_theta` threshold, which the
    /// batch engine evaluates code-group by code-group.
    fn shot_v2(
        &self,
        sim: &Simulator,
        seed: u64,
        shot_idx: usize,
        ins: &InsertionSet,
    ) -> (Vec<u64>, Vec<u64>, Vec<bool>) {
        let n = self.sc.num_qubits;
        let config = &sim.config;
        let t_start = ca_obs::enabled().then(std::time::Instant::now); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
        let shot = ShotNoise::sample_v2(&sim.device, config, seed, shot_idx as u64);
        // Per-shot and per-word stream keys: direct draws complete
        // `shot_site_seed` from `skey`; ladder/fair draws complete
        // `plane_base` from `wkey` and read this shot's lane bit.
        let skey = shot_key(seed, shot_idx as u64);
        let wkey = shot_key(seed, (shot_idx / 64) as u64);
        let lane = (shot_idx % 64) as u32;
        let mut fx = vec![0u64; self.words];
        let mut fz = vec![0u64; self.words];
        // Initial Z-frame randomization: Z stabilizes |0…0⟩.
        for q in 0..n {
            let b = fair_plane(site_draw(wkey, site::id(site::INIT_Z, 0, q)));
            set(&mut fz, q, b >> lane & 1 == 1);
        }
        if let Some(t0) = t_start {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            ca_obs::observe_ns("engine", "sampling", ns);
        }
        let mut bits = vec![false; self.sc.num_clbits.max(1)];
        let mut pend_stat = vec![0.0f64; n];
        let mut pend_time = vec![0.0f64; n];
        let mut pend_rzz = vec![0.0f64; self.plan.edge_pairs.len()];
        let mut deco_dt = vec![0.0f64; n];
        let mut idle_elapsed = 0.0f64;
        let mut meas_i = 0usize;

        // Ladder draw (compile-constant threshold): this shot's lane
        // bit of the site's bit-planes.
        macro_rules! lt {
            ($site:expr, $t:expr) => {
                lt_lane(site_draw(wkey, $site), lane, $t)
            };
        }
        // Fair coin: lane bit of the site's plane 0.
        macro_rules! fair {
            ($site:expr) => {
                fair_plane(site_draw(wkey, $site)) >> lane & 1 == 1
            };
        }

        macro_rules! flush_qubit {
            ($q:expr, $op:expr) => {{
                let q = $q;
                let theta = pend_stat[q]
                    + ca_device::phase_rad(shot.z_rate_khz(&sim.device, q), pend_time[q]);
                pend_stat[q] = 0.0;
                pend_time[q] = 0.0;
                // Per-lane threshold over shared planes: the rate (and
                // hence θ) varies by lane, but the ladder compares
                // each lane's bit of the *same* site planes against
                // its own threshold — the batch engine groups lanes by
                // noise code and walks the identical ladder word-wide.
                // `bern_theta` folds in the |θ| dead-zone.
                let t = bern_theta(theta);
                if t > 0 && lt!(site::id(site::FLUSH_Z, $op, q), t) {
                    toggle(&mut fz, q);
                }
                for &e in &self.plan.incident[q] {
                    let th = pend_rzz[e];
                    if th.abs() > 1e-15 {
                        pend_rzz[e] = 0.0;
                        if lt!(site::id(site::FLUSH_ZZ, $op, e), bern_theta(th)) {
                            let (a, b) = self.plan.edge_pairs[e];
                            toggle(&mut fz, a);
                            toggle(&mut fz, b);
                        }
                    }
                }
                if config.decoherence && deco_dt[q] > 0.0 {
                    let cal = &sim.device.calibration.qubits[q];
                    let dt = deco_dt[q];
                    deco_dt[q] = 0.0;
                    // Pauli twirl of amplitude damping: one uniform
                    // against γ/4, γ/2, 3γ/4 (X / Y / Z bands).
                    let gamma = damping_prob(dt, cal.t1_us);
                    if gamma > 0.0 {
                        let ts = damping_thresholds(gamma);
                        let base = site_draw(wkey, site::id(site::DECO_DAMP, $op, q));
                        let l1 = lt_lane(base, lane, ts[0]);
                        let l2 = lt_lane(base, lane, ts[1]);
                        let l3 = lt_lane(base, lane, ts[2]);
                        if l2 {
                            toggle(&mut fx, q);
                        }
                        if l1 != l3 {
                            toggle(&mut fz, q);
                        }
                    }
                    let p_z = dephasing_prob(dt, t_phi_us(cal.t1_us, cal.t2_us));
                    if p_z > 0.0 && lt!(site::id(site::DECO_DEPH, $op, q), bern_threshold(p_z)) {
                        toggle(&mut fz, q);
                    }
                }
            }};
        }

        for (op_i, op) in self.plan.ops.iter().enumerate() {
            match *op {
                PlanOp::Segment(i) => {
                    let seg = &self.plan.segments[i];
                    for &(q, th) in &seg.rz_static {
                        pend_stat[q] += th;
                    }
                    for &(e, th) in &self.plan.seg_edges[i] {
                        pend_rzz[e] += th;
                    }
                    let dt = seg.dt();
                    idle_elapsed += dt;
                    for &q in &self.streamed_list {
                        pend_time[q] += seg.signed_dt(q);
                        deco_dt[q] += dt;
                    }
                }
                PlanOp::Project { item } => {
                    let si = &self.sc.items[item];
                    let q = si.instruction.qubits[0];
                    flush_qubit!(q, op_i);
                    match si.instruction.gate {
                        Gate::Measure => {
                            let reference = self.ref_outcomes[meas_i];
                            meas_i += 1;
                            let mut outcome = reference ^ get(&fx, q);
                            if config.readout_error {
                                let p = sim.device.calibration.qubits[q].readout_err;
                                if p > 0.0
                                    && lt!(site::id(site::READOUT, op_i, q), bern_threshold(p))
                                {
                                    outcome = !outcome;
                                }
                            }
                            if let Some(c) = si.instruction.clbit {
                                bits[c] = outcome;
                            }
                            // Post-collapse Z randomization.
                            set(&mut fz, q, fair!(site::id(site::MEAS_Z, op_i, q)));
                        }
                        Gate::Reset => {
                            set(&mut fx, q, false);
                            set(&mut fz, q, fair!(site::id(site::RESET_Z, op_i, q)));
                        }
                        _ => unreachable!(), // ca-lint: allow(panic) -- plan construction guarantees the op kind at this slot
                    }
                }
                PlanOp::Apply { item } => {
                    let si = &self.sc.items[item];
                    // ca-lint: allow(panic) -- plan construction guarantees unitary items at Apply ops
                    match self.items[item].as_ref().expect("unitary item") {
                        ItemOp::CondPauli {
                            q,
                            pauli,
                            clbit,
                            value,
                            ref_fired,
                            physical,
                        } => {
                            let q = *q;
                            if *physical {
                                flush_qubit!(q, op_i);
                            }
                            let fired = bits[*clbit] == *value;
                            if fired != *ref_fired {
                                inject(&mut fx, &mut fz, q, *pauli);
                            }
                            if *physical && config.gate_error && fired {
                                let p = sim.device.calibration.qubits[q].gate_err_1q;
                                if p > 0.0
                                    && lt!(site::id(site::GATE_HIT, op_i, q), bern_threshold(p))
                                {
                                    let k =
                                        pick(site_draw(skey, site::id(site::GATE_SEL, op_i, q)), 3)
                                            as usize;
                                    inject(&mut fx, &mut fz, q, [Pauli::X, Pauli::Y, Pauli::Z][k]);
                                }
                            }
                        }
                        ItemOp::BankRz { q, theta } => {
                            pend_stat[*q] += *theta;
                        }
                        ItemOp::BankRzz { a, b, edge, theta } => {
                            pend_rzz[*edge] += *theta;
                            if config.gate_error {
                                let scale = self
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                let p = sim.device.calibration.gate_err_2q(*a, *b) * scale;
                                if p > 0.0
                                    && lt!(site::id(site::GATE_HIT, op_i, *a), bern_threshold(p))
                                {
                                    let k = pick(
                                        site_draw(skey, site::id(site::GATE_SEL, op_i, *a)),
                                        15,
                                    ) as usize
                                        + 1;
                                    inject(&mut fx, &mut fz, *a, Pauli::from_index(k % 4));
                                    inject(&mut fx, &mut fz, *b, Pauli::from_index(k / 4));
                                }
                            }
                        }
                        ItemOp::CondBankRz { q, theta, edge } => {
                            pend_stat[*q] += *theta;
                            if let Some((e, th)) = edge {
                                pend_rzz[*e] += *th;
                            }
                        }
                        ItemOp::One { q, table, z_sign } => {
                            let q = *q;
                            match z_sign {
                                Some(s) => {
                                    if *s < 0 {
                                        pend_stat[q] = -pend_stat[q];
                                        pend_time[q] = -pend_time[q];
                                        for &e in &self.plan.incident[q] {
                                            pend_rzz[e] = -pend_rzz[e];
                                        }
                                    }
                                }
                                None => flush_qubit!(q, op_i),
                            }
                            let p = get_pauli(&fx, &fz, q);
                            let (_, p2) = table[p.index()];
                            set_pauli(&mut fx, &mut fz, q, p2);
                            if config.gate_error
                                && !si.instruction.gate.is_virtual()
                                && !si.instruction.merged
                            {
                                let p = sim.device.calibration.qubits[q].gate_err_1q;
                                if p > 0.0
                                    && lt!(site::id(site::GATE_HIT, op_i, q), bern_threshold(p))
                                {
                                    let k =
                                        pick(site_draw(skey, site::id(site::GATE_SEL, op_i, q)), 3)
                                            as usize;
                                    inject(&mut fx, &mut fz, q, [Pauli::X, Pauli::Y, Pauli::Z][k]);
                                }
                            }
                        }
                        ItemOp::Two {
                            a,
                            b,
                            table,
                            diagonal,
                        } => {
                            let (a, b) = (*a, *b);
                            if !diagonal {
                                flush_qubit!(a, op_i);
                                flush_qubit!(b, op_i);
                            }
                            let pa = get_pauli(&fx, &fz, a);
                            let pb = get_pauli(&fx, &fz, b);
                            let (_, (qa, qb)) = table[pa.index() + 4 * pb.index()];
                            set_pauli(&mut fx, &mut fz, a, qa);
                            set_pauli(&mut fx, &mut fz, b, qb);
                            if config.gate_error {
                                let scale = self
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                let p = sim.device.calibration.gate_err_2q(a, b) * scale;
                                if p > 0.0
                                    && lt!(site::id(site::GATE_HIT, op_i, a), bern_threshold(p))
                                {
                                    let k = pick(
                                        site_draw(skey, site::id(site::GATE_SEL, op_i, a)),
                                        15,
                                    ) as usize
                                        + 1;
                                    inject(&mut fx, &mut fz, a, Pauli::from_index(k % 4));
                                    inject(&mut fx, &mut fz, b, Pauli::from_index(k / 4));
                                }
                            }
                        }
                    }
                    // Scheduled per-shot Pauli insertions (PEC): pure
                    // frame XORs after the item's own error draws.
                    for &(_, q, p) in ins.for_shot(item, shot_idx) {
                        inject(&mut fx, &mut fz, q, p);
                    }
                }
            }
        }
        let final_op = self.plan.ops.len();
        for q in 0..n {
            if !self.streamed[q] {
                // Settle the deferred idle accrual (see `streamed`).
                pend_time[q] = idle_elapsed;
                deco_dt[q] = idle_elapsed;
            }
            flush_qubit!(q, final_op);
        }
        if let Some(t0) = t_start {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            ca_obs::observe_ns("engine", "shot", ns);
        }
        (fx, fz, bits)
    }
}

impl FramePlan {
    /// Shot-sampled classical counts over this prepared plan.
    /// `cancel` is polled at shot-chunk boundaries.
    pub(crate) fn counts(
        &self,
        sim: &Simulator,
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<RunResult, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let nbits = self.sc.num_clbits;
        let v2 = sim.schedule == SeedSchedule::V2;
        let parts = map_shots_indexed(
            shots,
            seed,
            workers,
            cancel,
            std::collections::BTreeMap::<u64, usize>::new,
            |i, rng, counts| {
                let (_, _, bits) = if v2 {
                    self.shot_v2(sim, seed, i, ins)
                } else {
                    self.shot(sim, rng, i, ins)
                };
                *counts.entry(pack_bits(&bits, nbits)).or_insert(0) += 1;
            },
        )?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            RunResult::from_parts(shots, nbits, parts)
        }))
    }

    /// Reference expectation and packed masks per observable.
    fn prepare_observables(&self, paulis: &[PauliString]) -> Vec<(i32, Vec<u64>, Vec<u64>)> {
        paulis
            .iter()
            .map(|p| {
                let r = self.ref_tableau.expect(p); // ca-lint: allow(panic) -- reference tableau is set during plan construction
                let (px, pz) = pack_pauli(p);
                (r, px, pz)
            })
            .collect()
    }

    /// Frame-averaged Pauli expectations over this prepared plan.
    /// `cancel` is polled at shot-chunk boundaries.
    pub(crate) fn expectations(
        &self,
        sim: &Simulator,
        paulis: &[PauliString],
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let prepared = self.prepare_observables(paulis);
        let v2 = sim.schedule == SeedSchedule::V2;
        let sums = map_shots_indexed(
            shots,
            seed,
            workers,
            cancel,
            || vec![0.0; prepared.len()],
            |i, rng, acc| {
                let (fx, fz, _) = if v2 {
                    self.shot_v2(sim, seed, i, ins)
                } else {
                    self.shot(sim, rng, i, ins)
                };
                for (o, (r, px, pz)) in prepared.iter().enumerate() {
                    if *r == 0 {
                        continue;
                    }
                    let mut parity = 0u64;
                    for w in 0..fx.len() {
                        parity ^= (fx[w] & pz[w]) ^ (fz[w] & px[w]);
                    }
                    let flip = parity.count_ones() % 2 == 1;
                    acc[o] += if flip { -*r as f64 } else { *r as f64 };
                }
            },
        )?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            let mut out = vec![0.0; paulis.len()];
            for part in sums {
                for (o, p) in out.iter_mut().zip(part.iter()) {
                    *o += p;
                }
            }
            for o in &mut out {
                *o /= shots as f64;
            }
            out
        }))
    }

    /// Per-shot ±1 outcomes over this prepared plan (see
    /// [`PauliFlips`]). `cancel` is polled at shot-chunk boundaries.
    pub(crate) fn flips(
        &self,
        sim: &Simulator,
        paulis: &[PauliString],
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<PauliFlips, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let prepared = self.prepare_observables(paulis);
        let words = shots.div_ceil(64);
        let v2 = sim.schedule == SeedSchedule::V2;
        // Per-worker bitvectors cover disjoint shot indices, so the
        // merge is a plain OR — order-independent and exact.
        let parts = map_shots_indexed(
            shots,
            seed,
            workers,
            cancel,
            || vec![vec![0u64; words]; prepared.len()],
            |i, rng, acc| {
                let (fx, fz, _) = if v2 {
                    self.shot_v2(sim, seed, i, ins)
                } else {
                    self.shot(sim, rng, i, ins)
                };
                for (o, (_, px, pz)) in prepared.iter().enumerate() {
                    let mut parity = 0u64;
                    for w in 0..fx.len() {
                        parity ^= (fx[w] & pz[w]) ^ (fz[w] & px[w]);
                    }
                    if parity.count_ones() % 2 == 1 {
                        acc[o][i / 64] |= 1 << (i % 64);
                    }
                }
            },
        )?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            let mut flips = vec![vec![0u64; words]; prepared.len()];
            for part in parts {
                for (acc, obs) in flips.iter_mut().zip(part.iter()) {
                    for (a, w) in acc.iter_mut().zip(obs.iter()) {
                        *a |= w;
                    }
                }
            }
            PauliFlips {
                shots,
                refs: prepared.iter().map(|(r, _, _)| *r).collect(),
                flips,
            }
        }))
    }
}

#[inline]
fn get(v: &[u64], q: usize) -> bool {
    v[q / 64] >> (q % 64) & 1 == 1
}

#[inline]
fn set(v: &mut [u64], q: usize, on: bool) {
    if on {
        v[q / 64] |= 1 << (q % 64);
    } else {
        v[q / 64] &= !(1 << (q % 64));
    }
}

#[inline]
fn toggle(v: &mut [u64], q: usize) {
    v[q / 64] ^= 1 << (q % 64);
}

#[inline]
fn get_pauli(fx: &[u64], fz: &[u64], q: usize) -> Pauli {
    pauli_from_bits(get(fx, q), get(fz, q))
}

#[inline]
fn set_pauli(fx: &mut [u64], fz: &mut [u64], q: usize, p: Pauli) {
    let (x, z) = pauli_to_bits(p);
    set(fx, q, x);
    set(fz, q, z);
}

/// Multiplies the frame by `p` at qubit `q` (signs are irrelevant for
/// frames, so this is a bitwise XOR in the symplectic picture).
#[inline]
fn inject(fx: &mut [u64], fz: &mut [u64], q: usize, p: Pauli) {
    let (x, z) = pauli_to_bits(p);
    if x {
        toggle(fx, q);
    }
    if z {
        toggle(fz, q);
    }
}

pub(crate) fn randomize_z_all(fz: &mut [u64], n: usize, rng: &mut StdRng) {
    for (w, word) in fz.iter_mut().enumerate() {
        let bits_here = (n - w * 64).min(64);
        let mask = if bits_here == 64 {
            u64::MAX
        } else {
            (1u64 << bits_here) - 1
        };
        *word = rng.random::<u64>() & mask;
    }
}

/// The serial stabilizer/Pauli-frame engine: a [`crate::SimEngine`]
/// over a borrowed simulator configuration, propagating one frame per
/// shot. The reference implementation the bit-parallel
/// [`crate::BatchedFrameEngine`] is validated against.
pub struct StabilizerEngine<'a> {
    /// The owning simulator (device + noise configuration).
    pub sim: &'a Simulator,
}

impl<'a> StabilizerEngine<'a> {
    /// Borrows the simulator.
    pub fn new(sim: &'a Simulator) -> Self {
        Self { sim }
    }

    /// Shot-sampled classical counts (see [`crate::SimEngine`]).
    pub fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        self.run_counts_with_insertions(sc, shots, seed, &InsertionSet::empty())
    }

    /// [`Self::run_counts`] with scheduled per-shot Pauli insertions
    /// (see [`crate::insert`]): the PEC hook. An empty set reproduces
    /// the plain run exactly.
    pub fn run_counts_with_insertions(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
    ) -> Result<RunResult, SimError> {
        let plan = FramePlan::build(self.sim, sc, seed)?;
        plan.counts(
            self.sim,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers: None,
                cancel: None,
            },
        )
    }

    /// Frame-averaged Pauli expectations (see [`crate::SimEngine`]).
    pub fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        self.expect_paulis_with_insertions(sc, paulis, shots, seed, &InsertionSet::empty())
    }

    /// [`Self::expect_paulis`] with scheduled per-shot Pauli
    /// insertions.
    pub fn expect_paulis_with_insertions(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
    ) -> Result<Vec<f64>, SimError> {
        let plan = FramePlan::build(self.sim, sc, seed)?;
        plan.expectations(
            self.sim,
            paulis,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers: None,
                cancel: None,
            },
        )
    }

    /// Per-shot ±1 outcomes (see [`PauliFlips`]): the sign-resolved
    /// form of [`Self::expect_paulis_with_insertions`], needed by
    /// sign-weighted estimators like PEC. Bit-identical to the batch
    /// engine's [`crate::BatchedFrameEngine::expect_flips`].
    pub fn expect_flips(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
    ) -> Result<PauliFlips, SimError> {
        let plan = FramePlan::build(self.sim, sc, seed)?;
        plan.flips(
            self.sim,
            paulis,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers: None,
                cancel: None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    fn ideal(n: usize) -> Simulator {
        Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal())
    }

    #[test]
    fn supports_clifford_diagonals_and_feed_forward() {
        let mut ok = Circuit::new(2, 1);
        ok.h(0)
            .ecr(0, 1)
            .rz(std::f64::consts::FRAC_PI_2, 1)
            .measure(0, 0);
        assert!(stabilizer_supports(&sched(&ok)));
        // Arbitrary-angle *diagonal* rotations fold into the banks.
        let mut diag = Circuit::new(2, 1);
        diag.rz(0.3, 0).rzz(0.7, 0, 1).append(Gate::T, [1]);
        diag.measure(0, 0);
        assert!(stabilizer_supports(&sched(&diag)));
        // Non-diagonal non-Clifford rotations stay out.
        let mut bad = Circuit::new(1, 0);
        bad.append(Gate::Rx(0.3), [0]);
        assert_eq!(
            stabilizer_check(&sched(&bad)),
            Err(SimError::NotClifford { gate: "rx" })
        );
        // Conditional Paulis and conditional diagonal rotations are
        // first-class feed-forward...
        let mut cond = Circuit::new(2, 1);
        cond.measure(0, 0)
            .gate_if(Gate::X, [1], 0, true)
            .gate_if(Gate::Rz(0.4), [1], 0, true);
        assert!(stabilizer_supports(&sched(&cond)));
        // ...conditional basis-changing gates are not.
        let mut bad_cond = Circuit::new(2, 1);
        bad_cond.measure(0, 0).gate_if(Gate::H, [1], 0, true);
        assert_eq!(
            stabilizer_check(&sched(&bad_cond)),
            Err(SimError::UnsupportedConditional { gate: "h" })
        );
        // Conditions must read the packed 64-bit classical register.
        let mut wide = Circuit::new(2, 70);
        wide.measure(0, 65).gate_if(Gate::X, [1], 65, true);
        assert_eq!(
            stabilizer_check(&sched(&wide)),
            Err(SimError::ConditionalClbitOutOfRange { clbit: 65, max: 64 })
        );
    }

    #[test]
    fn conditional_pauli_feed_forward_is_exact() {
        let sim = ideal(2);
        let eng = StabilizerEngine::new(&sim);
        // |1⟩ outcome fires the X: deterministic |11⟩.
        let mut fire = Circuit::new(2, 2);
        fire.x(0)
            .measure(0, 0)
            .gate_if(Gate::X, [1], 0, true)
            .measure(1, 1);
        let res = eng.run_counts(&sched(&fire), 100, 5).unwrap();
        assert!((res.probability(0b11) - 1.0).abs() < 1e-12);
        // |0⟩ outcome skips it: deterministic |00⟩.
        let mut skip = Circuit::new(2, 2);
        skip.measure(0, 0)
            .gate_if(Gate::X, [1], 0, true)
            .measure(1, 1);
        let res = eng.run_counts(&sched(&skip), 100, 5).unwrap();
        assert!((res.probability(0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feed_forward_bell_distribution_is_deterministic() {
        // The Fig. 9 protocol, ideal: GHZ, X-basis aux measurement,
        // conditional Z correction, disentangle. Both data bits must
        // be 0 on every shot, for either aux outcome — only exact
        // per-shot feed-forward gets this right.
        let sim = ideal(3);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(3, 3);
        qc.h(0).cx(0, 1).cx(1, 2);
        qc.h(0).measure(0, 0);
        qc.gate_if(Gate::Z, [1], 0, true);
        qc.cx(1, 2).h(1);
        qc.measure(1, 1).measure(2, 2);
        let res = eng.run_counts(&sched(&qc), 400, 9).unwrap();
        for &k in res.counts.keys() {
            assert_eq!(k & 0b110, 0, "data bits must stay 0, got key {k:#b}");
        }
        assert!((res.marginal_one(0) - 0.5).abs() < 0.1, "aux is unbiased");
    }

    #[test]
    fn conditional_clbit_values_follow_the_latest_write() {
        // The condition reads the bit's value at execution time, not
        // the first measurement's: overwrite the bit, then fire.
        let sim = ideal(3);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(3, 2);
        qc.x(0).measure(0, 0); // bit 0 = 1
                               // Barrier keeps the second measurement *after* the first in
                               // time (ASAP would otherwise start it at t = 0).
        qc.barrier(vec![0, 1, 2]);
        qc.measure(1, 0); // overwritten: bit 0 = 0
        qc.gate_if(Gate::X, [2], 0, true).measure(2, 1);
        let res = eng.run_counts(&sched(&qc), 80, 3).unwrap();
        assert!(
            (res.probability(0b00) - 1.0).abs() < 1e-12,
            "overwritten bit must suppress the conditional"
        );
    }

    #[test]
    fn ideal_bell_counts_match_physics() {
        let sim = ideal(2);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let res = eng.run_counts(&sched(&qc), 2000, 7).unwrap();
        assert_eq!(res.shots, 2000);
        let p00 = res.probability(0b00);
        let p11 = res.probability(0b11);
        assert!((p00 + p11 - 1.0).abs() < 1e-12, "only correlated outcomes");
        assert!((p00 - 0.5).abs() < 0.05, "fair split: {p00}");
    }

    #[test]
    fn measurement_randomness_across_shots() {
        // H;M must be ~50/50 across shots even with zero noise — the
        // init-Z randomization supplies the entropy.
        let sim = ideal(1);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let res = eng.run_counts(&sched(&qc), 4000, 3).unwrap();
        assert!(
            (res.probability(1) - 0.5).abs() < 0.04,
            "p1 {}",
            res.probability(1)
        );
    }

    #[test]
    fn repeated_measurement_is_consistent_within_a_shot() {
        let sim = ideal(1);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(1, 2);
        qc.h(0).measure(0, 0).measure(0, 1);
        let res = eng.run_counts(&sched(&qc), 500, 5).unwrap();
        assert_eq!(
            res.probability(0b01) + res.probability(0b10),
            0.0,
            "bits agree"
        );
    }

    #[test]
    fn ideal_expectations_are_exact() {
        let sim = ideal(2);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let sc = sched(&qc);
        let obs = [
            PauliString::parse("ZZ").unwrap(),
            PauliString::parse("XX").unwrap(),
            PauliString::parse("YY").unwrap(),
            PauliString::parse("ZI").unwrap(),
        ];
        let got = eng.expect_paulis(&sc, &obs, 50, 9).unwrap();
        assert!((got[0] - 1.0).abs() < 1e-12);
        assert!((got[1] - 1.0).abs() < 1e-12);
        assert!((got[2] + 1.0).abs() < 1e-12);
        assert!(got[3].abs() < 1e-12);
    }

    #[test]
    fn readout_error_flips_bits() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].readout_err = 0.2;
        let cfg = NoiseConfig {
            readout_error: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(1, 1);
        qc.measure(0, 0);
        let res = eng.run_counts(&sched(&qc), 4000, 17).unwrap();
        assert!((res.probability(1) - 0.2).abs() < 0.03);
    }

    #[test]
    fn x2_echo_cancels_quasistatic_noise() {
        // The frame engine must preserve DD refocusing: with the echo
        // the pending bank cancels *before* any twirl, so the Ramsey
        // contrast stays perfect; without it the twirl dephases.
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].quasistatic_khz = 50.0;
        let cfg = NoiseConfig {
            quasistatic: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        let eng = StabilizerEngine::new(&sim);
        let z = PauliString::parse("Z").unwrap();

        let mut bare = Circuit::new(1, 0);
        bare.h(0).delay(4000.0, 0).h(0);
        let z_bare = eng
            .expect_paulis(&sched(&bare), std::slice::from_ref(&z), 400, 11)
            .unwrap()[0];
        assert!(z_bare < 0.8, "bare Ramsey dephases: {z_bare}");

        let mut echo = Circuit::new(1, 0);
        echo.h(0).delay(2000.0, 0).x(0).delay(2000.0, 0).h(0);
        let z_echo = eng
            .expect_paulis(&sched(&echo), std::slice::from_ref(&z), 400, 11)
            .unwrap()[0];
        assert!(
            (z_echo - 1.0).abs() < 1e-12,
            "echo refocuses exactly: {z_echo}"
        );
    }

    #[test]
    fn staggered_dd_beats_aligned_under_twirl() {
        // The aligned sequence leaves the ZZ bank full at the final
        // flush (twirled into ZZ flips); staggering zeroes it.
        let dev = uniform_device(Topology::line(2), 80.0);
        let sim = Simulator::with_config(dev, NoiseConfig::coherent_only());
        let eng = StabilizerEngine::new(&sim);
        let durations = GateDurations {
            one_qubit: 0.0,
            ..GateDurations::default()
        };
        let sched0 = |qc: &Circuit| schedule_asap(qc, durations);
        let tau = 2000.0;
        let mut aligned = Circuit::new(2, 0);
        aligned.h(0).h(1);
        aligned.barrier(Vec::<usize>::new());
        aligned.delay(tau, 0).delay(tau, 1);
        aligned.x(0).x(1);
        aligned.delay(tau, 0).delay(tau, 1);
        aligned.x(0).x(1);
        aligned.barrier(Vec::<usize>::new());
        aligned.h(0).h(1);
        let mut staggered = Circuit::new(2, 0);
        staggered.h(0).h(1);
        staggered.barrier(Vec::<usize>::new());
        staggered.delay(tau, 0);
        staggered.delay(tau / 2.0, 1).x(1).delay(tau, 1);
        staggered.x(0);
        staggered.delay(tau, 0);
        staggered.x(1).delay(tau / 2.0, 1);
        staggered.x(0);
        staggered.barrier(Vec::<usize>::new());
        staggered.h(0).h(1);
        let z = PauliString::parse("ZI").unwrap();
        let za = eng
            .expect_paulis(&sched0(&aligned), std::slice::from_ref(&z), 600, 1)
            .unwrap()[0];
        let zs = eng
            .expect_paulis(&sched0(&staggered), std::slice::from_ref(&z), 600, 1)
            .unwrap()[0];
        assert!(
            (zs - 1.0).abs() < 1e-12,
            "staggered cancels everything: {zs}"
        );
        // Aligned: twirled ZZ leaves ⟨Z⟩ ≈ 1 − 2·sin²(θ/2) = cos θ.
        let theta = ca_device::phase_rad(80.0, 2.0 * tau);
        assert!(
            (za - theta.cos()).abs() < 0.1,
            "aligned ≈ cos θ: {za} vs {}",
            theta.cos()
        );
    }

    #[test]
    fn t1_decay_statistics_approximate_dense() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].t1_us = 50.0;
        dev.calibration.qubits[0].t2_us = 100.0;
        let cfg = NoiseConfig {
            decoherence: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(1, 1);
        qc.x(0).delay(50_000.0, 0).measure(0, 0);
        let res = eng.run_counts(&sched(&qc), 4000, 13).unwrap();
        // Twirled damping decays the excited population as
        // 1 − γ/2 (X and Y kicks re-equilibrate) rather than 1 − γ;
        // accept the twirl approximation's band around e^{-1}.
        let p1 = res.probability(1);
        assert!(p1 > 0.2 && p1 < 0.75, "twirled T1 decay in band: {p1}");
    }

    #[test]
    fn large_clifford_circuit_runs_fast() {
        // 60 qubits — impossible dense, instant with frames.
        let n = 60;
        let dev = uniform_device(Topology::line(n), 60.0);
        let sim = Simulator::with_config(dev, NoiseConfig::default());
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(n, n);
        for q in 0..n {
            qc.h(q);
        }
        for q in (0..n - 1).step_by(2) {
            qc.ecr(q, q + 1);
        }
        for q in 0..n {
            qc.measure(q, q);
        }
        let res = eng.run_counts(&sched(&qc), 200, 21).unwrap();
        assert_eq!(res.shots, 200);
        assert_eq!(res.num_clbits, n);
    }

    #[test]
    fn arity_mismatch_is_an_error_not_a_panic() {
        // Construct the malformed instruction directly (the builder's
        // debug assertion would catch it in dev builds; release-built
        // callers and deserialized circuits reach the engine).
        let sim = ideal(3);
        let eng = StabilizerEngine::new(&sim);
        let mut qc = Circuit::new(3, 1);
        qc.push(ca_circuit::Instruction {
            gate: Gate::X,
            qubits: vec![0, 1, 2],
            clbit: None,
            condition: None,
            merged: false,
        });
        qc.measure(0, 0);
        let err = eng.run_counts(&sched(&qc), 10, 1).unwrap_err();
        assert_eq!(
            err,
            SimError::UnsupportedGateArity {
                gate: "x",
                expected: 1,
                got: 3
            }
        );
    }
}

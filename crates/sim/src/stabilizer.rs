//! CHP-style stabilizer tableau with bit-packed rows.
//!
//! The tableau tracks `2n` signed Pauli rows (n destabilizers, then n
//! stabilizers) over bit-packed X/Z columns, in the *Hermitian letter*
//! convention: a row is `i^k · P₀⊗P₁⊗…` with literal Pauli letters
//! (the `(x,z) = (1,1)` pattern *is* Y, not XZ) and a 2-bit phase
//! exponent `k`. Stabilizer rows always carry `k ∈ {0, 2}` (±1);
//! destabilizer rows may hold odd `k`, which is irrelevant — only
//! their anticommutation pattern matters.
//!
//! Gates are applied through the numerically derived conjugation
//! tables of [`ca_circuit::clifford`] — any Clifford in the gate set
//! works, with no hand-coded update rules to get wrong. Cost is
//! O(n) per gate, O(n²) per measurement, independent of 2ⁿ: this is
//! what unlocks 100+ qubit heavy-hex devices.

use ca_circuit::clifford::Table2Q;
use ca_circuit::pauli::{Pauli, PauliString};
use rand::RngExt;

/// A stabilizer tableau over `n` qubits.
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    /// Words per row: `ceil(n / 64)`.
    words: usize,
    /// X bits, row-major (`2n` rows).
    xs: Vec<u64>,
    /// Z bits, row-major (`2n` rows).
    zs: Vec<u64>,
    /// Per-row phase exponent `k` of `i^k`, mod 4.
    phases: Vec<u8>,
}

#[inline]
fn bit(v: &[u64], q: usize) -> bool {
    v[q / 64] >> (q % 64) & 1 == 1
}

/// The `(x, z)` bit pattern of a Pauli letter in the Hermitian-letter
/// symplectic convention used throughout the sim crate: `(1, 1)` *is*
/// the literal `Y` (not the `XZ` product). The single source of truth
/// for both the tableau and the frame sampler.
#[inline]
pub fn pauli_to_bits(p: Pauli) -> (bool, bool) {
    match p {
        Pauli::I => (false, false),
        Pauli::X => (true, false),
        Pauli::Y => (true, true),
        Pauli::Z => (false, true),
    }
}

/// Phase contribution (mod 4) of multiplying 64 Pauli letter pairs at
/// once: `src` letters `(x2, z2)` left-multiplied onto `dst` letters
/// `(x1, z1)`. Each non-trivial unequal pair contributes `i^±1`; the
/// six cases split into a `+1` mask (X·Y, Y·Z, Z·X) and a `−1` mask
/// (X·Z, Y·X, Z·Y), so the total is a pair of popcounts. Matches
/// `Pauli::mul` bit-for-bit by construction.
#[inline]
fn mul_phase_word(x2: u64, z2: u64, x1: u64, z1: u64) -> u32 {
    let plus = (x2 & !z2 & x1 & z1) | (x2 & z2 & !x1 & z1) | (!x2 & z2 & x1 & !z1);
    let minus = (x2 & !z2 & !x1 & z1) | (x2 & z2 & x1 & !z1) | (!x2 & z2 & x1 & z1);
    plus.count_ones() + 3 * minus.count_ones()
}

/// Inverse of [`pauli_to_bits`].
#[inline]
pub fn pauli_from_bits(x: bool, z: bool) -> Pauli {
    match (x, z) {
        (false, false) => Pauli::I,
        (true, false) => Pauli::X,
        (true, true) => Pauli::Y,
        (false, true) => Pauli::Z,
    }
}

/// Packs a Pauli string's letters into X/Z word masks.
pub fn pack_pauli(p: &PauliString) -> (Vec<u64>, Vec<u64>) {
    let words = p.paulis.len().div_ceil(64).max(1);
    let mut px = vec![0u64; words];
    let mut pz = vec![0u64; words];
    for (q, &pl) in p.paulis.iter().enumerate() {
        let (x, z) = pauli_to_bits(pl);
        if x {
            px[q / 64] |= 1 << (q % 64);
        }
        if z {
            pz[q / 64] |= 1 << (q % 64);
        }
    }
    (px, pz)
}

impl Tableau {
    /// The |0…0⟩ tableau: destabilizer `i` = `Xᵢ`, stabilizer `i` = `Zᵢ`.
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "tableau needs at least one qubit");
        let words = n.div_ceil(64);
        let mut t = Self {
            n,
            words,
            xs: vec![0; 2 * n * words],
            zs: vec![0; 2 * n * words],
            phases: vec![0; 2 * n],
        };
        for i in 0..n {
            t.xs[i * words + i / 64] |= 1 << (i % 64);
            t.zs[(n + i) * words + i / 64] |= 1 << (i % 64);
        }
        t
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn row(&self, r: usize) -> (&[u64], &[u64]) {
        let s = r * self.words;
        (&self.xs[s..s + self.words], &self.zs[s..s + self.words])
    }

    #[inline]
    fn get(&self, r: usize, q: usize) -> Pauli {
        let s = r * self.words;
        pauli_from_bits(bit(&self.xs[s..], q), bit(&self.zs[s..], q))
    }

    #[inline]
    fn set(&mut self, r: usize, q: usize, p: Pauli) {
        let idx = r * self.words + q / 64;
        let mask = 1u64 << (q % 64);
        let (x, z) = pauli_to_bits(p);
        if x {
            self.xs[idx] |= mask;
        } else {
            self.xs[idx] &= !mask;
        }
        if z {
            self.zs[idx] |= mask;
        } else {
            self.zs[idx] &= !mask;
        }
    }

    /// Applies a single-qubit Clifford on `q` via its conjugation
    /// table (see [`ca_circuit::clifford::conjugation_table_1q`]).
    pub fn apply_1q(&mut self, table: &[(i8, Pauli); 4], q: usize) {
        for r in 0..2 * self.n {
            let p0 = self.get(r, q);
            // U I U† = I with sign +1: rows acting trivially on `q`
            // (the vast majority in shallow circuits) are unchanged.
            if p0 == Pauli::I {
                continue;
            }
            let (s, p) = table[p0.index()];
            self.set(r, q, p);
            if s < 0 {
                self.phases[r] = (self.phases[r] + 2) % 4;
            }
        }
    }

    /// Applies a two-qubit Clifford on `(a, b)` via its conjugation
    /// table, with `a` the first listed operand.
    pub fn apply_2q(&mut self, table: &Table2Q, a: usize, b: usize) {
        assert_ne!(a, b);
        for r in 0..2 * self.n {
            let idx = self.get(r, a).index() + 4 * self.get(r, b).index();
            // U (I⊗I) U† = I⊗I with sign +1: rows acting trivially on
            // the pair (outside the circuit's light cone) are
            // unchanged.
            if idx == 0 {
                continue;
            }
            let (s, (pa, pb)) = table[idx];
            self.set(r, a, pa);
            self.set(r, b, pb);
            if s < 0 {
                self.phases[r] = (self.phases[r] + 2) % 4;
            }
        }
    }

    /// Conjugates every row by the packed Pauli `(px, pz)`: letters
    /// are unchanged and rows anticommuting with the Pauli flip sign.
    /// This folds a deferred Pauli frame into the tableau in one
    /// O(n²/64) sweep instead of one O(n) row pass per deferred gate.
    pub(crate) fn conjugate_by_pauli(&mut self, px: &[u64], pz: &[u64]) {
        for r in 0..2 * self.n {
            if self.row_anticommutes(r, px, pz) {
                self.phases[r] = (self.phases[r] + 2) % 4;
            }
        }
    }

    /// True when row `r` anticommutes with the packed Pauli
    /// `(px, pz)` masks.
    fn row_anticommutes(&self, r: usize, px: &[u64], pz: &[u64]) -> bool {
        let (rx, rz) = self.row(r);
        let mut acc = 0u64;
        for w in 0..self.words {
            acc ^= (rx[w] & pz[w]) ^ (rz[w] & px[w]);
        }
        acc.count_ones() % 2 == 1
    }

    /// Left-multiplies row `dst` by row `src`: `row_dst ← row_src · row_dst`.
    ///
    /// Word-parallel: letters XOR in the symplectic picture, and the
    /// `i^k` letter-product phases reduce to popcounts of two masks
    /// (see [`mul_phase_word`]) — the same arithmetic as the scalar
    /// `Pauli::mul` loop, 64 qubits at a time.
    fn row_mul(&mut self, dst: usize, src: usize) {
        let (ds, ss) = (dst * self.words, src * self.words);
        let mut k = (self.phases[src] + self.phases[dst]) as u32;
        for w in 0..self.words {
            let x2 = self.xs[ss + w];
            let z2 = self.zs[ss + w];
            let x1 = self.xs[ds + w];
            let z1 = self.zs[ds + w];
            k += mul_phase_word(x2, z2, x1, z1);
            self.xs[ds + w] = x1 ^ x2;
            self.zs[ds + w] = z1 ^ z2;
        }
        self.phases[dst] = (k % 4) as u8;
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        let (ds, ss) = (dst * self.words, src * self.words);
        for w in 0..self.words {
            self.xs[ds + w] = self.xs[ss + w];
            self.zs[ds + w] = self.zs[ss + w];
        }
        self.phases[dst] = self.phases[src];
    }

    fn clear_row(&mut self, r: usize) {
        let s = r * self.words;
        for w in 0..self.words {
            self.xs[s + w] = 0;
            self.zs[s + w] = 0;
        }
        self.phases[r] = 0;
    }

    /// Measures qubit `q` in the Z basis (collapsing); returns the
    /// outcome. Random outcomes are drawn from `rng`.
    pub fn measure(&mut self, q: usize, rng: &mut impl RngExt) -> bool {
        let n = self.n;
        let qw = q / 64;
        let qm = 1u64 << (q % 64);
        let p = (n..2 * n).find(|&r| self.xs[r * self.words + qw] & qm != 0);
        if let Some(p) = p {
            // Random outcome: Z_q anticommutes with stabilizer row p.
            let outcome = rng.random::<bool>();
            for r in 0..2 * n {
                if r != p && self.xs[r * self.words + qw] & qm != 0 {
                    self.row_mul(r, p);
                }
            }
            self.copy_row(p - n, p);
            self.clear_row(p);
            self.set(p, q, Pauli::Z);
            self.phases[p] = if outcome { 2 } else { 0 };
            outcome
        } else {
            // Deterministic: ±Z_q is in the stabilizer group. Multiply
            // the stabilizers indexed by destabilizers hitting q,
            // word-parallel (same arithmetic as `row_mul`).
            let mut k: u32 = 0;
            let mut accx = vec![0u64; self.words];
            let mut accz = vec![0u64; self.words];
            for i in 0..n {
                if self.xs[i * self.words + qw] & qm != 0 {
                    k += self.phases[n + i] as u32;
                    let s = (n + i) * self.words;
                    for w in 0..self.words {
                        let x2 = self.xs[s + w];
                        let z2 = self.zs[s + w];
                        k += mul_phase_word(x2, z2, accx[w], accz[w]);
                        accx[w] ^= x2;
                        accz[w] ^= z2;
                    }
                }
            }
            debug_assert!(
                accx.iter().all(|&w| w == 0)
                    && accz
                        .iter()
                        .enumerate()
                        .all(|(w, &v)| v == if w == qw { qm } else { 0 }),
                "deterministic measurement row must be ±Z_q"
            );
            debug_assert!(
                (k % 4).is_multiple_of(2),
                "stabilizer element with imaginary phase"
            );
            k % 4 == 2
        }
    }

    /// Resets qubit `q` to |0⟩ (measure, classical flip if 1).
    pub fn reset(&mut self, q: usize, rng: &mut impl RngExt, x_table: &[(i8, Pauli); 4]) {
        if self.measure(q, rng) {
            self.apply_1q(x_table, q);
        }
    }

    /// Expectation of a signed Pauli string on the stabilizer state:
    /// exactly −1, 0, or +1.
    pub fn expect(&self, p: &PauliString) -> i32 {
        assert_eq!(p.paulis.len(), self.n);
        if p.is_identity() {
            return p.sign as i32;
        }
        let (px, pz) = pack_pauli(p);
        // Anticommuting with any stabilizer → expectation 0.
        for r in self.n..2 * self.n {
            if self.row_anticommutes(r, &px, &pz) {
                return 0;
            }
        }
        // Otherwise P = ±(product of the stabilizers indexed by the
        // destabilizers it anticommutes with); recover the sign,
        // word-parallel (same arithmetic as `row_mul`).
        let mut k: u32 = 0;
        let mut accx = vec![0u64; self.words];
        let mut accz = vec![0u64; self.words];
        for i in 0..self.n {
            if self.row_anticommutes(i, &px, &pz) {
                k += self.phases[self.n + i] as u32;
                let s = (self.n + i) * self.words;
                for w in 0..self.words {
                    let x2 = self.xs[s + w];
                    let z2 = self.zs[s + w];
                    k += mul_phase_word(x2, z2, accx[w], accz[w]);
                    accx[w] ^= x2;
                    accz[w] ^= z2;
                }
            }
        }
        debug_assert!(
            accx == px && accz == pz,
            "commuting Pauli must match its stabilizer decomposition"
        );
        debug_assert!((k % 4).is_multiple_of(2));
        let group_sign = if k % 4 == 2 { -1 } else { 1 };
        p.sign as i32 * group_sign
    }

    /// The `i`-th stabilizer generator as a signed Pauli string
    /// (diagnostics and tests).
    ///
    /// A stabilizer row can never hold an odd (imaginary) phase
    /// exponent on a well-formed tableau, so the conversion below
    /// treats `k ∈ {0, 2}` as exhaustive and only debug-asserts it:
    ///
    /// * rows start Hermitian (`±Zᵢ`, `k ∈ {0, 2}`);
    /// * gate application goes through the numerically derived
    ///   conjugation tables, whose signs are ±1 by construction
    ///   (`U·P·U†` of a Hermitian Pauli letter is a *signed Hermitian
    ///   letter* — conjugation preserves Hermiticity), so `k` only
    ///   ever moves by 2;
    /// * measurement updates multiply a stabilizer row only by
    ///   another *commuting* row ([`Self::row_mul`] inside
    ///   [`Self::measure`] pairs rows that both anticommute with
    ///   `Z_q`), and the product of two commuting Hermitian Paulis is
    ///   Hermitian: the `i^k` letter-product phases cancel mod 2.
    ///
    /// Destabilizer rows *may* carry odd `k` (only their
    /// anticommutation pattern matters); this accessor never reads
    /// them. The invariant is exercised by the randomized
    /// `stabilizer_phases_stay_real` test below.
    pub fn stabilizer(&self, i: usize) -> PauliString {
        assert!(i < self.n);
        let r = self.n + i;
        let paulis = (0..self.n).map(|q| self.get(r, q)).collect();
        let k = self.phases[r];
        debug_assert!(
            k.is_multiple_of(2),
            "stabilizer row {i} with imaginary phase i^{k}: stabilizer rows stay \
             Hermitian under table conjugation and commuting-row products"
        );
        let sign = if k == 2 { -1 } else { 1 };
        PauliString { paulis, sign }
    }

    /// Debug/test hook: the phase exponents of all stabilizer rows.
    pub fn stabilizer_phases(&self) -> &[u8] {
        &self.phases[self.n..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::State;
    use ca_circuit::clifford::{conjugation_table_1q, conjugation_table_2q};
    use ca_circuit::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t1(g: Gate) -> [(i8, Pauli); 4] {
        conjugation_table_1q(g)
    }

    #[test]
    fn zero_state_stabilizers() {
        let t = Tableau::zero(3);
        assert_eq!(t.stabilizer(0).to_string(), "ZII");
        assert_eq!(t.stabilizer(2).to_string(), "IIZ");
        assert_eq!(t.expect(&PauliString::parse("ZZZ").unwrap()), 1);
        assert_eq!(t.expect(&PauliString::parse("XII").unwrap()), 0);
    }

    #[test]
    fn hadamard_then_measure_is_random_but_consistent() {
        let mut ones = 0;
        for seed in 0..200 {
            let mut t = Tableau::zero(1);
            t.apply_1q(&t1(Gate::H), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let m1 = t.measure(0, &mut rng);
            // Remeasuring must reproduce the collapsed outcome.
            let m2 = t.measure(0, &mut rng);
            assert_eq!(m1, m2);
            ones += m1 as usize;
        }
        assert!(ones > 60 && ones < 140, "roughly fair: {ones}/200");
    }

    #[test]
    fn bell_pair_correlations() {
        let mut t = Tableau::zero(2);
        t.apply_1q(&t1(Gate::H), 0);
        t.apply_2q(&conjugation_table_2q(Gate::Cx), 0, 1);
        assert_eq!(t.expect(&PauliString::parse("ZZ").unwrap()), 1);
        assert_eq!(t.expect(&PauliString::parse("XX").unwrap()), 1);
        assert_eq!(t.expect(&PauliString::parse("YY").unwrap()), -1);
        assert_eq!(t.expect(&PauliString::parse("ZI").unwrap()), 0);
        // Measurements agree across the pair.
        for seed in 0..50 {
            let mut tt = t.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let a = tt.measure(0, &mut rng);
            let b = tt.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ecr_matches_statevector_expectations() {
        // Drive the same circuit through the tableau and the dense
        // engine; stabilizer expectations must match exactly.
        let gates: [(Gate, usize, usize); 6] = [
            (Gate::H, 0, usize::MAX),
            (Gate::Sx, 1, usize::MAX),
            (Gate::Ecr, 0, 1),
            (Gate::S, 2, usize::MAX),
            (Gate::Ecr, 1, 2),
            (Gate::H, 2, usize::MAX),
        ];
        let mut t = Tableau::zero(3);
        let mut sv = State::zero(3);
        for &(g, a, b) in &gates {
            if b == usize::MAX {
                t.apply_1q(&t1(g), a);
                sv.apply_1q(&g.matrix1().unwrap(), a);
            } else {
                t.apply_2q(&conjugation_table_2q(g), a, b);
                sv.apply_2q(&g.matrix2().unwrap(), a, b);
            }
        }
        for s in ["XII", "IZY", "ZZI", "XYZ", "-IIZ", "YYY", "IXI"] {
            let p = PauliString::parse(s).unwrap();
            let dense = sv.expect_pauli(&p);
            let tab = t.expect(&p) as f64;
            assert!(
                (dense - tab).abs() < 1e-9,
                "{s}: dense {dense} vs tableau {tab}"
            );
        }
    }

    #[test]
    fn reset_collapses_to_zero() {
        let mut t = Tableau::zero(2);
        t.apply_1q(&t1(Gate::H), 0);
        t.apply_2q(&conjugation_table_2q(Gate::Cx), 0, 1);
        let mut rng = StdRng::seed_from_u64(9);
        t.reset(0, &mut rng, &t1(Gate::X));
        assert_eq!(t.expect(&PauliString::parse("ZI").unwrap()), 1);
    }

    #[test]
    fn deterministic_measurement_sign() {
        let mut t = Tableau::zero(1);
        t.apply_1q(&t1(Gate::X), 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.measure(0, &mut rng), "|1⟩ must read 1");
        let mut t = Tableau::zero(1);
        assert!(!t.measure(0, &mut rng), "|0⟩ must read 0");
    }

    #[test]
    fn stabilizer_phases_stay_real() {
        // Randomized invariant check backing the debug assertion in
        // `stabilizer()`: under random Clifford circuits with
        // interleaved measurements/resets, every stabilizer row keeps
        // a real sign (k ∈ {0, 2}) and the generators stay mutually
        // commuting and independent (expectation of each generator on
        // its own state is +1 by definition of stabilizing).
        let one_q = [Gate::H, Gate::S, Gate::Sdg, Gate::Sx, Gate::X, Gate::Y];
        let two_q = [
            conjugation_table_2q(Gate::Cx),
            conjugation_table_2q(Gate::Cz),
            conjugation_table_2q(Gate::Ecr),
        ];
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let n = 2 + (seed as usize % 5);
            let mut t = Tableau::zero(n);
            for _ in 0..60 {
                match rng.random_range(0..10usize) {
                    0..=4 => {
                        let g = one_q[rng.random_range(0..one_q.len())];
                        t.apply_1q(&t1(g), rng.random_range(0..n));
                    }
                    5..=7 => {
                        if n >= 2 {
                            let a = rng.random_range(0..n);
                            let mut b = rng.random_range(0..n);
                            while b == a {
                                b = rng.random_range(0..n);
                            }
                            t.apply_2q(&two_q[rng.random_range(0..two_q.len())], a, b);
                        }
                    }
                    8 => {
                        t.measure(rng.random_range(0..n), &mut rng);
                    }
                    _ => {
                        t.reset(rng.random_range(0..n), &mut rng, &t1(Gate::X));
                    }
                }
                for &k in t.stabilizer_phases() {
                    assert!(k % 2 == 0, "imaginary stabilizer phase i^{k} (seed {seed})");
                }
            }
            for i in 0..n {
                let s = t.stabilizer(i);
                assert_eq!(t.expect(&s), 1, "generator {i} stabilizes its state");
                for j in 0..n {
                    assert!(
                        s.commutes_with(&t.stabilizer(j)),
                        "generators {i},{j} must commute"
                    );
                }
            }
        }
    }

    #[test]
    fn large_tableau_ghz_is_cheap() {
        // 127-qubit GHZ: far beyond any dense engine.
        let n = 127;
        let mut t = Tableau::zero(n);
        t.apply_1q(&t1(Gate::H), 0);
        let cx = conjugation_table_2q(Gate::Cx);
        for q in 1..n {
            t.apply_2q(&cx, q - 1, q);
        }
        let mut all_z = PauliString::identity(n);
        for q in 0..n {
            all_z.paulis[q] = Pauli::Z;
        }
        // Odd-size all-Z is a stabilizer product? For GHZ, Z_i Z_{i+1}
        // are stabilizers; all-Z = product of alternating pairs only
        // for even weight. Check the pairwise correlator instead plus
        // the X-string stabilizer.
        let zz01 = PauliString::parse(&format!("ZZ{}", "I".repeat(n - 2))).unwrap();
        assert_eq!(t.expect(&zz01), 1);
        let mut all_x = PauliString::identity(n);
        for q in 0..n {
            all_x.paulis[q] = Pauli::X;
        }
        assert_eq!(t.expect(&all_x), 1);
        let mut rng = StdRng::seed_from_u64(3);
        let first = t.measure(0, &mut rng);
        for q in 1..n {
            assert_eq!(t.measure(q, &mut rng), first, "GHZ correlation at {q}");
        }
    }
}

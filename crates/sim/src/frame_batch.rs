//! Bit-parallel batched Pauli-frame engine: 64 shots per machine word.
//!
//! The serial sampler in [`crate::pauli_frame`] propagates one frame
//! per shot. This engine packs the frames of 64 shots into one `u64`
//! *bit-plane per qubit* (`fx[q]`/`fz[q]`, bit `j` = shot-lane `j`)
//! and conjugates all 64 frames per gate with a handful of word-wide
//! XOR/AND operations — the standard Stim-style batching that turns
//! the per-gate cost from O(shots) into O(shots/64).
//!
//! ## Why the counts are bit-identical to the serial engine
//!
//! Ignoring signs (frames never need them), conjugation by a Clifford
//! acts **GF(2)-linearly** on a Pauli's symplectic bits: the image of
//! `Y = i·XZ` is the XOR of the images of `X` and `Z`. Each cached
//! conjugation table therefore collapses to a tiny GF(2) matrix
//! ([`Symp1`]: 2×2, [`Symp2`]: 4×4) applied word-wise — exactly the
//! same frame update the serial engine performs one shot at a time.
//!
//! Noise needs per-shot randomness, and here the two serial-path
//! invariants pay off:
//!
//! * shot `i`'s RNG is seeded by [`crate::plan::shot_seed`]`(seed, i)`
//!   alone, so lane `j` of batch `b` re-creates the identical stream
//!   the serial engine uses for shot `64·b + j`;
//! * the pending Z/ZZ banks are RNG-*independent* (the stochastic
//!   rate multiplies the signed time only at flush), so the entire
//!   bank evolution is precomputed **once per plan** into a linear
//!   [`BatchOp`] program. At run time a batch walks that program and
//!   makes, per lane, exactly the draws the serial sampler makes per
//!   shot, in the same order — Bernoulli masks are assembled one lane
//!   bit at a time and applied to the planes word-wise.
//!
//! The result: classical counts are bit-for-bit equal to
//! [`crate::StabilizerEngine`] for any seed, any shot count (tail
//! batches simply run fewer lanes), and any worker-thread count
//! (batches are independent; expectation sums are reduced in batch
//! order, and each shot contributes an integer ±1, so even the f64
//! accumulations are exact).
//!
//! Classical feed-forward batches too: a conditional gate becomes a
//! lane-masked [`BatchOp::CondGate`] whose per-lane firing decision
//! is read from the lane's packed classical key and XOR-ed against
//! the shared reference run's — the serial engine's exact rule,
//! evaluated 64 shots at a time — while conditional *diagonal*
//! rotations compile away entirely into the precomputed banks.

use crate::error::SimError;
use crate::executor::Simulator;
use crate::insert::InsertionSet;
use crate::noise::{damping_prob, dephasing_prob, t_phi_us, ShotNoise};
use crate::pauli_frame::{FramePlan, ItemOp};
use crate::plan::{
    bern_theta, bern_threshold, damping_thresholds, fair_plane, lattice_idx, lattice_value,
    lt_mask, lt_masks, map_batches, pick, plane, shot_key, shot_seed, site, site_draw,
    worker_count, PlanOp, SeedSchedule, LATTICE_STEPS,
};
use crate::result::{PauliFlips, RunResult};
use crate::stabilizer::pauli_to_bits;
use ca_circuit::clifford::Table2Q;
use ca_circuit::pauli::{Pauli, PauliString};
use ca_circuit::{Gate, ScheduledCircuit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shot-lanes per batch word.
pub const LANES: usize = 64;

/// Words per cache-blocked strip of the v2 runner: the schedule-v2
/// path walks the program once per `[u64; 4]` strip (256 shot-lanes),
/// quartering the per-op walk overhead relative to single-word
/// batches while the working set (four planes per touched qubit)
/// stays cache-resident.
pub const STRIP_WORDS: usize = 4;

/// Shots per v2 strip.
pub const STRIP_SHOTS: usize = STRIP_WORDS * LANES;

/// The GF(2) symplectic action of a 1q Clifford on one qubit's
/// `(x, z)` frame bits, as lane masks (all-ones or all-zeros).
#[derive(Clone, Copy)]
struct Symp1 {
    /// x-input contribution to the x output.
    xx: u64,
    /// z-input contribution to the x output.
    xz: u64,
    /// x-input contribution to the z output.
    zx: u64,
    /// z-input contribution to the z output.
    zz: u64,
}

impl Symp1 {
    fn from_table(table: &[(i8, Pauli); 4]) -> Self {
        let (x_to_x, x_to_z) = pauli_to_bits(table[Pauli::X.index()].1);
        let (z_to_x, z_to_z) = pauli_to_bits(table[Pauli::Z.index()].1);
        debug_assert_eq!(table[Pauli::I.index()].1, Pauli::I);
        debug_assert_eq!(
            pauli_to_bits(table[Pauli::Y.index()].1),
            (x_to_x ^ z_to_x, x_to_z ^ z_to_z),
            "conjugation must be GF(2)-linear on symplectic bits"
        );
        let m = |b: bool| if b { u64::MAX } else { 0 };
        Self {
            xx: m(x_to_x),
            xz: m(z_to_x),
            zx: m(x_to_z),
            zz: m(z_to_z),
        }
    }

    fn is_identity(&self) -> bool {
        self.xx == u64::MAX && self.xz == 0 && self.zx == 0 && self.zz == u64::MAX
    }

    #[inline]
    fn apply(&self, x: u64, z: u64) -> (u64, u64) {
        ((x & self.xx) ^ (z & self.xz), (x & self.zx) ^ (z & self.zz))
    }
}

/// The GF(2) symplectic action of a 2q Clifford on `(x_a, z_a, x_b,
/// z_b)`: `mat[out][in]` lane masks.
#[derive(Clone, Copy)]
struct Symp2 {
    mat: [[u64; 4]; 4],
}

impl Symp2 {
    fn from_table(table: &Table2Q) -> Self {
        // Images of the four symplectic basis vectors X⊗I, Z⊗I,
        // I⊗X, I⊗Z (table index = first.index() + 4·second.index()).
        let col = |idx: usize| -> [bool; 4] {
            let (_, (pa, pb)) = table[idx];
            let (xa, za) = pauli_to_bits(pa);
            let (xb, zb) = pauli_to_bits(pb);
            [xa, za, xb, zb]
        };
        let cols = [
            col(Pauli::X.index()),
            col(Pauli::Z.index()),
            col(4 * Pauli::X.index()),
            col(4 * Pauli::Z.index()),
        ];
        #[cfg(debug_assertions)]
        for idx in 0..16 {
            let (pa, pb) = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
            let (xa, za) = pauli_to_bits(pa);
            let (xb, zb) = pauli_to_bits(pb);
            let input = [xa, za, xb, zb];
            let mut predicted = [false; 4];
            for (i, &on) in input.iter().enumerate() {
                if on {
                    for o in 0..4 {
                        predicted[o] ^= cols[i][o];
                    }
                }
            }
            let (_, (qa, qb)) = table[idx];
            let (axa, aza) = pauli_to_bits(qa);
            let (axb, azb) = pauli_to_bits(qb);
            debug_assert_eq!(
                predicted,
                [axa, aza, axb, azb],
                "2q conjugation must be GF(2)-linear on symplectic bits"
            );
        }
        let m = |b: bool| if b { u64::MAX } else { 0 };
        let mut mat = [[0u64; 4]; 4];
        for (i, c) in cols.iter().enumerate() {
            for o in 0..4 {
                mat[o][i] = m(c[o]);
            }
        }
        Self { mat }
    }

    /// The identity action: used when an op exists only for its error
    /// draw (bank-folded `Rzz`, whose rotation lives in the banks but
    /// whose pulse still depolarizes).
    fn identity() -> Self {
        let mut mat = [[0u64; 4]; 4];
        for (i, row) in mat.iter_mut().enumerate() {
            row[i] = u64::MAX;
        }
        Self { mat }
    }

    #[inline]
    fn apply(&self, v: [u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.mat[o];
            *slot = (v[0] & row[0]) ^ (v[1] & row[1]) ^ (v[2] & row[2]) ^ (v[3] & row[3]);
        }
        out
    }
}

/// One crosstalk edge flushing at a [`BatchOp::Flush`] point.
struct FlushEdge {
    a: usize,
    b: usize,
    /// Plan edge index — the v2 site unit (`FLUSH_ZZ` draws are
    /// addressed per edge, not per qubit).
    e: usize,
    /// `sin²(θ/2)`, consumed by the legacy per-lane draw.
    p: f64,
    /// `bern_theta(θ)` — the v2 ladder threshold for the same draw.
    t: u64,
}

/// One step of the precompiled batch program. The sequence of ops —
/// and the draws each op makes per lane — mirrors the serial
/// sampler's per-shot control flow exactly. Under seed-schedule v1
/// that means the *stream positions* line up; under v2 each op
/// instead carries its plan-op index `op`, which addresses the
/// counter-based draws by structural site so the walk order stops
/// mattering altogether.
enum BatchOp {
    /// A twirl-flush point for qubit `q`.
    Flush {
        q: usize,
        /// Plan-op index of this flush (v2 site addressing). The
        /// final end-of-circuit flushes use `plan.ops.len()`.
        op: usize,
        /// Deterministic bank phase and signed time at this flush;
        /// absent when both are exactly zero (no draw on any lane,
        /// matching the serial `|θ| > ε` gate).
        bank: Option<(f64, f64)>,
        /// v2 bank thresholds by per-lane noise code
        /// (`slot · 33 + lattice index`, see [`BatchPlan::bank_table`]);
        /// present exactly when `bank` is.
        table: Option<Arc<[u64]>>,
        /// Compile-assigned index of this flush's distinct
        /// `(qubit, table)` pair, so the sampling pass caches one
        /// transposed-threshold set per pair per word and every
        /// repeat flush of the same bank hits it.
        tslot: u32,
        /// Crosstalk edges flushing here, in the serial engine's
        /// incident-edge order.
        edges: Vec<FlushEdge>,
        /// `(γ, p_z)` of the decoherence twirl, when enabled and the
        /// qubit accrued idle time.
        deco: Option<(f64, f64)>,
    },
    /// 1q frame conjugation + depolarizing draw (`err_p = 0` ⇒ none).
    Gate1 {
        q: usize,
        op: usize,
        m: Symp1,
        err_p: f64,
    },
    /// 2q frame conjugation + two-qubit depolarizing draw.
    Gate2 {
        a: usize,
        b: usize,
        op: usize,
        m: Symp2,
        err_p: f64,
    },
    /// Measurement against the shared reference outcome.
    Measure {
        q: usize,
        op: usize,
        reference: bool,
        clbit: Option<usize>,
        /// Readout flip probability; `None` when readout error is
        /// disabled (no draw at all, matching the serial path).
        readout: Option<f64>,
    },
    /// Reset to |0⟩: clear X, randomize Z.
    Reset { q: usize, op: usize },
    /// Conditional Pauli gate (classical feed-forward): per lane, the
    /// condition is evaluated against the lane's packed classical key
    /// and the Pauli's plane bits are XOR-ed in exactly when the
    /// lane's firing decision differs from the reference run's — the
    /// serial engine's exact rule, word-wide. A fired lane of a
    /// physical pulse additionally draws its depolarizing error.
    CondGate {
        q: usize,
        op: usize,
        /// Plane bits of the injected Pauli.
        x: bool,
        z: bool,
        clbit: usize,
        value: bool,
        /// Whether the shared reference run fired the gate.
        ref_fired: bool,
        /// 1q depolarizing probability for fired lanes (0 ⇒ no draw).
        err_p: f64,
    },
    /// Per-shot Pauli-insertion anchor for a scheduled item: applies
    /// whatever insertions the run's [`InsertionSet`] carries for the
    /// batch's shot-lanes at this item. RNG-free (a pure plane XOR),
    /// so it exists in every plan at zero cost to plain runs and
    /// keeps insertion runs bit-identical to the serial sampler.
    Anchor { item: usize },
}

impl BatchOp {
    /// The qubit whose v2 sites key every draw this op makes — the
    /// shard owning this qubit samples this op (see [`crate::shard`]).
    /// A 2q gate's hit/selector sites address its first qubit only;
    /// flush edge draws are keyed by plan edge id, and each edge id is
    /// reachable from exactly one flush, so they follow the flush's
    /// qubit. Anchors draw nothing and nominally belong to qubit 0.
    fn owner(&self) -> usize {
        match self {
            BatchOp::Flush { q, .. }
            | BatchOp::Gate1 { q, .. }
            | BatchOp::Measure { q, .. }
            | BatchOp::Reset { q, .. }
            | BatchOp::CondGate { q, .. } => *q,
            BatchOp::Gate2 { a, .. } => *a,
            BatchOp::Anchor { .. } => 0,
        }
    }

    /// Mask-buffer words this op pushes per strip word — its
    /// contribution to [`BatchPlan::noise_stride`], and the unit the
    /// sharded merge copies per op. Must stay in lockstep with both
    /// the sampling pushes and the propagation `next!()` consumption.
    fn words_per_w(&self) -> usize {
        match self {
            BatchOp::Flush {
                table, edges, deco, ..
            } => usize::from(table.is_some()) + edges.len() + 2 * usize::from(deco.is_some()),
            BatchOp::Gate1 { err_p, .. } | BatchOp::CondGate { err_p, .. } => {
                2 * usize::from(*err_p > 0.0)
            }
            BatchOp::Gate2 { err_p, .. } => 4 * usize::from(*err_p > 0.0),
            BatchOp::Measure { readout, .. } => {
                1 + usize::from(matches!(readout, Some(p) if *p > 0.0))
            }
            BatchOp::Reset { .. } => 1,
            BatchOp::Anchor { .. } => 0,
        }
    }
}

/// The batch program plus the shared reference run.
///
/// Owns its data like [`FramePlan`]: a fully compiled, cacheable
/// `Send + Sync` artifact (the session layer stores these behind
/// [`std::sync::Arc`]s and reuses them across runs).
pub struct BatchPlan {
    pub(crate) frame: FramePlan,
    ops: Vec<BatchOp>,
    n: usize,
    /// Words of the *serial* frame layout (`ceil(n/64)`): the initial
    /// Z randomization must consume exactly this many `u64` draws per
    /// lane to stay stream-compatible with the serial engine (v1
    /// schedule only — v2 draws are position-free).
    serial_words: usize,
    /// Whether any flush carries a v2 bank table — only then does the
    /// strip runner hash out per-lane noise codes.
    needs_codes: bool,
    /// Count of distinct `(qubit, table)` flush pairs (see
    /// [`BatchOp::Flush::tslot`]).
    tslot_total: usize,
    /// Mask-buffer words per strip word: the sampling pass pushes
    /// exactly `noise_stride · wc` words, in the order the propagation
    /// pass consumes them.
    noise_stride: usize,
}

/// v2 bank-flush thresholds for every per-lane noise code: code
/// `slot · LATTICE_STEPS + idx` holds
/// `bern_theta(stat + phase_rad(sign · δ + lattice(idx) · σ, time))`
/// with `sign = [0, +1, −1][slot]` — the exact f64 expression the
/// serial sampler evaluates from [`ShotNoise::sample_v2`] +
/// [`ShotNoise::z_rate_khz`], so both engines compare identical hash
/// words against identical thresholds. `cp`/`qk` are the *gated*
/// per-qubit rates (0.0 when the channel is off), mirroring the
/// sampler's gating bit for bit.
fn bank_table(stat: f64, time: f64, cp: f64, qk: f64) -> Arc<[u64]> {
    // Twirl randomizes `stat` per flush, so memoization rarely hits
    // and the sin cost here is the dominant compile expense. Only the
    // codes the runtime can emit need fresh entries: with parity
    // gated off (`cp == 0`) every lane lands in slot 0, and with
    // quasistatic gated off (`qk == 0`) every lattice index collapses
    // to `det = 0` — the unreachable / collapsed entries are filled
    // by copy, cutting the per-table sin count up to 99×.
    let mut t = Vec::with_capacity(3 * LATTICE_STEPS);
    for sign in [0.0f64, 1.0, -1.0] {
        if sign != 0.0 && cp <= 0.0 {
            t.extend_from_within(0..LATTICE_STEPS);
            continue;
        }
        if qk > 0.0 {
            for idx in 0..LATTICE_STEPS {
                let rate = sign * cp + lattice_value(idx) * qk;
                t.push(bern_theta(stat + ca_device::phase_rad(rate, time)));
            }
        } else {
            let v = bern_theta(stat + ca_device::phase_rad(sign * cp, time));
            t.extend(std::iter::repeat_n(v, LATTICE_STEPS));
        }
    }
    t.into()
}

impl BatchPlan {
    /// Builds the frame plan (reference tableau run included) and
    /// compiles the scheduled circuit + noise timeline into the
    /// linear batch program by replaying the serial sampler's control
    /// flow once with scalar banks.
    pub fn build(sim: &Simulator, sc: &ScheduledCircuit, seed: u64) -> Result<Self, SimError> {
        Ok(Self::from_frame(sim, FramePlan::build(sim, sc, seed)?))
    }

    /// Compiles the batch program for an already-built frame plan.
    /// The program replays the instance's own bank toggles (twirl
    /// X/Y pulses flip bank signs), so every twirl instance compiles
    /// its own program over the shared timeline plan.
    pub(crate) fn from_frame(sim: &Simulator, frame: FramePlan) -> Self {
        let _s = ca_obs::span("sim.compile", "batch-program");
        let n = frame.sc.num_qubits;
        let config = &sim.config;
        let plan = &frame.plan;

        let mut ops: Vec<BatchOp> = Vec::new();
        let mut stat = vec![0.0f64; n];
        let mut time = vec![0.0f64; n];
        let mut rzz = vec![0.0f64; plan.edge_pairs.len()];
        let mut deco_dt = vec![0.0f64; n];
        let mut meas_i = 0usize;

        // Only qubits an item can flush or negate mid-stream need
        // their signed time accrued segment by segment; every other
        // qubit's bank is read exactly once (at the final flush), so
        // their accrual collapses to one shared scalar. Idle sign is
        // +1, so the shared accumulator performs the identical f64
        // add sequence the dense per-qubit walk performed — the final
        // bank values are bit-identical (see [`FramePlan::streamed`]).
        let streamed = &frame.streamed;
        let streamed_list = &frame.streamed_list;
        let mut idle_elapsed = 0.0f64;

        // Bank tables are memoized on the exact f64 inputs: a
        // homogeneous brickwork workload produces only a handful of
        // distinct (stat, time, δ, σ) combinations, so the 99-entry
        // sin tables cost next to nothing at compile time.
        type TableKey = (u64, u64, u64, u64);
        let mut tables: BTreeMap<TableKey, Arc<[u64]>> = BTreeMap::new();

        let emit_flush = |q: usize,
                          op_i: usize,
                          stat: &mut [f64],
                          time: &mut [f64],
                          rzz: &mut [f64],
                          deco_dt: &mut [f64],
                          tables: &mut BTreeMap<TableKey, Arc<[u64]>>,
                          ops: &mut Vec<BatchOp>| {
            let cal = &sim.device.calibration.qubits[q];
            let bank = if stat[q] != 0.0 || time[q] != 0.0 {
                let b = (stat[q], time[q]);
                stat[q] = 0.0;
                time[q] = 0.0;
                Some(b)
            } else {
                None
            };
            let table = bank.map(|(s, t)| {
                let cp = if config.charge_parity && cal.charge_parity_khz > 0.0 {
                    cal.charge_parity_khz
                } else {
                    0.0
                };
                let qk = if config.quasistatic && cal.quasistatic_khz > 0.0 {
                    cal.quasistatic_khz
                } else {
                    0.0
                };
                tables
                    .entry((s.to_bits(), t.to_bits(), cp.to_bits(), qk.to_bits()))
                    .or_insert_with(|| bank_table(s, t, cp, qk))
                    .clone()
            });
            let mut edges = Vec::new();
            for &e in &plan.incident[q] {
                let th = rzz[e];
                if th.abs() > 1e-15 {
                    rzz[e] = 0.0;
                    let (a, b) = plan.edge_pairs[e];
                    edges.push(FlushEdge {
                        a,
                        b,
                        e,
                        p: (th / 2.0).sin().powi(2),
                        t: bern_theta(th),
                    });
                }
            }
            let deco = if config.decoherence && deco_dt[q] > 0.0 {
                let dt = deco_dt[q];
                deco_dt[q] = 0.0;
                Some((
                    damping_prob(dt, cal.t1_us),
                    dephasing_prob(dt, t_phi_us(cal.t1_us, cal.t2_us)),
                ))
            } else {
                None
            };
            if bank.is_some() || !edges.is_empty() || deco.is_some() {
                ops.push(BatchOp::Flush {
                    q,
                    op: op_i,
                    bank,
                    table,
                    tslot: 0,
                    edges,
                    deco,
                });
            }
        };

        for (op_i, op) in plan.ops.iter().enumerate() {
            match *op {
                PlanOp::Segment(i) => {
                    let seg = &plan.segments[i];
                    for &(q, th) in &seg.rz_static {
                        stat[q] += th;
                    }
                    for &(e, th) in &plan.seg_edges[i] {
                        rzz[e] += th;
                    }
                    let dt = seg.dt();
                    idle_elapsed += dt;
                    for &q in streamed_list {
                        time[q] += seg.signed_dt(q);
                        deco_dt[q] += dt;
                    }
                }
                PlanOp::Project { item } => {
                    let si = &frame.sc.items[item];
                    let q = si.instruction.qubits[0];
                    emit_flush(
                        q,
                        op_i,
                        &mut stat,
                        &mut time,
                        &mut rzz,
                        &mut deco_dt,
                        &mut tables,
                        &mut ops,
                    );
                    match si.instruction.gate {
                        Gate::Measure => {
                            let reference = frame.ref_outcomes[meas_i];
                            meas_i += 1;
                            ops.push(BatchOp::Measure {
                                q,
                                op: op_i,
                                reference,
                                clbit: si.instruction.clbit,
                                readout: config
                                    .readout_error
                                    .then(|| sim.device.calibration.qubits[q].readout_err),
                            });
                        }
                        Gate::Reset => ops.push(BatchOp::Reset { q, op: op_i }),
                        _ => unreachable!(), // ca-lint: allow(panic) -- plan construction guarantees the op kind at this slot
                    }
                }
                PlanOp::Apply { item } => {
                    let si = &frame.sc.items[item];
                    // ca-lint: allow(panic) -- plan construction guarantees unitary items at Apply ops
                    match frame.items[item].as_ref().expect("unitary item") {
                        ItemOp::CondPauli {
                            q,
                            pauli,
                            clbit,
                            value,
                            ref_fired,
                            physical,
                        } => {
                            let q = *q;
                            if *physical {
                                // Shot-independent bank evolution:
                                // feed-forward pulses flush, exactly
                                // as the serial sampler does.
                                emit_flush(
                                    q,
                                    op_i,
                                    &mut stat,
                                    &mut time,
                                    &mut rzz,
                                    &mut deco_dt,
                                    &mut tables,
                                    &mut ops,
                                );
                            }
                            let (x, z) = pauli_to_bits(*pauli);
                            let err_p = if *physical && config.gate_error {
                                sim.device.calibration.qubits[q].gate_err_1q
                            } else {
                                0.0
                            };
                            ops.push(BatchOp::CondGate {
                                q,
                                op: op_i,
                                x,
                                z,
                                clbit: *clbit,
                                value: *value,
                                ref_fired: *ref_fired,
                                err_p,
                            });
                            ops.push(BatchOp::Anchor { item });
                        }
                        ItemOp::BankRz { q, theta } => {
                            stat[*q] += *theta;
                            ops.push(BatchOp::Anchor { item });
                        }
                        ItemOp::BankRzz { a, b, edge, theta } => {
                            rzz[*edge] += *theta;
                            let err_p = if config.gate_error {
                                let scale = frame
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                sim.device.calibration.gate_err_2q(*a, *b) * scale
                            } else {
                                0.0
                            };
                            if err_p > 0.0 {
                                ops.push(BatchOp::Gate2 {
                                    a: *a,
                                    b: *b,
                                    op: op_i,
                                    m: Symp2::identity(),
                                    err_p,
                                });
                            }
                            ops.push(BatchOp::Anchor { item });
                        }
                        ItemOp::CondBankRz { q, theta, edge } => {
                            stat[*q] += *theta;
                            if let Some((e, th)) = edge {
                                rzz[*e] += *th;
                            }
                            ops.push(BatchOp::Anchor { item });
                        }
                        ItemOp::One { q, table, z_sign } => {
                            let q = *q;
                            match z_sign {
                                Some(s) => {
                                    if *s < 0 {
                                        stat[q] = -stat[q];
                                        time[q] = -time[q];
                                        for &e in &plan.incident[q] {
                                            rzz[e] = -rzz[e];
                                        }
                                    }
                                }
                                None => emit_flush(
                                    q,
                                    op_i,
                                    &mut stat,
                                    &mut time,
                                    &mut rzz,
                                    &mut deco_dt,
                                    &mut tables,
                                    &mut ops,
                                ),
                            }
                            let m = Symp1::from_table(table);
                            let err_p = if config.gate_error
                                && !si.instruction.gate.is_virtual()
                                && !si.instruction.merged
                            {
                                sim.device.calibration.qubits[q].gate_err_1q
                            } else {
                                0.0
                            };
                            if !m.is_identity() || err_p > 0.0 {
                                ops.push(BatchOp::Gate1 {
                                    q,
                                    op: op_i,
                                    m,
                                    err_p,
                                });
                            }
                            ops.push(BatchOp::Anchor { item });
                        }
                        ItemOp::Two {
                            a,
                            b,
                            table,
                            diagonal,
                        } => {
                            let (a, b) = (*a, *b);
                            if !diagonal {
                                emit_flush(
                                    a,
                                    op_i,
                                    &mut stat,
                                    &mut time,
                                    &mut rzz,
                                    &mut deco_dt,
                                    &mut tables,
                                    &mut ops,
                                );
                                emit_flush(
                                    b,
                                    op_i,
                                    &mut stat,
                                    &mut time,
                                    &mut rzz,
                                    &mut deco_dt,
                                    &mut tables,
                                    &mut ops,
                                );
                            }
                            let err_p = if config.gate_error {
                                let scale = frame
                                    .sc
                                    .durations
                                    .two_qubit_error_scale(&si.instruction.gate);
                                sim.device.calibration.gate_err_2q(a, b) * scale
                            } else {
                                0.0
                            };
                            ops.push(BatchOp::Gate2 {
                                a,
                                b,
                                op: op_i,
                                m: Symp2::from_table(table),
                                err_p,
                            });
                            ops.push(BatchOp::Anchor { item });
                        }
                    }
                }
            }
        }
        let final_op = plan.ops.len();
        for q in 0..n {
            if !streamed[q] {
                // Settle the deferred idle accrual: the shared scalar
                // holds exactly the value the per-qubit walk would
                // have accumulated (idle sign is +1 in every segment).
                time[q] = idle_elapsed;
                deco_dt[q] = idle_elapsed;
            }
            emit_flush(
                q,
                final_op,
                &mut stat,
                &mut time,
                &mut rzz,
                &mut deco_dt,
                &mut tables,
                &mut ops,
            );
        }

        let needs_codes = ops
            .iter()
            .any(|op| matches!(op, BatchOp::Flush { table: Some(_), .. }));
        // Number the distinct (qubit, table) pairs: ~6 flushes per
        // qubit share a handful of memoized bank tables, and the
        // sampling pass keys its transposed-threshold cache on this.
        let mut tslot_total = 0usize;
        {
            let mut seen: Vec<Vec<(*const u64, u32)>> = vec![Vec::new(); n];
            for op in ops.iter_mut() {
                if let BatchOp::Flush {
                    q,
                    table: Some(t),
                    tslot,
                    ..
                } = op
                {
                    let key = Arc::as_ptr(t) as *const u64;
                    let list = &mut seen[*q];
                    *tslot = match list.iter().find(|(p, _)| *p == key) {
                        Some(&(_, i)) => i,
                        None => {
                            let i = tslot_total as u32;
                            list.push((key, i));
                            tslot_total += 1;
                            i
                        }
                    };
                }
            }
        }
        let noise_stride = n + ops.iter().map(BatchOp::words_per_w).sum::<usize>();
        Self {
            serial_words: frame.words,
            frame,
            ops,
            n,
            needs_codes,
            noise_stride,
            tslot_total,
        }
    }

    /// Runs one batch of `active ≤ 64` shot-lanes starting at global
    /// shot index `base`, applying any per-shot Pauli insertions in
    /// `ins`. Returns the final bit-planes and the per-lane classical
    /// keys.
    fn run_batch(
        &self,
        sim: &Simulator,
        seed: u64,
        base: usize,
        active: usize,
        ins: &InsertionSet,
    ) -> BatchOut {
        let n = self.n;
        // Phase attribution (sampling vs propagation) reads only the
        // clock and is inert when observability is off — the RNG
        // streams and frame state are untouched at every CA_OBS level.
        let mut phase = crate::obs_util::PhaseTimer::start();
        let mut fx = vec![0u64; n];
        let mut fz = vec![0u64; n];
        // Per-lane stochastic Z rates, laid out `[q][lane]` so flush
        // events read contiguously.
        let mut rates = vec![0.0f64; n * LANES];
        let mut keys = [0u64; LANES];

        // Per-lane RNG streams: identical to serial shots base+j.
        let mut rngs: Vec<StdRng> = (0..active)
            .map(|j| StdRng::seed_from_u64(shot_seed(seed, base + j)))
            .collect();

        // Shot-start draws, in serial order per lane: stochastic-rate
        // sample, then initial Z-frame randomization.
        for (j, rng) in rngs.iter_mut().enumerate() {
            let shot = ShotNoise::sample(&sim.device, &sim.config, rng);
            for q in 0..n {
                rates[q * LANES + j] = shot.z_rate_khz(&sim.device, q);
            }
            let bit = 1u64 << j;
            for w in 0..self.serial_words {
                let bits_here = (n - w * 64).min(64);
                let mask = if bits_here == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits_here) - 1
                };
                let r = rng.random::<u64>() & mask;
                for q in w * 64..w * 64 + bits_here {
                    if r >> (q % 64) & 1 == 1 {
                        fz[q] |= bit;
                    }
                }
            }
        }
        phase.tick_sampling();

        for op in &self.ops {
            match op {
                BatchOp::Flush {
                    q,
                    bank,
                    edges,
                    deco,
                    ..
                } => {
                    let q = *q;
                    if let Some((stat, time)) = bank {
                        let mut zm = 0u64;
                        for (j, rng) in rngs.iter_mut().enumerate() {
                            let theta = stat + ca_device::phase_rad(rates[q * LANES + j], *time);
                            if theta.abs() > 1e-15
                                && rng.random::<f64>() < (theta / 2.0).sin().powi(2)
                            {
                                zm |= 1 << j;
                            }
                        }
                        fz[q] ^= zm;
                    }
                    for &FlushEdge { a, b, p, .. } in edges {
                        let mut zm = 0u64;
                        for (j, rng) in rngs.iter_mut().enumerate() {
                            if rng.random::<f64>() < p {
                                zm |= 1 << j;
                            }
                        }
                        fz[a] ^= zm;
                        fz[b] ^= zm;
                    }
                    if let Some((gamma, p_z)) = deco {
                        if *gamma > 0.0 {
                            let mut xm = 0u64;
                            let mut zm = 0u64;
                            for (j, rng) in rngs.iter_mut().enumerate() {
                                let r: f64 = rng.random();
                                if r < gamma / 4.0 {
                                    xm |= 1 << j;
                                } else if r < gamma / 2.0 {
                                    xm |= 1 << j;
                                    zm |= 1 << j;
                                } else if r < 3.0 * gamma / 4.0 {
                                    zm |= 1 << j;
                                }
                            }
                            fx[q] ^= xm;
                            fz[q] ^= zm;
                        }
                        if *p_z > 0.0 {
                            let mut zm = 0u64;
                            for (j, rng) in rngs.iter_mut().enumerate() {
                                if rng.random::<f64>() < *p_z {
                                    zm |= 1 << j;
                                }
                            }
                            fz[q] ^= zm;
                        }
                    }
                    phase.tick_sampling();
                }
                BatchOp::Gate1 { q, m, err_p, .. } => {
                    let q = *q;
                    let (nx, nz) = m.apply(fx[q], fz[q]);
                    fx[q] = nx;
                    fz[q] = nz;
                    phase.tick_propagation();
                    if *err_p > 0.0 {
                        let mut xm = 0u64;
                        let mut zm = 0u64;
                        for (j, rng) in rngs.iter_mut().enumerate() {
                            if rng.random::<f64>() < *err_p {
                                let k = rng.random_range(0..3usize);
                                let (x, z) = pauli_to_bits([Pauli::X, Pauli::Y, Pauli::Z][k]);
                                if x {
                                    xm |= 1 << j;
                                }
                                if z {
                                    zm |= 1 << j;
                                }
                            }
                        }
                        fx[q] ^= xm;
                        fz[q] ^= zm;
                        phase.tick_sampling();
                    }
                }
                BatchOp::Gate2 { a, b, m, err_p, .. } => {
                    let (a, b) = (*a, *b);
                    let out = m.apply([fx[a], fz[a], fx[b], fz[b]]);
                    fx[a] = out[0];
                    fz[a] = out[1];
                    fx[b] = out[2];
                    fz[b] = out[3];
                    phase.tick_propagation();
                    if *err_p > 0.0 {
                        let mut xa = 0u64;
                        let mut za = 0u64;
                        let mut xb = 0u64;
                        let mut zb = 0u64;
                        for (j, rng) in rngs.iter_mut().enumerate() {
                            if rng.random::<f64>() < *err_p {
                                let k = rng.random_range(1..16usize);
                                let (x1, z1) = pauli_to_bits(Pauli::from_index(k % 4));
                                let (x2, z2) = pauli_to_bits(Pauli::from_index(k / 4));
                                let bit = 1u64 << j;
                                if x1 {
                                    xa |= bit;
                                }
                                if z1 {
                                    za |= bit;
                                }
                                if x2 {
                                    xb |= bit;
                                }
                                if z2 {
                                    zb |= bit;
                                }
                            }
                        }
                        fx[a] ^= xa;
                        fz[a] ^= za;
                        fx[b] ^= xb;
                        fz[b] ^= zb;
                        phase.tick_sampling();
                    }
                }
                BatchOp::Measure {
                    q,
                    reference,
                    clbit,
                    readout,
                    ..
                } => {
                    let q = *q;
                    let mut new_z = 0u64;
                    for (j, rng) in rngs.iter_mut().enumerate() {
                        let bit = 1u64 << j;
                        let mut outcome = reference ^ (fx[q] & bit != 0);
                        if let Some(p) = readout {
                            if rng.random::<f64>() < *p {
                                outcome = !outcome;
                            }
                        }
                        if let Some(c) = clbit {
                            if *c < 64 {
                                if outcome {
                                    keys[j] |= 1 << c;
                                } else {
                                    keys[j] &= !(1 << c);
                                }
                            }
                        }
                        if rng.random::<bool>() {
                            new_z |= bit;
                        }
                    }
                    fz[q] = new_z;
                    phase.tick_sampling();
                }
                BatchOp::Reset { q, .. } => {
                    let q = *q;
                    let mut new_z = 0u64;
                    for (j, rng) in rngs.iter_mut().enumerate() {
                        if rng.random::<bool>() {
                            new_z |= 1 << j;
                        }
                    }
                    fx[q] = 0;
                    fz[q] = new_z;
                    phase.tick_sampling();
                }
                BatchOp::CondGate {
                    q,
                    x,
                    z,
                    clbit,
                    value,
                    ref_fired,
                    err_p,
                    ..
                } => {
                    let q = *q;
                    let mut xm = 0u64;
                    let mut zm = 0u64;
                    for (j, rng) in rngs.iter_mut().enumerate() {
                        let bit = 1u64 << j;
                        let fired = (keys[j] >> clbit & 1 == 1) == *value;
                        if fired != *ref_fired {
                            if *x {
                                xm ^= bit;
                            }
                            if *z {
                                zm ^= bit;
                            }
                        }
                        if *err_p > 0.0 && fired && rng.random::<f64>() < *err_p {
                            let k = rng.random_range(0..3usize);
                            let (ex, ez) = pauli_to_bits([Pauli::X, Pauli::Y, Pauli::Z][k]);
                            if ex {
                                xm ^= bit;
                            }
                            if ez {
                                zm ^= bit;
                            }
                        }
                    }
                    fx[q] ^= xm;
                    fz[q] ^= zm;
                    phase.tick_propagation();
                }
                BatchOp::Anchor { item } => {
                    for &(shot, q, p) in ins.in_shot_range(*item, base, base + active) {
                        let bit = 1u64 << (shot - base);
                        let (x, z) = pauli_to_bits(p);
                        if x {
                            fx[q] ^= bit;
                        }
                        if z {
                            fz[q] ^= bit;
                        }
                    }
                    phase.tick_propagation();
                }
            }
        }
        phase.finish();
        ca_obs::counter_add("engine.batches", 1);
        ca_obs::counter_add("engine.shots", active as u64);
        BatchOut { fx, fz, keys }
    }

    /// The v2 sampling pass for qubits `q_lo..q_hi`: hashes the
    /// range's initial-Z planes and the noise-mask words of every
    /// program op *owned* by a qubit in the range (see
    /// [`BatchOp::owner`]) into `out`, in program order. Called once
    /// with the full range by the unsharded strip path, or once per
    /// contiguous shard by the sharded path — per-shard buffers merged
    /// in op order reproduce the full-range buffer word for word (see
    /// [`crate::shard`]), because every draw here is a pure function
    /// of the hoisted stream keys and the op's own sites.
    #[allow(clippy::too_many_arguments)]
    fn sample_ops(
        &self,
        sim: &Simulator,
        wkeys: &[u64; STRIP_WORDS],
        inner: &[u64],
        wc: usize,
        q_lo: usize,
        q_hi: usize,
        out: &mut Vec<u64>,
    ) {
        // Per-(qubit, word) noise-code groups: lanes sharing a code
        // (charge-parity slot × detuning lattice index) share every
        // bank threshold, so each flush walks one ladder per *group*
        // over shared planes instead of hashing per lane. The gating
        // mirrors `ShotNoise::sample_v2` exactly.
        let config = &sim.config;
        // Flat group storage: entry list + offsets, so the per-strip
        // precompute performs two allocations instead of one `Vec`
        // per (qubit, word).
        let mut group_data: Vec<(u8, u64)> = Vec::new();
        let mut group_off: Vec<u32> = Vec::new();
        if self.needs_codes {
            group_data.reserve_exact((q_hi - q_lo) * wc * 2);
            group_off.reserve_exact((q_hi - q_lo) * wc + 1);
            group_off.push(0);
            let mut masks = [0u64; 3 * LATTICE_STEPS];
            for q in q_lo..q_hi {
                let cal = &sim.device.calibration.qubits[q];
                let par = config.charge_parity && cal.charge_parity_khz > 0.0;
                let s = site::id(site::NOISE, 0, q);
                for w in 0..wc {
                    // Occupied codes as a 99-bit bitmap: the per-lane
                    // loop stays branch-free, and groups drain in code
                    // order (the flush OR is commutative, so ordering
                    // is free to change).
                    let mut seen = [0u64; 2];
                    for j in 0..LANES {
                        let h = site_draw(inner[w * LANES + j], s);
                        let slot = if par {
                            if h >> 63 & 1 == 1 {
                                1
                            } else {
                                2
                            }
                        } else {
                            0
                        };
                        let c = slot * LATTICE_STEPS + lattice_idx(h);
                        seen[c / 64] |= 1 << (c % 64);
                        masks[c] |= 1 << j;
                    }
                    for (blk, &sb) in seen.iter().enumerate() {
                        let mut bits = sb;
                        while bits != 0 {
                            let c = blk * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            group_data.push((c as u8, masks[c]));
                            masks[c] = 0;
                        }
                    }
                    group_off.push(group_data.len() as u32);
                }
            }
        }
        // Transposed flush thresholds, one cache slot per (qubit,
        // word): entry `k` holds the lanes whose own bank threshold
        // has MSB-first bit `k` set. A flush then walks ONE combined
        // ladder — decided lanes are where the plane bit differs from
        // the lane's threshold bit — instead of one ladder per code
        // group. Keyed by the compile-assigned (qubit, table) slot, so
        // repeated flushes of an unchanged table reuse the transpose;
        // twirled circuits draw mostly-distinct tables, where the win
        // is the combined walk itself. Depth 8 leaves a lane
        // undecided with probability 2⁻⁸; the rare survivors finish
        // on the exact per-group ladder below.
        const TDEPTH: usize = 8;
        let mut tcache: Vec<(bool, [u64; TDEPTH])> = if self.needs_codes {
            vec![(false, [0u64; TDEPTH]); self.tslot_total * wc]
        } else {
            Vec::new()
        };

        // The mask buffer: pushed in the exact order the propagation
        // pass consumes the range's words.
        for q in q_lo..q_hi {
            let s = site::id(site::INIT_Z, 0, q);
            for w in 0..wc {
                out.push(fair_plane(site_draw(wkeys[w], s)));
            }
        }
        for bop in &self.ops {
            let owner = bop.owner();
            if owner < q_lo || owner >= q_hi {
                continue;
            }
            match bop {
                BatchOp::Flush {
                    q,
                    op,
                    table,
                    tslot,
                    edges,
                    deco,
                    ..
                } => {
                    let q = *q;
                    if let Some(table) = table {
                        let s = site::id(site::FLUSH_Z, *op, q);
                        for w in 0..wc {
                            let (lo, hi) = (
                                group_off[(q - q_lo) * wc + w],
                                group_off[(q - q_lo) * wc + w + 1],
                            );
                            let gslice = &group_data[lo as usize..hi as usize];
                            let slot = &mut tcache[*tslot as usize * wc + w];
                            if !slot.0 {
                                let mut tp = [0u64; TDEPTH];
                                for &(c, gm) in gslice {
                                    let t = table[c as usize];
                                    for (k, m) in tp.iter_mut().enumerate() {
                                        *m |= (t >> (63 - k) & 1).wrapping_neg() & gm;
                                    }
                                }
                                *slot = (true, tp);
                            }
                            let tp = &slot.1;
                            let b = site_draw(wkeys[w], s);
                            let mut zm = 0u64;
                            let mut undecided = u64::MAX;
                            for (k, &tk) in tp.iter().enumerate() {
                                if undecided == 0 {
                                    break;
                                }
                                let p = plane(b, k as u32);
                                zm |= undecided & tk & !p;
                                undecided &= !(tk ^ p);
                            }
                            if undecided != 0 {
                                // ~2⁻⁸-probability tail: finish each
                                // surviving lane on its own group's
                                // exact ladder from bit TDEPTH on.
                                for &(c, gm) in gslice {
                                    let t = table[c as usize];
                                    let mut und = undecided & gm;
                                    for k in TDEPTH..64 {
                                        if und == 0 || t << k == 0 {
                                            break;
                                        }
                                        let p = plane(b, k as u32);
                                        if t >> (63 - k) & 1 == 1 {
                                            zm |= und & !p;
                                            und &= p;
                                        } else {
                                            und &= !p;
                                        }
                                    }
                                }
                            }
                            out.push(zm);
                        }
                    }
                    for edge in edges {
                        let s = site::id(site::FLUSH_ZZ, *op, edge.e);
                        for w in 0..wc {
                            out.push(lt_mask(site_draw(wkeys[w], s), edge.t));
                        }
                    }
                    if let Some((gamma, p_z)) = deco {
                        // Three damping thresholds over one plane
                        // ladder (X on the middle band, Z where the
                        // outer bands disagree), dephasing folded into
                        // the same Z mask word.
                        let ds = site::id(site::DECO_DAMP, *op, q);
                        let ps = site::id(site::DECO_DEPH, *op, q);
                        let ts = damping_thresholds(*gamma);
                        let pt = bern_threshold(*p_z);
                        for w in 0..wc {
                            let (mut mx, mut mz) = (0u64, 0u64);
                            if *gamma > 0.0 {
                                let [m1, m2, m3] = lt_masks(site_draw(wkeys[w], ds), ts);
                                mx = m2;
                                mz = m1 ^ m3;
                            }
                            if *p_z > 0.0 {
                                mz ^= lt_mask(site_draw(wkeys[w], ps), pt);
                            }
                            out.push(mx);
                            out.push(mz);
                        }
                    }
                }
                BatchOp::Gate1 { q, op, m: _, err_p } => {
                    if *err_p > 0.0 {
                        let t = bern_threshold(*err_p);
                        let hs = site::id(site::GATE_HIT, *op, *q);
                        let ss = site::id(site::GATE_SEL, *op, *q);
                        for w in 0..wc {
                            let mut hit = lt_mask(site_draw(wkeys[w], hs), t);
                            let mut xm = 0u64;
                            let mut zm = 0u64;
                            while hit != 0 {
                                let j = hit.trailing_zeros() as usize;
                                hit &= hit - 1;
                                let k = pick(site_draw(inner[w * LANES + j], ss), 3) as usize;
                                let (x, z) = pauli_to_bits([Pauli::X, Pauli::Y, Pauli::Z][k]);
                                if x {
                                    xm |= 1 << j;
                                }
                                if z {
                                    zm |= 1 << j;
                                }
                            }
                            out.push(xm);
                            out.push(zm);
                        }
                    }
                }
                BatchOp::Gate2 {
                    a,
                    b: _,
                    op,
                    m: _,
                    err_p,
                } => {
                    if *err_p > 0.0 {
                        let t = bern_threshold(*err_p);
                        let hs = site::id(site::GATE_HIT, *op, *a);
                        let ss = site::id(site::GATE_SEL, *op, *a);
                        for w in 0..wc {
                            let mut hit = lt_mask(site_draw(wkeys[w], hs), t);
                            let mut xa = 0u64;
                            let mut za = 0u64;
                            let mut xb = 0u64;
                            let mut zb = 0u64;
                            while hit != 0 {
                                let j = hit.trailing_zeros() as usize;
                                hit &= hit - 1;
                                let k = pick(site_draw(inner[w * LANES + j], ss), 15) as usize + 1;
                                let (x1, z1) = pauli_to_bits(Pauli::from_index(k % 4));
                                let (x2, z2) = pauli_to_bits(Pauli::from_index(k / 4));
                                let bit = 1u64 << j;
                                if x1 {
                                    xa |= bit;
                                }
                                if z1 {
                                    za |= bit;
                                }
                                if x2 {
                                    xb |= bit;
                                }
                                if z2 {
                                    zb |= bit;
                                }
                            }
                            out.push(xa);
                            out.push(za);
                            out.push(xb);
                            out.push(zb);
                        }
                    }
                }
                BatchOp::Measure { q, op, readout, .. } => {
                    let rt = match readout {
                        Some(p) if *p > 0.0 => Some(bern_threshold(*p)),
                        _ => None,
                    };
                    let rs = site::id(site::READOUT, *op, *q);
                    let ms = site::id(site::MEAS_Z, *op, *q);
                    for w in 0..wc {
                        if let Some(t) = rt {
                            out.push(lt_mask(site_draw(wkeys[w], rs), t));
                        }
                        out.push(fair_plane(site_draw(wkeys[w], ms)));
                    }
                }
                BatchOp::Reset { q, op } => {
                    let s = site::id(site::RESET_Z, *op, *q);
                    for w in 0..wc {
                        out.push(fair_plane(site_draw(wkeys[w], s)));
                    }
                }
                BatchOp::CondGate { q, op, err_p, .. } => {
                    // The hit/selector hashes are pure functions, so
                    // they are sampled for every hit lane here; the
                    // propagation pass masks them by the lanes that
                    // actually fired.
                    if *err_p > 0.0 {
                        let t = bern_threshold(*err_p);
                        let hs = site::id(site::GATE_HIT, *op, *q);
                        let ss = site::id(site::GATE_SEL, *op, *q);
                        for w in 0..wc {
                            let mut hit = lt_mask(site_draw(wkeys[w], hs), t);
                            let mut xm = 0u64;
                            let mut zm = 0u64;
                            while hit != 0 {
                                let j = hit.trailing_zeros() as usize;
                                hit &= hit - 1;
                                let k = pick(site_draw(inner[w * LANES + j], ss), 3) as usize;
                                let (ex, ez) = pauli_to_bits([Pauli::X, Pauli::Y, Pauli::Z][k]);
                                if ex {
                                    xm |= 1 << j;
                                }
                                if ez {
                                    zm |= 1 << j;
                                }
                            }
                            out.push(xm);
                            out.push(zm);
                        }
                    }
                }
                BatchOp::Anchor { .. } => {}
            }
        }
    }

    /// Runs one seed-schedule-v2 strip of `active ≤ STRIP_SHOTS`
    /// shot-lanes starting at global shot index `base` (a multiple of
    /// [`STRIP_SHOTS`]): `wc = ceil(active/64)` bit-plane words per
    /// qubit walk the program together, so the per-op dispatch cost is
    /// paid once per 256 shots instead of once per 64.
    ///
    /// Every decision is a counter-based hash of `(seed, shot, site)`
    /// — the identical pure function the serial sampler's v2 path
    /// evaluates — so lane `j` of strip word `w` reproduces shot
    /// `base + 64·w + j` bit-for-bit regardless of walk order, worker
    /// count, or tail occupancy. Order-independence makes the whole
    /// strip two clean passes: a *sampling* pass hashes every noise
    /// decision into a linear mask buffer with no frame state at all,
    /// then a *propagation* pass replays the op stream as
    /// straight-line word arithmetic over the buffer. Lane-uniform
    /// probabilities compare whole 64-lane bit-planes against the
    /// threshold via the [`lt_mask`] ladder (≈ `1 + log₂(1/ε)` planes
    /// instead of 64 scalar draws); lane-varying bank thresholds walk
    /// the same ladder once per noise-code group over shared planes.
    ///
    /// `shards > 1` additionally fans the sampling pass out across
    /// that many contiguous qubit shards (see [`crate::shard`]) —
    /// a wall-clock knob only, with no effect on the output.
    fn run_strip(
        &self,
        sim: &Simulator,
        seed: u64,
        base: usize,
        active: usize,
        ins: &InsertionSet,
        shards: usize,
    ) -> StripOut {
        let n = self.n;
        let mut phase = crate::obs_util::PhaseTimer::start();
        let wc = active.div_ceil(LANES);
        let lanes = wc * LANES;

        // ---- Sampling pass ------------------------------------------------
        // Hoisted stream keys: one mix64 per lane (per-shot draws) and
        // per word (bit-plane draws), reused by every site hash below.
        let mut inner = vec![0u64; lanes];
        for (l, k) in inner.iter_mut().enumerate() {
            *k = shot_key(seed, (base + l) as u64);
        }
        let mut wkeys = [0u64; STRIP_WORDS];
        for (w, k) in wkeys.iter_mut().enumerate().take(wc) {
            *k = shot_key(seed, (base / LANES + w) as u64);
        }

        // Sampling fans out across contiguous qubit shards when the
        // strip has worker threads to spare (see [`crate::shard`]);
        // `shards <= 1` samples the full range inline. Either way the
        // buffer contents are identical word for word, so the shard
        // count never shows up in results.
        let noise = if shards <= 1 {
            let mut noise = Vec::with_capacity(self.noise_stride * wc);
            self.sample_ops(sim, &wkeys, &inner, wc, 0, n, &mut noise);
            noise
        } else {
            let ranges = crate::shard::qubit_ranges(n, shards);
            let bufs = map_batches(ranges.len(), Some(shards), |i| {
                let (lo, hi) = ranges[i];
                let mut buf = Vec::with_capacity(self.noise_stride * wc / ranges.len() + wc);
                self.sample_ops(sim, &wkeys, &inner, wc, lo, hi, &mut buf);
                buf
            });
            let init_lens: Vec<usize> = ranges.iter().map(|&(lo, hi)| (hi - lo) * wc).collect();
            let mut shard_of = vec![0u32; n];
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                for s in &mut shard_of[lo..hi] {
                    *s = i as u32;
                }
            }
            let sched: Vec<(u32, u32)> = self
                .ops
                .iter()
                .filter_map(|bop| {
                    let words = bop.words_per_w() * wc;
                    (words > 0).then_some((shard_of[bop.owner()], words as u32))
                })
                .collect();
            crate::shard::merge_op_order(&bufs, &init_lens, &sched, self.noise_stride * wc)
        };
        debug_assert_eq!(noise.len(), self.noise_stride * wc);
        phase.tick_sampling();

        // ---- Propagation pass ---------------------------------------------
        let mut fx = vec![0u64; n * wc];
        let mut fz = vec![0u64; n * wc];
        let mut key_planes = [[0u64; STRIP_WORDS]; LANES];
        let mut cur = 0usize;
        macro_rules! next {
            () => {{
                let v = noise[cur];
                cur += 1;
                v
            }};
        }
        // Initial Z-frame randomization: Z stabilizes |0…0⟩.
        for q in 0..n {
            for w in 0..wc {
                fz[q * wc + w] = next!();
            }
        }
        for bop in &self.ops {
            match bop {
                BatchOp::Flush {
                    q,
                    table,
                    edges,
                    deco,
                    ..
                } => {
                    let q = *q;
                    if table.is_some() {
                        for w in 0..wc {
                            fz[q * wc + w] ^= next!();
                        }
                    }
                    for edge in edges {
                        for w in 0..wc {
                            let m = next!();
                            fz[edge.a * wc + w] ^= m;
                            fz[edge.b * wc + w] ^= m;
                        }
                    }
                    if deco.is_some() {
                        for w in 0..wc {
                            fx[q * wc + w] ^= next!();
                            fz[q * wc + w] ^= next!();
                        }
                    }
                }
                BatchOp::Gate1 { q, op: _, m, err_p } => {
                    let q = *q;
                    for w in 0..wc {
                        let (nx, nz) = m.apply(fx[q * wc + w], fz[q * wc + w]);
                        fx[q * wc + w] = nx;
                        fz[q * wc + w] = nz;
                    }
                    if *err_p > 0.0 {
                        for w in 0..wc {
                            fx[q * wc + w] ^= next!();
                            fz[q * wc + w] ^= next!();
                        }
                    }
                }
                BatchOp::Gate2 {
                    a,
                    b,
                    op: _,
                    m,
                    err_p,
                } => {
                    let (a, b) = (*a, *b);
                    for w in 0..wc {
                        let out = m.apply([
                            fx[a * wc + w],
                            fz[a * wc + w],
                            fx[b * wc + w],
                            fz[b * wc + w],
                        ]);
                        fx[a * wc + w] = out[0];
                        fz[a * wc + w] = out[1];
                        fx[b * wc + w] = out[2];
                        fz[b * wc + w] = out[3];
                    }
                    if *err_p > 0.0 {
                        for w in 0..wc {
                            fx[a * wc + w] ^= next!();
                            fz[a * wc + w] ^= next!();
                            fx[b * wc + w] ^= next!();
                            fz[b * wc + w] ^= next!();
                        }
                    }
                }
                BatchOp::Measure {
                    q,
                    op: _,
                    reference,
                    clbit,
                    readout,
                } => {
                    let q = *q;
                    let rm = if *reference { u64::MAX } else { 0 };
                    let armed = matches!(readout, Some(p) if *p > 0.0);
                    for w in 0..wc {
                        let mut out = rm ^ fx[q * wc + w];
                        if armed {
                            out ^= next!();
                        }
                        if let Some(c) = clbit {
                            if *c < LANES {
                                key_planes[*c][w] = out;
                            }
                        }
                        // Post-collapse Z randomization.
                        fz[q * wc + w] = next!();
                    }
                }
                BatchOp::Reset { q, op: _ } => {
                    let q = *q;
                    for w in 0..wc {
                        fx[q * wc + w] = 0;
                        fz[q * wc + w] = next!();
                    }
                }
                BatchOp::CondGate {
                    q,
                    op: _,
                    x,
                    z,
                    clbit,
                    value,
                    ref_fired,
                    err_p,
                } => {
                    let q = *q;
                    let vm = if *value { u64::MAX } else { 0 };
                    let rm = if *ref_fired { u64::MAX } else { 0 };
                    for w in 0..wc {
                        // Lanes whose classical bit equals `value`.
                        let fired = !(key_planes[*clbit][w] ^ vm);
                        let diff = fired ^ rm;
                        if *x {
                            fx[q * wc + w] ^= diff;
                        }
                        if *z {
                            fz[q * wc + w] ^= diff;
                        }
                        if *err_p > 0.0 {
                            fx[q * wc + w] ^= next!() & fired;
                            fz[q * wc + w] ^= next!() & fired;
                        }
                    }
                }
                BatchOp::Anchor { item } => {
                    for &(shot, q, p) in ins.in_shot_range(*item, base, base + active) {
                        let l = shot - base;
                        let (x, z) = pauli_to_bits(p);
                        let bit = 1u64 << (l % LANES);
                        if x {
                            fx[q * wc + l / LANES] ^= bit;
                        }
                        if z {
                            fz[q * wc + l / LANES] ^= bit;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(cur, noise.len());

        // Per-lane classical keys from the clbit planes (sparse
        // transpose: zero plane bits contribute nothing).
        let mut keys = vec![0u64; lanes];
        for (c, planes) in key_planes.iter().enumerate() {
            for (w, &plane) in planes.iter().enumerate().take(wc) {
                let mut p = plane;
                while p != 0 {
                    let j = p.trailing_zeros() as usize;
                    p &= p - 1;
                    keys[w * LANES + j] |= 1u64 << c;
                }
            }
        }
        phase.tick_propagation();
        phase.finish();
        ca_obs::counter_add("engine.batches", wc as u64);
        ca_obs::counter_add("engine.shots", active as u64);
        StripOut { fx, fz, keys, wc }
    }

    /// Shot-sampled classical counts over this prepared plan.
    /// `cancel` is polled at the start of every batch strip: each
    /// strip closure returns `Result`, and the first error in strip
    /// order aborts the whole run with no partial counts.
    pub(crate) fn counts(
        &self,
        sim: &Simulator,
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<RunResult, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let nbits = self.frame.sc.num_clbits;
        let parts = if sim.schedule == SeedSchedule::V2 {
            let strips = shots.div_ceil(STRIP_SHOTS);
            let shards =
                crate::shard::shard_count(self.n, strips, worker_count(workers, usize::MAX));
            map_batches(strips, workers, |s| -> Result<_, SimError> {
                crate::cancel::check_opt(cancel)?;
                let base = s * STRIP_SHOTS;
                let active = STRIP_SHOTS.min(shots - base);
                let out = self.run_strip(sim, seed, base, active, ins, shards);
                Ok(crate::obs_util::time_engine_phase("reduction", || {
                    let mut counts = BTreeMap::new();
                    for &key in out.keys.iter().take(active) {
                        *counts.entry(key).or_insert(0usize) += 1;
                    }
                    counts
                }))
            })
        } else {
            let batches = shots.div_ceil(LANES);
            map_batches(batches, workers, |b| -> Result<_, SimError> {
                crate::cancel::check_opt(cancel)?;
                let base = b * LANES;
                let active = LANES.min(shots - base);
                let out = self.run_batch(sim, seed, base, active, ins);
                Ok(crate::obs_util::time_engine_phase("reduction", || {
                    let mut counts = BTreeMap::new();
                    for &key in out.keys.iter().take(active) {
                        *counts.entry(key).or_insert(0usize) += 1;
                    }
                    counts
                }))
            })
        }
        .into_iter()
        .collect::<Result<Vec<_>, SimError>>()?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            RunResult::from_parts(shots, nbits, parts)
        }))
    }

    /// Reference expectation plus the observable's support as
    /// per-qubit plane selectors: lane-parity word =
    /// XOR over support of (z_obs ? fx[q] : 0) ^ (x_obs ? fz[q] : 0).
    fn prepare_observables(&self, paulis: &[PauliString]) -> PreparedObs {
        paulis
            .iter()
            .map(|p| {
                let r = self.frame.ref_tableau.expect(p); // ca-lint: allow(panic) -- reference tableau is set during plan construction
                let support: Vec<(usize, bool, bool)> = p
                    .paulis
                    .iter()
                    .enumerate()
                    .filter(|(_, &pl)| pl != Pauli::I)
                    .map(|(q, &pl)| {
                        let (x, z) = pauli_to_bits(pl);
                        (q, x, z)
                    })
                    .collect();
                (r, support)
            })
            .collect()
    }

    /// Frame-averaged Pauli expectations over this prepared plan.
    /// `cancel` is polled at the start of every batch strip.
    pub(crate) fn expectations(
        &self,
        sim: &Simulator,
        paulis: &[PauliString],
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let prepared = self.prepare_observables(paulis);
        let partials: Vec<Vec<f64>> = if sim.schedule == SeedSchedule::V2 {
            let strips = shots.div_ceil(STRIP_SHOTS);
            let shards =
                crate::shard::shard_count(self.n, strips, worker_count(workers, usize::MAX));
            map_batches(strips, workers, |s| -> Result<Vec<f64>, SimError> {
                crate::cancel::check_opt(cancel)?;
                let base = s * STRIP_SHOTS;
                let active = STRIP_SHOTS.min(shots - base);
                let out = self.run_strip(sim, seed, base, active, ins, shards);
                Ok(crate::obs_util::time_engine_phase("reduction", || {
                    prepared
                        .iter()
                        .map(|(r, support)| {
                            if *r == 0 {
                                return 0.0;
                            }
                            let mut sum = 0i64;
                            for w in 0..out.wc {
                                let aw = LANES.min(active - w * LANES);
                                let mask = if aw == LANES {
                                    u64::MAX
                                } else {
                                    (1u64 << aw) - 1
                                };
                                let parity = strip_parity(&out, w, support);
                                let flips = (parity & mask).count_ones() as i64;
                                sum += aw as i64 - 2 * flips;
                            }
                            (*r as i64 * sum) as f64
                        })
                        .collect()
                }))
            })
        } else {
            let batches = shots.div_ceil(LANES);
            map_batches(batches, workers, |b| -> Result<Vec<f64>, SimError> {
                crate::cancel::check_opt(cancel)?;
                let base = b * LANES;
                let active = LANES.min(shots - base);
                let out = self.run_batch(sim, seed, base, active, ins);
                Ok(crate::obs_util::time_engine_phase("reduction", || {
                    let lane_mask = if active == LANES {
                        u64::MAX
                    } else {
                        (1u64 << active) - 1
                    };
                    prepared
                        .iter()
                        .map(|(r, support)| {
                            if *r == 0 {
                                return 0.0;
                            }
                            let parity = support_parity(&out, support);
                            let flips = (parity & lane_mask).count_ones() as i64;
                            (*r as i64 * (active as i64 - 2 * flips)) as f64
                        })
                        .collect()
                }))
            })
        }
        .into_iter()
        .collect::<Result<Vec<_>, SimError>>()?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            let mut out = vec![0.0; paulis.len()];
            for part in partials {
                for (o, p) in out.iter_mut().zip(part.iter()) {
                    *o += p;
                }
            }
            for o in &mut out {
                *o /= shots as f64;
            }
            out
        }))
    }

    /// Per-shot ±1 outcomes over this prepared plan: batch `b`'s
    /// masked parity word *is* word `b` of the shot bitvector, so the
    /// result is assembled with no per-shot work at all. `cancel` is
    /// polled at the start of every batch strip.
    pub(crate) fn flips(
        &self,
        sim: &Simulator,
        paulis: &[PauliString],
        ins: &InsertionSet,
        params: crate::plan::ShotParams<'_>,
    ) -> Result<PauliFlips, SimError> {
        let crate::plan::ShotParams {
            shots,
            seed,
            workers,
            cancel,
        } = params;
        let prepared = self.prepare_observables(paulis);
        let words = shots.div_ceil(LANES);
        if sim.schedule == SeedSchedule::V2 {
            let strips = shots.div_ceil(STRIP_SHOTS);
            let shards =
                crate::shard::shard_count(self.n, strips, worker_count(workers, usize::MAX));
            let partials: Vec<Vec<Vec<u64>>> =
                map_batches(strips, workers, |s| -> Result<_, SimError> {
                    crate::cancel::check_opt(cancel)?;
                    let base = s * STRIP_SHOTS;
                    let active = STRIP_SHOTS.min(shots - base);
                    let out = self.run_strip(sim, seed, base, active, ins, shards);
                    Ok(crate::obs_util::time_engine_phase("reduction", || {
                        prepared
                            .iter()
                            .map(|(_, support)| {
                                (0..out.wc)
                                    .map(|w| {
                                        let aw = LANES.min(active - w * LANES);
                                        let mask = if aw == LANES {
                                            u64::MAX
                                        } else {
                                            (1u64 << aw) - 1
                                        };
                                        strip_parity(&out, w, support) & mask
                                    })
                                    .collect()
                            })
                            .collect()
                    }))
                })
                .into_iter()
                .collect::<Result<Vec<_>, SimError>>()?;
            return Ok(crate::obs_util::time_engine_phase("reduction", || {
                let mut flips = vec![vec![0u64; words]; paulis.len()];
                for (s, per_obs) in partials.iter().enumerate() {
                    for (o, obs_words) in per_obs.iter().enumerate() {
                        for (w, word) in obs_words.iter().enumerate() {
                            flips[o][s * STRIP_WORDS + w] = *word;
                        }
                    }
                }
                PauliFlips {
                    shots,
                    refs: prepared.iter().map(|(r, _)| *r).collect(),
                    flips,
                }
            }));
        }
        let partials: Vec<Vec<u64>> = map_batches(words, workers, |b| -> Result<_, SimError> {
            crate::cancel::check_opt(cancel)?;
            let base = b * LANES;
            let active = LANES.min(shots - base);
            let out = self.run_batch(sim, seed, base, active, ins);
            Ok(crate::obs_util::time_engine_phase("reduction", || {
                let lane_mask = if active == LANES {
                    u64::MAX
                } else {
                    (1u64 << active) - 1
                };
                prepared
                    .iter()
                    .map(|(_, support)| support_parity(&out, support) & lane_mask)
                    .collect()
            }))
        })
        .into_iter()
        .collect::<Result<Vec<_>, SimError>>()?;
        Ok(crate::obs_util::time_engine_phase("reduction", || {
            let mut flips = vec![vec![0u64; words]; paulis.len()];
            for (b, batch_words) in partials.iter().enumerate() {
                for (o, w) in batch_words.iter().enumerate() {
                    flips[o][b] = *w;
                }
            }
            PauliFlips {
                shots,
                refs: prepared.iter().map(|(r, _)| *r).collect(),
                flips,
            }
        }))
    }
}

/// `(reference expectation, support plane selectors)` per observable.
type PreparedObs = Vec<(i32, Vec<(usize, bool, bool)>)>;

/// Lane-parity word of one observable against a batch's final planes.
#[inline]
fn support_parity(out: &BatchOut, support: &[(usize, bool, bool)]) -> u64 {
    let mut parity = 0u64;
    for &(q, x_obs, z_obs) in support {
        if z_obs {
            parity ^= out.fx[q];
        }
        if x_obs {
            parity ^= out.fz[q];
        }
    }
    parity
}

/// Lane-parity word of one observable against one word of a v2
/// strip's final planes (layout `[q * wc + w]`).
#[inline]
fn strip_parity(out: &StripOut, w: usize, support: &[(usize, bool, bool)]) -> u64 {
    let mut parity = 0u64;
    for &(q, x_obs, z_obs) in support {
        if z_obs {
            parity ^= out.fx[q * out.wc + w];
        }
        if x_obs {
            parity ^= out.fz[q * out.wc + w];
        }
    }
    parity
}

/// The finished state of one batch: per-qubit frame bit-planes and
/// per-lane classical keys.
struct BatchOut {
    fx: Vec<u64>,
    fz: Vec<u64>,
    keys: [u64; LANES],
}

/// The finished state of one v2 strip: per-qubit plane words laid out
/// `[q * wc + w]`, per-lane classical keys (`w * 64 + j`), and the
/// strip's word count `wc ≤ STRIP_WORDS`.
struct StripOut {
    fx: Vec<u64>,
    fz: Vec<u64>,
    keys: Vec<u64>,
    wc: usize,
}

/// The bit-parallel batched frame engine (see the module docs): a
/// [`crate::SimEngine`] over a borrowed simulator configuration,
/// producing bit-identical seeded counts to the serial
/// [`crate::StabilizerEngine`] at a fraction of the cost.
pub struct BatchedFrameEngine<'a> {
    /// The owning simulator (device + noise configuration).
    pub sim: &'a Simulator,
}

impl<'a> BatchedFrameEngine<'a> {
    /// Borrows the simulator.
    pub fn new(sim: &'a Simulator) -> Self {
        Self { sim }
    }

    /// Shot-sampled classical counts (see [`crate::SimEngine`]).
    pub fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        self.run_counts_with_workers(sc, shots, seed, None)
    }

    /// [`Self::run_counts`] with an explicit worker-thread count —
    /// the determinism hook: counts are identical for every choice.
    pub fn run_counts_with_workers(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
        workers: Option<usize>,
    ) -> Result<RunResult, SimError> {
        let plan = BatchPlan::build(self.sim, sc, seed)?;
        plan.counts(
            self.sim,
            &InsertionSet::empty(),
            crate::plan::ShotParams {
                shots,
                seed,
                workers,
                cancel: None,
            },
        )
    }

    /// [`Self::run_counts`] with scheduled per-shot Pauli insertions
    /// (see [`crate::insert`]): bit-identical to the serial engine's
    /// [`crate::StabilizerEngine::run_counts_with_insertions`] for
    /// any seed, shot count, and worker count.
    pub fn run_counts_with_insertions(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<RunResult, SimError> {
        let plan = BatchPlan::build(self.sim, sc, seed)?;
        plan.counts(
            self.sim,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers,
                cancel: None,
            },
        )
    }

    /// Frame-averaged Pauli expectations (see [`crate::SimEngine`]).
    pub fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        self.expect_paulis_with_workers(sc, paulis, shots, seed, None)
    }

    /// [`Self::expect_paulis`] with an explicit worker-thread count.
    /// Per-batch partial sums are reduced in batch order and every
    /// shot contributes an integer ±1, so the result is bit-identical
    /// for every worker count — and equal to the serial engine's.
    pub fn expect_paulis_with_workers(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, SimError> {
        let plan = BatchPlan::build(self.sim, sc, seed)?;
        plan.expectations(
            self.sim,
            paulis,
            &InsertionSet::empty(),
            crate::plan::ShotParams {
                shots,
                seed,
                workers,
                cancel: None,
            },
        )
    }

    /// [`Self::expect_paulis`] with scheduled per-shot Pauli
    /// insertions.
    pub fn expect_paulis_with_insertions(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, SimError> {
        let plan = BatchPlan::build(self.sim, sc, seed)?;
        plan.expectations(
            self.sim,
            paulis,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers,
                cancel: None,
            },
        )
    }

    /// Per-shot ±1 outcomes (see [`crate::result::PauliFlips`]):
    /// bit-identical to the serial engine's
    /// [`crate::StabilizerEngine::expect_flips`].
    pub fn expect_flips(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<PauliFlips, SimError> {
        let plan = BatchPlan::build(self.sim, sc, seed)?;
        plan.flips(
            self.sim,
            paulis,
            ins,
            crate::plan::ShotParams {
                shots,
                seed,
                workers,
                cancel: None,
            },
        )
    }
}

/// Verifies a 1q table's symplectic form against direct lookups —
/// exposed for the property tests.
#[cfg(test)]
fn symp1_matches_table(table: &[(i8, Pauli); 4]) -> bool {
    let m = Symp1::from_table(table);
    Pauli::ALL.iter().all(|&p| {
        let (x, z) = pauli_to_bits(p);
        let lane = |b: bool| if b { 1u64 } else { 0 };
        let (nx, nz) = m.apply(lane(x), lane(z));
        (nx == 1, nz == 1) == pauli_to_bits(table[p.index()].1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::PauliInsertion;
    use crate::noise::NoiseConfig;
    use crate::pauli_frame::StabilizerEngine;
    use ca_circuit::clifford::{conjugation_table_1q, conjugation_table_2q};
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn symplectic_forms_match_tables() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rz(std::f64::consts::FRAC_PI_2),
        ] {
            assert!(
                symp1_matches_table(&conjugation_table_1q(g)),
                "{}",
                g.name()
            );
        }
        for g in [
            Gate::Cx,
            Gate::Cz,
            Gate::Ecr,
            Gate::Rzz(std::f64::consts::FRAC_PI_2),
        ] {
            let table = conjugation_table_2q(g);
            let m = Symp2::from_table(&table);
            for idx in 0..16 {
                let (pa, pb) = (Pauli::from_index(idx % 4), Pauli::from_index(idx / 4));
                let (xa, za) = pauli_to_bits(pa);
                let (xb, zb) = pauli_to_bits(pb);
                let lane = |b: bool| if b { 1u64 } else { 0 };
                let out = m.apply([lane(xa), lane(za), lane(xb), lane(zb)]);
                let (_, (qa, qb)) = table[idx];
                let (exa, eza) = pauli_to_bits(qa);
                let (exb, ezb) = pauli_to_bits(qb);
                assert_eq!(
                    [out[0] == 1, out[1] == 1, out[2] == 1, out[3] == 1],
                    [exa, eza, exb, ezb],
                    "{} on pair {idx}",
                    g.name()
                );
            }
        }
    }

    /// A noisy 5-qubit Clifford workload exercising every channel.
    fn noisy_workload() -> (Simulator, Circuit) {
        let mut dev = uniform_device(Topology::line(5), 60.0);
        for q in 0..5 {
            dev.calibration.qubits[q].quasistatic_khz = 30.0;
            dev.calibration.qubits[q].charge_parity_khz = 3.0;
            dev.calibration.qubits[q].t1_us = 80.0;
            dev.calibration.qubits[q].t2_us = 90.0;
            dev.calibration.qubits[q].readout_err = 0.03;
            dev.calibration.qubits[q].gate_err_1q = 0.002;
        }
        let sim = Simulator::with_config(dev, NoiseConfig::default());
        let mut qc = Circuit::new(5, 5);
        qc.h(0).sx(1).x(2).s(3).h(4);
        qc.ecr(0, 1).cx(2, 3);
        qc.delay(800.0, 4);
        qc.x(4);
        qc.delay(800.0, 4);
        qc.cz(1, 2).ecr(3, 4);
        qc.reset(2);
        qc.h(2);
        for q in 0..5 {
            qc.measure(q, q);
        }
        (sim, qc)
    }

    #[test]
    fn batch_counts_bit_identical_to_serial() {
        let (sim, qc) = noisy_workload();
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        for (shots, seed) in [(1usize, 3u64), (63, 5), (64, 7), (65, 9), (200, 11)] {
            let a = serial.run_counts(&sc, shots, seed).unwrap();
            let b = batch.run_counts(&sc, shots, seed).unwrap();
            assert_eq!(a, b, "shots {shots} seed {seed}");
        }
    }

    /// Direct strip-level check, bypassing the dispatch policy: every
    /// shard count hands `run_strip` the identical mask buffer, so the
    /// final planes and classical keys match word for word — including
    /// shard counts that do not divide the qubit count and a tail
    /// strip with partial lanes.
    #[test]
    fn sharded_strip_matches_unsharded_for_every_shard_count() {
        let (sim, qc) = noisy_workload();
        let sim = sim.with_seed_schedule(SeedSchedule::V2);
        let sc = sched(&qc);
        let plan = BatchPlan::build(&sim, &sc, 17).unwrap();
        let ins = InsertionSet::empty();
        for (base, active) in [(0usize, STRIP_SHOTS), (STRIP_SHOTS, 77)] {
            let reference = plan.run_strip(&sim, 17, base, active, &ins, 1);
            for shards in [2usize, 3, 5] {
                let got = plan.run_strip(&sim, 17, base, active, &ins, shards);
                assert_eq!(reference.fx, got.fx, "fx diverges at {shards} shards");
                assert_eq!(reference.fz, got.fz, "fz diverges at {shards} shards");
                assert_eq!(reference.keys, got.keys, "keys diverge at {shards} shards");
                assert_eq!(reference.wc, got.wc);
            }
        }
    }

    /// Strips the trailing measurement round so expectations see the
    /// frame state (shared by the expectation-identity tests; counts
    /// tests keep the measurements — they are uniformly supported).
    fn without_measurements(mut qc: Circuit) -> Circuit {
        qc.instructions.retain(|i| i.gate != Gate::Measure);
        qc
    }

    #[test]
    fn batch_expectations_bit_identical_to_serial() {
        let (sim, qc) = noisy_workload();
        let qc = without_measurements(qc);
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let obs = [
            PauliString::parse("ZZIII").unwrap(),
            PauliString::parse("IXXII").unwrap(),
            PauliString::parse("IIIZZ").unwrap(),
            PauliString::parse("YIIIY").unwrap(),
        ];
        let a = serial.expect_paulis(&sc, &obs, 300, 17).unwrap();
        let b = batch.expect_paulis(&sc, &obs, 300, 17).unwrap();
        assert_eq!(a, b, "expectation sums are integer-exact");
    }

    #[test]
    fn counts_independent_of_worker_count() {
        let (sim, qc) = noisy_workload();
        let sc = sched(&qc);
        let batch = BatchedFrameEngine::new(&sim);
        let reference = batch
            .run_counts_with_workers(&sc, 500, 23, Some(1))
            .unwrap();
        for workers in [2usize, 3, 8] {
            let got = batch
                .run_counts_with_workers(&sc, 500, 23, Some(workers))
                .unwrap();
            assert_eq!(reference, got, "{workers} workers");
        }
    }

    #[test]
    fn insertions_flip_outcomes_and_stay_bit_identical() {
        let (sim, qc) = noisy_workload();
        let sc = sched(&qc);
        // Insert an X on qubit 2 right after the final H(2) for half
        // the shots: those shots' bit 2 must flip relative to the
        // uninserted run, identically on both engines.
        let h2 = sc
            .items
            .iter()
            .enumerate()
            .filter(|(_, si)| si.instruction.gate == Gate::H && si.instruction.qubits == [2])
            .map(|(i, _)| i)
            .next_back()
            .unwrap();
        let shots = 150usize;
        let list: Vec<PauliInsertion> = (0..shots)
            .filter(|s| s % 2 == 0)
            .map(|shot| PauliInsertion {
                shot,
                item: h2,
                qubit: 2,
                pauli: Pauli::X,
            })
            .collect();
        let ins = InsertionSet::build(&sc, &list).unwrap();
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let a = serial
            .run_counts_with_insertions(&sc, shots, 5, &ins)
            .unwrap();
        let b = batch
            .run_counts_with_insertions(&sc, shots, 5, &ins, None)
            .unwrap();
        assert_eq!(a, b, "insertion runs must stay bit-identical");
        let plain = batch.run_counts(&sc, shots, 5).unwrap();
        assert_ne!(a, plain, "insertions must change sampled outcomes");
    }

    #[test]
    fn expect_flips_matches_expect_paulis() {
        let (sim, qc) = noisy_workload();
        let qc = without_measurements(qc);
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let obs = [
            PauliString::parse("ZZIII").unwrap(),
            PauliString::parse("IXXII").unwrap(),
            PauliString::parse("YIIIY").unwrap(),
        ];
        let none = InsertionSet::empty();
        // 130 shots: two full words plus a partial tail word.
        let fs = serial.expect_flips(&sc, &obs, 130, 9, &none).unwrap();
        let fb = batch.expect_flips(&sc, &obs, 130, 9, &none, None).unwrap();
        assert_eq!(fs, fb, "per-shot flips must be bit-identical");
        let means = batch.expect_paulis(&sc, &obs, 130, 9).unwrap();
        for (o, m) in means.iter().enumerate() {
            assert_eq!(fb.mean(o), *m, "observable {o}");
        }
    }

    /// A noisy dynamic workload: mid-circuit measurement, conditional
    /// Pauli corrections (X/Y/Z), an outcome-conditioned diagonal
    /// rotation, bank-folded Rz/Rzz, and a reset — every new
    /// feed-forward path in one circuit.
    fn dynamic_workload_with(final_round: bool) -> (Simulator, Circuit) {
        let (sim, _) = noisy_workload();
        let mut qc = Circuit::new(5, 5);
        qc.h(0).cx(0, 1).cx(1, 2).h(1);
        qc.measure(1, 0);
        qc.gate_if(Gate::Z, [2], 0, true);
        qc.gate_if(Gate::X, [0], 0, false);
        qc.gate_if(Gate::Y, [3], 0, true);
        qc.gate_if(Gate::Rz(0.37), [2], 0, true);
        qc.rz(0.21, 3).rzz(0.5, 3, 4);
        qc.reset(1);
        qc.h(1).ecr(3, 4);
        if final_round {
            for q in 0..5 {
                qc.measure(q, q);
            }
        }
        (sim, qc)
    }

    fn dynamic_workload() -> (Simulator, Circuit) {
        dynamic_workload_with(true)
    }

    #[test]
    fn conditional_circuits_stay_bit_identical_to_serial() {
        let (sim, qc) = dynamic_workload();
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        for (shots, seed) in [(1usize, 3u64), (63, 5), (64, 7), (65, 9), (257, 11)] {
            let a = serial.run_counts(&sc, shots, seed).unwrap();
            let b = batch.run_counts(&sc, shots, seed).unwrap();
            assert_eq!(a, b, "shots {shots} seed {seed}");
        }
        // Worker-count independence holds through feed-forward too.
        let reference = batch
            .run_counts_with_workers(&sc, 300, 23, Some(1))
            .unwrap();
        for workers in [2usize, 3, 8] {
            let got = batch
                .run_counts_with_workers(&sc, 300, 23, Some(workers))
                .unwrap();
            assert_eq!(reference, got, "{workers} workers");
        }
    }

    #[test]
    fn conditional_expectations_bit_identical_to_serial() {
        // Keep the mid-circuit measurement (it feeds the conditions);
        // only the final readout round is absent.
        let (sim, qc) = dynamic_workload_with(false);
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let obs = [
            PauliString::parse("ZZIII").unwrap(),
            PauliString::parse("IIZZI").unwrap(),
            PauliString::parse("XIIII").unwrap(),
        ];
        let a = serial.expect_paulis(&sc, &obs, 130, 17).unwrap();
        let b = batch.expect_paulis(&sc, &obs, 130, 17).unwrap();
        assert_eq!(a, b, "expectation sums are integer-exact");
    }

    #[test]
    fn wide_device_tail_lanes() {
        // 127 qubits (two serial frame words) with a non-multiple-of-64
        // shot count: exercises both word-boundary paths at once.
        let n = 127;
        let dev = uniform_device(Topology::line(n), 40.0);
        let sim = Simulator::with_config(dev, NoiseConfig::default());
        let mut qc = Circuit::new(n, n);
        for q in 0..n {
            qc.h(q);
        }
        for q in (0..n - 1).step_by(2) {
            qc.ecr(q, q + 1);
        }
        for q in 0..n {
            qc.measure(q, q);
        }
        let sc = sched(&qc);
        let serial = StabilizerEngine::new(&sim);
        let batch = BatchedFrameEngine::new(&sim);
        let a = serial.run_counts(&sc, 70, 31).unwrap();
        let b = batch.run_counts(&sc, 70, 31).unwrap();
        assert_eq!(a, b);
    }
}

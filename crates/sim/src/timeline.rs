//! Timeline segmentation and context-aware coherent-noise accumulation.
//!
//! The scheduled circuit is chopped into segments at every instruction
//! boundary *and* at the internal echo flip points of each ECR gate
//! (control frame flips at τg/2; target rotary frame flips at τg/4,
//! τg/2, 3τg/4). Within a segment every qubit has a constant context
//! and toggling-frame sign σ ∈ {−1, +1}, and each crosstalk edge
//! `(i,j)` with rate ν accrues the Eq. (1) phases
//!
//! ```text
//! θ_zz(i,j) += 2πν·Δt·σ_i·σ_j     θ_z(i) += −2πν·Δt·σ_i   (and j)
//! ```
//!
//! This single integral rule reproduces all four contexts of Fig. 3:
//! aligned DD pulses leave σ_i·σ_j ≡ 1 (ZZ survives), staggered/Walsh
//! pulses zero the signed area, the ECR control echo refocuses ZZ to
//! its spectator (case II), and parallel ECR controls re-align (case
//! IV). Circuit-level DD pulses need no signs here — they are real X
//! gates whose conjugation the executor performs exactly; only
//! *gate-internal* echoes need σ.

use crate::noise::NoiseConfig;
use ca_circuit::{Gate, ScheduledCircuit};
use ca_device::{phase_rad, Device};

/// What a qubit is doing during one segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activity {
    /// Idle (or inside an explicit delay).
    Idle,
    /// Inside a physical single-qubit gate (or conditional 1q gate).
    Driven1Q {
        /// Index of the covering scheduled item.
        item: usize,
    },
    /// Control of an ECR gate; `sign` is the echo frame in this
    /// sub-segment (+1 first half, −1 second half).
    EcrControl {
        /// Index of the covering scheduled item.
        item: usize,
        /// Toggling-frame sign.
        sign: f64,
    },
    /// Target of an ECR gate; the rotary echo flips each quarter
    /// (+1, −1, +1, −1).
    EcrTarget {
        /// Index of the covering scheduled item.
        item: usize,
        /// Toggling-frame sign.
        sign: f64,
    },
    /// Inside a natively executed canonical gate (approximated as an
    /// echoed gate: both frames flip at the midpoint).
    CanActive {
        /// Index of the covering scheduled item.
        item: usize,
        /// Toggling-frame sign.
        sign: f64,
    },
    /// Being measured (collapsed at window start; couplings continue).
    Measuring {
        /// Index of the covering scheduled item.
        item: usize,
    },
    /// Being reset.
    Resetting {
        /// Index of the covering scheduled item.
        item: usize,
    },
}

impl Activity {
    /// The toggling-frame sign σ for this activity.
    pub fn sign(&self) -> f64 {
        match self {
            Activity::EcrControl { sign, .. }
            | Activity::EcrTarget { sign, .. }
            | Activity::CanActive { sign, .. } => *sign,
            _ => 1.0,
        }
    }

    /// The covering item index, if any.
    pub fn item(&self) -> Option<usize> {
        match self {
            Activity::Driven1Q { item }
            | Activity::EcrControl { item, .. }
            | Activity::EcrTarget { item, .. }
            | Activity::CanActive { item, .. }
            | Activity::Measuring { item }
            | Activity::Resetting { item } => Some(*item),
            Activity::Idle => None,
        }
    }

    /// True when the qubit's drive can Stark-shift its neighbours
    /// (single-qubit pulses and the ECR control drive — Sec. III-C).
    pub fn is_starking(&self) -> bool {
        matches!(
            self,
            Activity::Driven1Q { .. } | Activity::EcrControl { .. }
        )
    }
}

/// One timeline segment with precomputed *static* coherent phases.
///
/// The executor adds the static phases to its pending diagonal banks
/// and multiplies each qubit's `signed_dt` by the per-shot stochastic
/// Z rates; all per-segment work is scalar.
///
/// Storage is *sparse in activity*: only qubits doing something
/// non-idle are listed, so a segment on a 1121-qubit device whose
/// layer drives 40 qubits stores 40 entries, not 1121. Idle qubits
/// are implicit — sign +1, no covering item — which is exactly what
/// the dense per-qubit arrays used to record for them.
#[derive(Clone, Debug)]
pub struct SegmentOp {
    /// Segment start (ns).
    pub t0: f64,
    /// Segment end (ns).
    pub t1: f64,
    /// Coherent Z phases per qubit: `(qubit, θ)`.
    pub rz_static: Vec<(usize, f64)>,
    /// Coherent ZZ phases per edge: `(i, j, θ)`.
    pub rzz_static: Vec<(usize, usize, f64)>,
    /// Non-idle qubits and their activities, ascending by qubit.
    pub active: Vec<(usize, Activity)>,
}

impl SegmentOp {
    /// Segment length in ns.
    pub fn dt(&self) -> f64 {
        self.t1 - self.t0
    }

    /// The qubit's activity in this segment ([`Activity::Idle`] when
    /// unlisted).
    pub fn activity(&self, q: usize) -> Activity {
        self.active
            .binary_search_by_key(&q, |&(qq, _)| qq)
            .map(|i| self.active[i].1)
            .unwrap_or(Activity::Idle)
    }

    /// σ·Δt in ns for one qubit (for per-shot stochastic Z rates).
    /// Idle qubits accrue `+Δt` exactly.
    pub fn signed_dt(&self, q: usize) -> f64 {
        self.activity(q).sign() * self.dt()
    }
}

/// Determines every qubit's activity for every window at once: one
/// interval-fill pass per item instead of an O(items) scan per window
/// (the naive product is the dominant plan-build cost on DD-compiled
/// full-device circuits, where both counts run into the thousands).
/// Windows are given by their ascending midpoints; a window's
/// activities are decided by the items covering its midpoint, with
/// later items overriding earlier ones exactly as the previous
/// per-window scan did.
fn activities_for_windows(
    sc: &ScheduledCircuit,
    mids: &[f64],
) -> Vec<std::collections::BTreeMap<usize, Activity>> {
    let mut out = vec![std::collections::BTreeMap::new(); mids.len()];
    for (idx, si) in sc.items.iter().enumerate() {
        if si.duration <= 0.0 {
            continue;
        }
        let gate = si.instruction.gate;
        if matches!(gate, Gate::Barrier | Gate::Delay(_)) {
            continue;
        }
        // Windows whose midpoint falls inside [t0, t1].
        let start = mids.partition_point(|&m| m < si.t0);
        for (w, &mid) in mids.iter().enumerate().skip(start) {
            if mid > si.t1() {
                break;
            }
            let frac = (mid - si.t0) / si.duration;
            let row = &mut out[w];
            match gate {
                Gate::Ecr => {
                    let c = si.instruction.qubits[0];
                    let t = si.instruction.qubits[1];
                    let csign = if frac < 0.5 { 1.0 } else { -1.0 };
                    let quarter = (frac * 4.0).floor() as i32 % 4;
                    let tsign = if quarter % 2 == 0 { 1.0 } else { -1.0 };
                    row.insert(
                        c,
                        Activity::EcrControl {
                            item: idx,
                            sign: csign,
                        },
                    );
                    row.insert(
                        t,
                        Activity::EcrTarget {
                            item: idx,
                            sign: tsign,
                        },
                    );
                }
                Gate::Can { .. } | Gate::Rzz(_) | Gate::Cx | Gate::Cz => {
                    let sign = if frac < 0.5 { 1.0 } else { -1.0 };
                    for &q in &si.instruction.qubits {
                        row.insert(q, Activity::CanActive { item: idx, sign });
                    }
                }
                Gate::Measure => {
                    row.insert(si.instruction.qubits[0], Activity::Measuring { item: idx });
                }
                Gate::Reset => {
                    row.insert(si.instruction.qubits[0], Activity::Resetting { item: idx });
                }
                _ => {
                    for &q in &si.instruction.qubits {
                        row.insert(q, Activity::Driven1Q { item: idx });
                    }
                }
            }
        }
    }
    out
}

/// Builds the ordered segment list with static coherent contributions.
pub fn build_segments(
    sc: &ScheduledCircuit,
    device: &Device,
    config: &NoiseConfig,
) -> Vec<SegmentOp> {
    // Event times: instruction boundaries + 2q-gate quarter points.
    let mut times = sc.event_times();
    for si in &sc.items {
        if si.duration > 0.0 && si.instruction.is_two_qubit() {
            for k in 1..4 {
                times.push(si.t0 + si.duration * k as f64 / 4.0);
            }
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let windows: Vec<(f64, f64)> = times
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(a, b)| b - a > 1e-9)
        .collect();
    let mids: Vec<f64> = windows.iter().map(|(a, b)| 0.5 * (a + b)).collect();
    let mut activities = activities_for_windows(sc, &mids);

    // One device-width scratch row reused across windows; per-window
    // work touches only driven qubits and their neighbours.
    let mut rz: Vec<f64> = vec![0.0; sc.num_qubits];
    let mut touched: Vec<usize> = Vec::new();
    let mut segments = Vec::new();
    for (w, &(a, b)) in windows.iter().enumerate() {
        let dt = b - a;
        let act_map = std::mem::take(&mut activities[w]);
        let act_of = |q: usize| act_map.get(&q).copied().unwrap_or(Activity::Idle);
        let mut rzz: Vec<(usize, usize, f64)> = Vec::new();

        if config.zz_crosstalk {
            for e in &device.crosstalk.edges {
                let (i, j) = (e.a, e.b);
                // Edges reaching past the circuit's registers couple
                // to device qubits the program never touches: those
                // sit idle, and phase kicked onto them is unobservable
                // (no gate or measurement ever reads it back).
                if i >= sc.num_qubits || j >= sc.num_qubits {
                    continue;
                }
                let ai = act_of(i);
                let aj = act_of(j);
                // The gate's own pair: the intended interaction is part
                // of the calibrated gate unitary, not an error.
                if ai.item().is_some() && ai.item() == aj.item() {
                    continue;
                }
                let theta = phase_rad(e.zz_khz, dt);
                let (si, sj) = (ai.sign(), aj.sign());
                rzz.push((i, j, theta * si * sj));
                rz[i] -= theta * si;
                rz[j] -= theta * sj;
                touched.push(i);
                touched.push(j);
            }
        }

        if config.stark {
            for (&q, act) in &act_map {
                if !act.is_starking() {
                    continue;
                }
                for s in device.crosstalk.neighbors(q) {
                    // Same register-bound rule as the ZZ edges above:
                    // Stark shift on a qubit outside the circuit is
                    // unobservable, so skip it.
                    if s >= sc.num_qubits {
                        continue;
                    }
                    if act_of(s) == Activity::Idle {
                        let nu = device.calibration.stark_on(q, s);
                        if nu != 0.0 {
                            rz[s] += phase_rad(nu, dt);
                            touched.push(s);
                        }
                    }
                }
            }
        }

        touched.sort_unstable();
        touched.dedup();
        let rz_static: Vec<(usize, f64)> = touched
            .iter()
            .filter(|&&q| rz[q].abs() > 1e-15)
            .map(|&q| (q, rz[q]))
            .collect();
        for &q in &touched {
            rz[q] = 0.0;
        }
        touched.clear();
        segments.push(SegmentOp {
            t0: a,
            t1: b,
            rz_static,
            rzz_static: rzz,
            active: act_map.into_iter().collect(),
        });
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn dev2() -> Device {
        uniform_device(Topology::line(2), 100.0)
    }

    fn segs(qc: &Circuit, dev: &Device) -> Vec<SegmentOp> {
        let sc = schedule_asap(qc, GateDurations::default());
        build_segments(&sc, dev, &NoiseConfig::coherent_only())
    }

    #[test]
    fn idle_pair_accrues_u11_phases() {
        let dev = dev2();
        let mut qc = Circuit::new(2, 0);
        qc.delay(500.0, 0).delay(500.0, 1);
        let s = segs(&qc, &dev);
        assert_eq!(s.len(), 1);
        let theta = ca_device::phase_rad(100.0, 500.0);
        assert_eq!(s[0].rzz_static, vec![(0, 1, theta)]);
        // Z phases are −θ each (U11 of Eq. 2).
        assert_eq!(s[0].rz_static.len(), 2);
        assert!((s[0].rz_static[0].1 + theta).abs() < 1e-12);
    }

    #[test]
    fn ecr_quarters_have_expected_signs() {
        let dev = uniform_device(Topology::line(3), 100.0);
        let mut qc = Circuit::new(3, 0);
        qc.ecr(0, 1); // qubit 2 idles as target spectator of qubit 1.
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        assert_eq!(s.len(), 4, "ECR chops into quarters");
        // Control sign: +,+,−,− ; target sign: +,−,+,−.
        let csigns: Vec<f64> = s.iter().map(|x| x.activity(0).sign()).collect();
        let tsigns: Vec<f64> = s.iter().map(|x| x.activity(1).sign()).collect();
        assert_eq!(csigns, vec![1.0, 1.0, -1.0, -1.0]);
        assert_eq!(tsigns, vec![1.0, -1.0, 1.0, -1.0]);
        // Edge (1,2): target–spectator ZZ phases cancel over the gate.
        let net: f64 = s
            .iter()
            .flat_map(|x| x.rzz_static.iter())
            .filter(|(a, b, _)| (*a, *b) == (1, 2))
            .map(|(_, _, th)| th)
            .sum();
        assert!(net.abs() < 1e-12, "rotary refocuses target-spectator ZZ");
        // But the spectator's Z phase from that edge survives.
        let zq2: f64 = s
            .iter()
            .flat_map(|x| x.rz_static.iter())
            .filter(|(q, _)| *q == 2)
            .map(|(_, th)| th)
            .sum();
        assert!(zq2.abs() > 1e-6, "spectator Z error survives (case III)");
    }

    #[test]
    fn own_pair_interaction_excluded_during_gate() {
        let dev = dev2();
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let s = segs(&qc, &dev);
        for seg in &s {
            assert!(seg.rzz_static.is_empty(), "no self-pair ZZ during own gate");
        }
    }

    #[test]
    fn control_echo_refocuses_spectator_zz() {
        // Qubit 0 idle spectator of control qubit 1 in ECR(1,2).
        let dev = uniform_device(Topology::line(3), 100.0);
        let mut qc = Circuit::new(3, 0);
        qc.ecr(1, 2);
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        let net: f64 = s
            .iter()
            .flat_map(|x| x.rzz_static.iter())
            .filter(|(a, b, _)| (*a, *b) == (0, 1))
            .map(|(_, _, th)| th)
            .sum();
        assert!(net.abs() < 1e-12, "control echo refocuses ZZ (case II)");
    }

    #[test]
    fn stark_applies_to_idle_neighbors_only() {
        let mut dev = uniform_device(Topology::line(2), 0.0);
        dev.calibration.stark_khz.insert((0, 1), 20.0);
        let mut qc = Circuit::new(2, 0);
        qc.x(0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        let z1: f64 = s
            .iter()
            .flat_map(|x| x.rz_static.iter())
            .filter(|(q, _)| *q == 1)
            .map(|(_, th)| th)
            .sum();
        let expect = ca_device::phase_rad(20.0, 40.0);
        assert!((z1 - expect).abs() < 1e-12);
    }

    #[test]
    fn narrow_circuit_on_wide_device_skips_out_of_register_qubits() {
        // A 2-qubit program on a 4-qubit line: crosstalk edges (1,2)
        // and (2,3) and a Stark term driven from qubit 1 all reach
        // past the circuit's registers and must be dropped, not
        // indexed (this used to panic with a circuit-width `activity`
        // array and device-width edge endpoints).
        let mut dev = uniform_device(Topology::line(4), 100.0);
        dev.calibration.stark_khz.insert((1, 2), 20.0);
        let mut qc = Circuit::new(2, 0);
        qc.x(1).delay(500.0, 0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        assert!(!s.is_empty());
        for seg in &s {
            for (i, j, _) in &seg.rzz_static {
                assert!(*i < 2 && *j < 2, "ZZ term references qubit >= width");
            }
            for (q, _) in &seg.rz_static {
                assert!(*q < 2, "Z term references qubit >= width");
            }
        }
    }

    #[test]
    fn signed_dt_tracks_activity() {
        let dev = dev2();
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let s = segs(&qc, &dev);
        // Control signed time sums to zero over the echoed gate.
        let total: f64 = s.iter().map(|x| x.signed_dt(0)).sum();
        assert!(total.abs() < 1e-9);
        // Target too (rotary quarters).
        let total_t: f64 = s.iter().map(|x| x.signed_dt(1)).sum();
        assert!(total_t.abs() < 1e-9);
    }

    #[test]
    fn noise_config_gates_contributions() {
        let dev = dev2();
        let mut qc = Circuit::new(2, 0);
        qc.delay(500.0, 0).delay(500.0, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let s = build_segments(&sc, &dev, &NoiseConfig::ideal());
        assert!(s[0].rzz_static.is_empty());
        assert!(s[0].rz_static.is_empty());
    }

    #[test]
    fn measuring_qubit_keeps_coupling() {
        let dev = dev2();
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0);
        let s = segs(&qc, &dev);
        // During the readout window the idle neighbour still accrues
        // ZZ with the measured qubit (the Fig. 9 error mechanism).
        let net: f64 = s
            .iter()
            .flat_map(|x| x.rzz_static.iter())
            .map(|(_, _, th)| th)
            .sum();
        assert!(net.abs() > 1e-6);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Calibration, NnnTerm, Topology};

    #[test]
    fn nnn_edge_contributes_like_a_direct_edge() {
        let topo = Topology::line(3);
        let mut cal = Calibration::uniform(3, &topo.edges, 0.0);
        cal.nnn.push(NnnTerm {
            i: 0,
            j: 1,
            k: 2,
            zz_khz: 12.0,
        });
        let dev = ca_device::Device::new("nnn", topo, cal);
        let mut qc = Circuit::new(3, 0);
        qc.delay(1000.0, 0).delay(1000.0, 1).delay(1000.0, 2);
        let sc = schedule_asap(&qc, GateDurations::default());
        let segs = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        let nnn_zz: f64 = segs
            .iter()
            .flat_map(|s| s.rzz_static.iter())
            .filter(|(a, b, _)| (*a, *b) == (0, 2))
            .map(|(_, _, th)| th)
            .sum();
        assert!((nnn_zz - ca_device::phase_rad(12.0, 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn native_can_flips_at_midpoint() {
        let dev = uniform_device(Topology::line(3), 50.0);
        let mut qc = Circuit::new(3, 0);
        qc.can(0.1, 0.2, 0.3, 0, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let segs = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        // Both gate qubits carry ±1 halves; spectator ZZ refocuses.
        let signs: Vec<f64> = segs.iter().map(|s| s.activity(0).sign()).collect();
        assert!(signs.contains(&1.0) && signs.contains(&-1.0));
        let zz_12: f64 = segs
            .iter()
            .flat_map(|s| s.rzz_static.iter())
            .filter(|(a, b, _)| (*a, *b) == (1, 2))
            .map(|(_, _, th)| th)
            .sum();
        assert!(
            zz_12.abs() < 1e-12,
            "spectator ZZ refocused by the Can echo"
        );
    }

    #[test]
    fn reset_window_keeps_neighbor_coupling() {
        let dev = uniform_device(Topology::line(2), 70.0);
        let mut qc = Circuit::new(2, 0);
        qc.reset(0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let segs = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        assert!(matches!(segs[0].activity(0), Activity::Resetting { .. }));
        let total: f64 = segs
            .iter()
            .flat_map(|s| s.rzz_static.iter())
            .map(|(_, _, t)| t)
            .sum();
        assert!(total.abs() > 1e-9);
    }

    #[test]
    fn conditional_gate_window_counts_as_driven() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 1);
        qc.measure(0, 0).gate_if(ca_circuit::Gate::X, [1], 0, true);
        let sc = schedule_asap(&qc, GateDurations::default());
        let segs = build_segments(&sc, &dev, &NoiseConfig::coherent_only());
        let has_driven_q1 = segs
            .iter()
            .any(|s| matches!(s.activity(1), Activity::Driven1Q { .. }));
        assert!(has_driven_q1);
    }
}

//! Qubit-sharded sampling support for the v2 strip runner.
//!
//! At Osprey/Condor widths (433/1121 qubits) a single strip's
//! sampling pass — per-(qubit, word) noise-code grouping plus the
//! per-op mask hashing — dominates wall clock, and with few strips in
//! flight (low shot counts) strip-level fan-out alone cannot fill the
//! worker pool. The v2 seed schedule makes a second axis available
//! for free: every draw is a pure counter-based hash of
//! `(seed, shot, site)` where the site is keyed by the op's *owner*
//! qubit (flushes, gates, measures) or an edge id reachable only from
//! its flush's owner. Sampling therefore partitions exactly by owner:
//! worker threads own contiguous qubit shards of the lattice, each
//! hashes only its own ops' masks (and its own qubits' noise-code
//! groups) into a private buffer, and the buffers are merged
//! **deterministically in shard order** back into the exact linear
//! layout the serial sampling pass would have produced. Propagation
//! then replays the merged buffer unchanged, so sharded output is
//! bit-identical to unsharded output — and hence to the serial
//! engine — for every shard and worker count.
//!
//! Seed-schedule v1 draws are positional in a per-shot stream and
//! cannot shard; the v1 path never reaches this module, which keeps
//! the cross-schedule equivalence guarantees intact.

/// Devices narrower than this never shard: below a few hundred qubits
/// the per-shard walk overhead (each shard still scans the full op
/// program to find its own) cancels the hashing win.
pub(crate) const SHARD_MIN_QUBITS: usize = 192;

/// Cap on shards per strip: beyond this the merge copy and redundant
/// program walks dominate the shrinking per-shard hash work.
pub(crate) const MAX_SHARDS: usize = 8;

/// How many qubit shards one strip's sampling pass should fan out to,
/// given the device width `n`, the number of strips the run has in
/// flight, and the resolved worker pool. Returns 1 (no sharding)
/// whenever strip-level parallelism already fills the pool or the
/// device is too narrow to profit.
///
/// The choice only affects wall clock, never output: sharded and
/// unsharded sampling produce identical buffers by construction.
pub(crate) fn shard_count(n: usize, strips: usize, pool: usize) -> usize {
    if n < SHARD_MIN_QUBITS {
        return 1;
    }
    (pool / strips.max(1)).clamp(1, MAX_SHARDS)
}

/// Splits `0..n` into `shards` contiguous, near-equal qubit ranges
/// (first `n % shards` ranges one longer). Contiguity matters: the
/// heavy-hex numbering is row-major, so contiguous index ranges are
/// spatially coherent shards of the lattice, and the initial-Z block
/// of the merged buffer (qubit-major) is a plain concatenation of the
/// shard blocks in shard order.
pub(crate) fn qubit_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Merges per-shard sampling buffers back into the serial buffer
/// layout: first every shard's initial-Z block in shard order (shard
/// ranges are contiguous and ascending, so this *is* the qubit-major
/// order), then one copy per program op in global op order, pulled
/// from the owning shard's cursor. `sched` lists, for each op that
/// pushed any words, the owning shard and its word count;
/// `total_words` is the serial buffer's exact length.
pub(crate) fn merge_op_order(
    bufs: &[Vec<u64>],
    init_lens: &[usize],
    sched: &[(u32, u32)],
    total_words: usize,
) -> Vec<u64> {
    debug_assert_eq!(bufs.len(), init_lens.len());
    let mut noise = Vec::with_capacity(total_words);
    for (buf, &init) in bufs.iter().zip(init_lens) {
        noise.extend_from_slice(&buf[..init]);
    }
    let mut cursors: Vec<usize> = init_lens.to_vec();
    for &(s, words) in sched {
        let s = s as usize;
        let c = cursors[s];
        noise.extend_from_slice(&bufs[s][c..c + words as usize]);
        cursors[s] = c + words as usize;
    }
    debug_assert!(cursors.iter().zip(bufs).all(|(&c, buf)| c == buf.len()));
    debug_assert_eq!(noise.len(), total_words);
    noise
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_are_contiguous() {
        for n in [1, 7, 127, 433, 1121] {
            for shards in [1, 2, 3, 8, 16] {
                let ranges = qubit_ranges(n, shards);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0);
                    assert!(pair[0].1 > pair[0].0);
                }
            }
        }
    }

    #[test]
    fn shard_count_policy() {
        // Narrow devices never shard.
        assert_eq!(shard_count(127, 1, 16), 1);
        // Wide device, saturated strips: no sharding needed.
        assert_eq!(shard_count(1121, 32, 8), 1);
        // Wide device, single strip: split the pool.
        assert_eq!(shard_count(1121, 1, 8), 8);
        assert_eq!(shard_count(433, 2, 8), 4);
        // Capped.
        assert_eq!(shard_count(1121, 1, 64), MAX_SHARDS);
    }

    #[test]
    fn merge_restores_op_order() {
        // Two shards; shard 0 owns qubits {0}, shard 1 owns {1, 2}.
        // Init blocks: [10], [11, 12]. Ops: op A (shard 1, 2 words),
        // op B (shard 0, 1 word), op C (shard 1, 1 word).
        let bufs = vec![vec![10, 100], vec![11, 12, 200, 201, 202]];
        let merged = merge_op_order(&bufs, &[1, 2], &[(1, 2), (0, 1), (1, 1)], 7);
        assert_eq!(merged, vec![10, 11, 12, 200, 201, 100, 202]);
    }
}

//! Noise configuration and per-shot stochastic parameters.
//!
//! Coherent context-dependent crosstalk (always-on ZZ, Stark) is
//! deterministic and computed by the timeline interpreter; this module
//! holds the switches for every channel plus the quantities that are
//! *sampled once per shot*: charge-parity signs (Eq. 6) and
//! quasi-static low-frequency detunings.

use ca_circuit::c64::{C64, ONE, ZERO};
use ca_circuit::matrix::Mat2;
use ca_device::Device;
use rand::rngs::StdRng;
use rand::RngExt;

/// Which noise processes to simulate. All on by default; experiments
/// switch individual terms off for ablations and characterization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoiseConfig {
    /// Always-on ZZ crosstalk between jointly idle / spectator qubits.
    pub zz_crosstalk: bool,
    /// AC Stark shift on spectators of driven qubits (Fig. 4a).
    pub stark: bool,
    /// Charge-parity ±δ Z noise (Fig. 4b).
    pub charge_parity: bool,
    /// Quasi-static low-frequency detuning (per-shot Gaussian).
    pub quasistatic: bool,
    /// T1 amplitude damping and T2 pure dephasing.
    pub decoherence: bool,
    /// Depolarizing error after each physical gate.
    pub gate_error: bool,
    /// Readout assignment error.
    pub readout_error: bool,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            zz_crosstalk: true,
            stark: true,
            charge_parity: true,
            quasistatic: true,
            decoherence: true,
            gate_error: true,
            readout_error: true,
        }
    }
}

impl NoiseConfig {
    /// Everything off — ideal simulation.
    pub fn ideal() -> Self {
        Self {
            zz_crosstalk: false,
            stark: false,
            charge_parity: false,
            quasistatic: false,
            decoherence: false,
            gate_error: false,
            readout_error: false,
        }
    }

    /// Only the coherent crosstalk terms (ZZ + Stark): the setting for
    /// isolating the errors CA-EC targets.
    pub fn coherent_only() -> Self {
        Self {
            zz_crosstalk: true,
            stark: true,
            charge_parity: false,
            quasistatic: false,
            decoherence: false,
            gate_error: false,
            readout_error: false,
        }
    }
}

/// Stochastic parameters drawn once per shot.
#[derive(Clone, Debug)]
pub struct ShotNoise {
    /// Charge-parity sign per qubit (±1); multiplies the calibrated δ.
    pub parity_sign: Vec<f64>,
    /// Quasi-static detuning per qubit (kHz), ~N(0, σ_q).
    pub detuning_khz: Vec<f64>,
}

impl ShotNoise {
    /// Samples per-shot parameters for a device.
    ///
    /// Gaussian detunings use both halves of each Box–Muller pair —
    /// half the draws and transcendentals of independent sampling.
    /// This is on the per-shot hot path of every engine (hundreds of
    /// thousands of samples per large-scale run), and all engines
    /// share this one function, which keeps the serial and batched
    /// frame engines' RNG streams bit-identical.
    pub fn sample(device: &Device, config: &NoiseConfig, rng: &mut StdRng) -> Self {
        let n = device.num_qubits();
        let mut parity_sign = vec![0.0; n];
        let mut detuning_khz = vec![0.0; n];
        let mut spare: Option<f64> = None;
        for q in 0..n {
            let cal = &device.calibration.qubits[q];
            parity_sign[q] = if config.charge_parity && cal.charge_parity_khz > 0.0 {
                if rng.random::<bool>() {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            detuning_khz[q] = if config.quasistatic && cal.quasistatic_khz > 0.0 {
                let z = match spare.take() {
                    Some(z) => z,
                    None => {
                        let (z0, z1) = gaussian_pair(rng);
                        spare = Some(z1);
                        z0
                    }
                };
                z * cal.quasistatic_khz
            } else {
                0.0
            };
        }
        Self {
            parity_sign,
            detuning_khz,
        }
    }

    /// Samples per-shot parameters under seed-schedule v2: every
    /// qubit's draws come from one counter-based hash of
    /// `(seed, shot, NOISE site(q))` — the charge-parity sign from bit
    /// 63, the quasi-static detuning from the popcount lattice
    /// Gaussian over the low 32 bits (see [`crate::plan::lattice_value`]).
    ///
    /// Unlike the legacy sequential stream, a calibration-disabled
    /// qubit consumes nothing from anyone else's draws: toggling one
    /// qubit's `quasistatic_khz` or `charge_parity_khz` cannot shift
    /// any other qubit's noise (the Box–Muller spare-half coupling of
    /// [`Self::sample`] is eliminated by construction).
    pub fn sample_v2(device: &Device, config: &NoiseConfig, seed: u64, shot: u64) -> Self {
        use crate::plan::{lattice_idx, lattice_value, shot_site_seed, site};
        let n = device.num_qubits();
        let mut parity_sign = vec![0.0; n];
        let mut detuning_khz = vec![0.0; n];
        for q in 0..n {
            let cal = &device.calibration.qubits[q];
            let h = shot_site_seed(seed, shot, site::id(site::NOISE, 0, q));
            parity_sign[q] = if config.charge_parity && cal.charge_parity_khz > 0.0 {
                if h >> 63 & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            detuning_khz[q] = if config.quasistatic && cal.quasistatic_khz > 0.0 {
                lattice_value(lattice_idx(h)) * cal.quasistatic_khz
            } else {
                0.0
            };
        }
        Self {
            parity_sign,
            detuning_khz,
        }
    }

    /// The total stochastic Z rate (kHz) on `q` for this shot:
    /// `±δ + ε` (Eq. 6 plus the quasi-static term).
    pub fn z_rate_khz(&self, device: &Device, q: usize) -> f64 {
        self.parity_sign[q] * device.calibration.qubits[q].charge_parity_khz + self.detuning_khz[q]
    }
}

/// Two independent standard normal samples from one Box–Muller
/// transform (two uniform draws, one `ln`/`sqrt`, one `sin_cos`).
pub fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
    (r * c, r * s)
}

/// Amplitude-damping Kraus pair for decay probability γ.
pub fn amplitude_damping_kraus(gamma: f64) -> [Mat2; 2] {
    let g = gamma.clamp(0.0, 1.0);
    [
        Mat2([[ONE, ZERO], [ZERO, C64::real((1.0 - g).sqrt())]]),
        Mat2([[ZERO, C64::real(g.sqrt())], [ZERO, ZERO]]),
    ]
}

/// Probability of a Z kick over `dt_ns` for pure-dephasing time
/// `t_phi_us`: the dephasing channel `ρ → (1−p)ρ + pZρZ` with
/// `p = (1 − e^{−Δt/T_φ})/2`.
pub fn dephasing_prob(dt_ns: f64, t_phi_us: f64) -> f64 {
    if t_phi_us <= 0.0 {
        return 0.0;
    }
    0.5 * (1.0 - (-dt_ns / (t_phi_us * 1000.0)).exp())
}

/// Pure-dephasing time from T1/T2: `1/T_φ = 1/T2 − 1/(2T1)`.
/// Returns `f64::INFINITY` when T2 saturates the 2·T1 limit.
pub fn t_phi_us(t1_us: f64, t2_us: f64) -> f64 {
    let rate = 1.0 / t2_us - 1.0 / (2.0 * t1_us);
    if rate <= 1e-12 {
        f64::INFINITY
    } else {
        1.0 / rate
    }
}

/// Decay probability over `dt_ns` for T1 (µs).
pub fn damping_prob(dt_ns: f64, t1_us: f64) -> f64 {
    if t1_us <= 0.0 {
        return 0.0;
    }
    1.0 - (-dt_ns / (t1_us * 1000.0)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};
    use rand::SeedableRng;

    #[test]
    fn ideal_config_disables_everything() {
        let c = NoiseConfig::ideal();
        assert!(!c.zz_crosstalk && !c.decoherence && !c.readout_error);
    }

    #[test]
    fn shot_noise_respects_switches() {
        let mut dev = uniform_device(Topology::line(2), 50.0);
        dev.calibration.qubits[0].charge_parity_khz = 5.0;
        let mut rng = StdRng::seed_from_u64(3);
        let off = ShotNoise::sample(&dev, &NoiseConfig::ideal(), &mut rng);
        assert_eq!(off.z_rate_khz(&dev, 0), 0.0);
        let on = ShotNoise::sample(&dev, &NoiseConfig::default(), &mut rng);
        assert!(on.parity_sign[0].abs() == 1.0);
    }

    #[test]
    fn parity_sign_is_fair() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].charge_parity_khz = 5.0;
        let mut rng = StdRng::seed_from_u64(11);
        let mut plus = 0;
        for _ in 0..2000 {
            let s = ShotNoise::sample(&dev, &NoiseConfig::default(), &mut rng);
            if s.parity_sign[0] > 0.0 {
                plus += 1;
            }
        }
        assert!((plus as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..10000)
            .flat_map(|_| {
                let (a, b) = gaussian_pair(&mut rng);
                [a, b]
            })
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn shot_noise_v2_qubits_are_independent_streams() {
        // Regression for the Box–Muller spare-half coupling: under
        // schedule v2, disabling one qubit's quasistatic calibration
        // must leave every other qubit's draws bit-identical.
        let dev = uniform_device(Topology::line(5), 50.0);
        let mut dev_off = dev.clone();
        dev_off.calibration.qubits[2].quasistatic_khz = 0.0;
        let cfg = NoiseConfig::default();
        for shot in 0..64u64 {
            let a = ShotNoise::sample_v2(&dev, &cfg, 17, shot);
            let b = ShotNoise::sample_v2(&dev_off, &cfg, 17, shot);
            assert_eq!(b.detuning_khz[2], 0.0);
            for q in (0..5).filter(|&q| q != 2) {
                assert_eq!(a.detuning_khz[q].to_bits(), b.detuning_khz[q].to_bits());
                assert_eq!(a.parity_sign[q].to_bits(), b.parity_sign[q].to_bits());
            }
        }
        // The legacy schedule has the coupling (documents the bug the
        // v2 schedule removes): qubits after the disabled one shift.
        let mut r1 = StdRng::seed_from_u64(17);
        let mut r2 = StdRng::seed_from_u64(17);
        let a = ShotNoise::sample(&dev, &cfg, &mut r1);
        let b = ShotNoise::sample(&dev_off, &cfg, &mut r2);
        assert_ne!(
            a.detuning_khz[3].to_bits(),
            b.detuning_khz[3].to_bits(),
            "v1 spare-half coupling disappeared; re-check the pinned stream"
        );
    }

    #[test]
    fn shot_noise_v2_moments_and_fairness() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].charge_parity_khz = 5.0;
        let cfg = NoiseConfig::default();
        let shots = 20000u64;
        let (mut plus, mut sum, mut sq) = (0usize, 0.0f64, 0.0f64);
        for shot in 0..shots {
            let s = ShotNoise::sample_v2(&dev, &cfg, 11, shot);
            if s.parity_sign[0] > 0.0 {
                plus += 1;
            }
            let z = s.detuning_khz[0] / dev.calibration.qubits[0].quasistatic_khz;
            sum += z;
            sq += z * z;
        }
        assert!((plus as f64 / shots as f64 - 0.5).abs() < 0.02);
        let mean = sum / shots as f64;
        assert!(mean.abs() < 0.03, "lattice mean {mean}");
        let var = sq / shots as f64 - mean * mean;
        assert!((var - 1.0).abs() < 0.05, "lattice variance {var}");
    }

    #[test]
    fn legacy_v1_stream_is_pinned() {
        // Schedule v1 goldens depend on this exact stream; any change
        // to `ShotNoise::sample`'s draw order breaks bit-compatibility
        // and must be caught here rather than in a golden downstream.
        let mut dev = uniform_device(Topology::line(3), 50.0);
        dev.calibration.qubits[1].charge_parity_khz = 4.0;
        let mut rng = StdRng::seed_from_u64(42);
        let s = ShotNoise::sample(&dev, &NoiseConfig::default(), &mut rng);
        let got: Vec<u64> = s
            .parity_sign
            .iter()
            .chain(s.detuning_khz.iter())
            .map(|v| v.to_bits())
            .collect();
        let expected = [
            0f64.to_bits(),
            1f64.to_bits(),
            0f64.to_bits(),
            13840507040696365468u64,
            4616869055831240298u64,
            4608018101488661094u64,
        ];
        assert_eq!(
            got, expected,
            "legacy ShotNoise stream shifted; v1 goldens are invalidated"
        );
    }

    #[test]
    fn kraus_completeness() {
        let [k0, k1] = amplitude_damping_kraus(0.4);
        // K0†K0 + K1†K1 = I.
        let s = k0.adjoint().mul(&k0);
        let t = k1.adjoint().mul(&k1);
        let mut total = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                total.0[i][j] = s.0[i][j] + t.0[i][j];
            }
        }
        assert!(total.approx_eq(&Mat2::identity(), 1e-12));
    }

    #[test]
    fn t_phi_relation() {
        // T2 = 2·T1 → no pure dephasing.
        assert!(t_phi_us(100.0, 200.0).is_infinite());
        // T2 = T1 → T_φ = 2·T1.
        assert!((t_phi_us(100.0, 100.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn probability_helpers_bounded() {
        assert!(dephasing_prob(1e9, 100.0) <= 0.5);
        assert!(damping_prob(0.0, 100.0).abs() < 1e-12);
        assert!((damping_prob(1e12, 100.0) - 1.0).abs() < 1e-9);
    }
}

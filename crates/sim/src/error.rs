//! Structured simulation errors.
//!
//! Engine dispatch and execution never panic on malformed-but-
//! constructible inputs (wrong gate arity, circuits no engine can
//! represent); they return a [`SimError`] carrying enough structure
//! for callers to branch on and a human-readable message naming every
//! violated constraint.

use std::fmt;

/// Why a circuit could not be simulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An instruction's qubit operand list does not match its gate's
    /// arity (e.g. a single-qubit gate appended to three qubits).
    /// No engine can execute such an instruction.
    UnsupportedGateArity {
        /// Gate mnemonic.
        gate: &'static str,
        /// Arity the gate defines.
        expected: usize,
        /// Number of qubit operands the instruction carries.
        got: usize,
    },
    /// The circuit exceeds the dense statevector engine's hard qubit
    /// cap (2ⁿ amplitudes).
    DenseCapExceeded {
        /// Circuit width.
        qubits: usize,
        /// The dense engine's cap ([`crate::engine::DENSE_MAX_QUBITS`]).
        max: usize,
    },
    /// The stabilizer/frame engines require every unconditional gate
    /// to be Clifford or a diagonal rotation (bank-folded); this
    /// circuit carries a gate that is neither.
    NotClifford {
        /// Mnemonic of the first offending gate.
        gate: &'static str,
    },
    /// A per-shot Pauli insertion does not fit the circuit it was
    /// built against: its anchor item is out of range or not a
    /// unitary gate, or it names a qubit outside the circuit.
    InvalidInsertion {
        /// Shot index of the offending insertion.
        shot: usize,
        /// Anchor item index of the offending insertion.
        item: usize,
        /// Which constraint the insertion violates.
        reason: &'static str,
    },
    /// A feed-forward condition wraps a gate the frame engines cannot
    /// represent conditionally. Frames track a shot's deviation from
    /// one shared reference run as a Pauli operator, so a conditional
    /// gate must either *be* a Pauli (exact classical feed-forward) or
    /// be a virtual diagonal rotation (folded into the coherent phase
    /// banks); anything else — a conditional `H`, `Sx`, `Rx(θ)`, or
    /// any two-qubit conditional — leaves a non-Pauli deviation on the
    /// shots whose condition bit disagrees with the reference's.
    UnsupportedConditional {
        /// Mnemonic of the conditionally wrapped gate.
        gate: &'static str,
    },
    /// A feed-forward condition reads a classical bit at or beyond the
    /// frame engines' 64-bit classical register window (the batch
    /// engine evaluates conditions against a packed 64-bit key per
    /// shot-lane, and counts keys are 64-bit everywhere).
    ConditionalClbitOutOfRange {
        /// The classical bit the condition reads.
        clbit: usize,
        /// First unsupported bit index (always 64).
        max: usize,
    },
    /// `Engine::Auto` found no engine able to run the circuit: it is
    /// both too wide for the dense engine and not Clifford, so the
    /// stabilizer engines cannot represent it either.
    NoSupportingEngine {
        /// Circuit width.
        qubits: usize,
        /// The dense engine's qubit cap.
        dense_max: usize,
        /// Mnemonic of the first non-Clifford gate (or
        /// `"feed-forward"`).
        blocking_gate: &'static str,
    },
    /// A scheduled item carries a non-finite start time or duration
    /// (a `Delay(NaN)`/`Delay(inf)` reaches the planner through
    /// scheduling); the noise timeline cannot be ordered around it.
    NonFiniteTime {
        /// Index of the offending scheduled item.
        item: usize,
        /// Mnemonic of the offending gate.
        gate: &'static str,
    },
    /// A twirl-dressing substitution does not fit the compiled
    /// artifact it was applied to: the target item is out of range,
    /// is not a merged single-qubit Pauli slot, or the backend does
    /// not support re-dressing (dense plans replay exact unitaries,
    /// so a dressed instance must compile independently).
    InvalidDressing {
        /// Target item index.
        item: usize,
        /// Which constraint the substitution violates.
        reason: &'static str,
    },
    /// The requested operation is not available on the engine this
    /// compiled artifact resolved to (e.g. per-shot Pauli insertions
    /// or sign-resolved flips on the dense statevector engine).
    UnsupportedOnEngine {
        /// Resolved engine name.
        engine: &'static str,
        /// The unavailable operation.
        operation: &'static str,
    },
    /// The job's [`CancelToken`](crate::cancel::CancelToken) was
    /// cancelled while the job was queued or running. Execution
    /// stopped cooperatively at the next shot-chunk / batch-strip
    /// boundary; no partial result is returned.
    Cancelled,
    /// The job's deadline expired while it was queued or running.
    /// Like [`SimError::Cancelled`], execution stopped at the next
    /// chunk boundary without producing a partial result.
    DeadlineExceeded,
    /// The job panicked while executing. The panic was caught at the
    /// job boundary so the rest of the submitted batch completes
    /// normally; the payload's message (when it was a string) is
    /// preserved here.
    JobPanicked {
        /// The panic payload rendered as text, or
        /// `"non-string panic payload"`.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::UnsupportedGateArity {
                gate,
                expected,
                got,
            } => write!(
                f,
                "unsupported gate arity: `{gate}` expects {expected} qubit operand(s) \
                 but the instruction lists {got}"
            ),
            SimError::DenseCapExceeded { qubits, max } => write!(
                f,
                "circuit has {qubits} qubits; the dense statevector engine is limited \
                 to {max} (2^n amplitudes)"
            ),
            SimError::NotClifford { gate } => write!(
                f,
                "circuit is not frame-representable (first blocker: {gate}); the \
                 stabilizer and frame-batch engines require every unconditional gate \
                 to be Clifford or a diagonal rotation"
            ),
            SimError::UnsupportedConditional { gate } => write!(
                f,
                "classical feed-forward on `{gate}` is outside the frame engines' \
                 conditional gate set (Pauli gates are applied exactly; virtual diagonal \
                 rotations fold into the coherent phase banks; other conditionals need \
                 the dense statevector engine)"
            ),
            SimError::ConditionalClbitOutOfRange { clbit, max } => write!(
                f,
                "feed-forward condition reads classical bit {clbit}; the frame engines \
                 evaluate conditions against a packed {max}-bit classical register"
            ),
            SimError::InvalidInsertion { shot, item, reason } => write!(
                f,
                "invalid Pauli insertion at shot {shot}, anchor item {item}: {reason}"
            ),
            SimError::NoSupportingEngine {
                qubits,
                dense_max,
                blocking_gate,
            } => write!(
                f,
                "no engine supports this circuit: {qubits} qubits exceeds the dense \
                 statevector cap of {dense_max}, and the stabilizer/frame-batch engines \
                 require a Clifford circuit (first blocker: {blocking_gate})"
            ),
            SimError::NonFiniteTime { item, gate } => write!(
                f,
                "scheduled item {item} (`{gate}`) has a non-finite start time or \
                 duration; the noise timeline cannot be ordered around it"
            ),
            SimError::InvalidDressing { item, reason } => write!(
                f,
                "invalid twirl dressing at scheduled item {item}: {reason}"
            ),
            SimError::UnsupportedOnEngine { engine, operation } => write!(
                f,
                "operation `{operation}` is not available on the `{engine}` engine"
            ),
            SimError::Cancelled => write!(
                f,
                "job cancelled before completion (cooperative stop at a \
                 shot-chunk boundary; no partial result)"
            ),
            SimError::DeadlineExceeded => write!(
                f,
                "job deadline expired before completion (cooperative stop at a \
                 shot-chunk boundary; no partial result)"
            ),
            SimError::JobPanicked { ref message } => {
                write!(f, "job panicked during execution: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_constraints() {
        let e = SimError::NoSupportingEngine {
            qubits: 40,
            dense_max: 24,
            blocking_gate: "rz",
        };
        let msg = e.to_string();
        assert!(msg.contains("40 qubits"), "{msg}");
        assert!(msg.contains("24"), "{msg}");
        assert!(msg.contains("Clifford"), "{msg}");
        assert!(msg.contains("rz"), "{msg}");
    }

    #[test]
    fn arity_message_is_specific() {
        let e = SimError::UnsupportedGateArity {
            gate: "x",
            expected: 1,
            got: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("x"), "{msg}");
    }
}

//! Trajectory executor: runs a scheduled circuit shot by shot against
//! the context-aware noise model.
//!
//! Per shot, coherent Z/ZZ phases accumulate in *scalar pending banks*
//! (one per qubit / crosstalk edge) and are flushed into the
//! statevector lazily — immediately before any non-diagonal unitary on
//! an involved qubit, before projections, and at the end. This is
//! exact for diagonal noise and makes dynamical decoupling work with
//! no special casing: the inserted X pulses conjugate earlier flushed
//! phases precisely as on hardware.

use crate::engine::Engine;
use crate::error::SimError;
use crate::noise::{
    amplitude_damping_kraus, damping_prob, dephasing_prob, t_phi_us, NoiseConfig, ShotNoise,
};
use crate::obs_util::{time_engine_phase, PhaseTimer};
use crate::plan::{map_shots, seed_schedule_from_env, ExecutionPlan, PlanOp, SeedSchedule};
use crate::result::RunResult;
use crate::statevector::State;
use ca_circuit::pauli::PauliString;
use ca_circuit::{Gate, ScheduledCircuit};
use ca_device::{phase_rad, Device};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The simulator: a device, a noise configuration, and an engine
/// selection policy (see [`crate::engine`]).
#[derive(Clone, Debug)]
pub struct Simulator {
    /// Device under simulation.
    pub device: Device,
    /// Enabled noise processes.
    pub config: NoiseConfig,
    /// Backend selection (defaults to [`Engine::Auto`]).
    pub engine: Engine,
    /// Per-shot noise-draw schedule for the frame engines (defaults
    /// to the `CA_SIM_SEED_SCHEDULE` environment variable, then v2).
    pub schedule: SeedSchedule,
}

impl Simulator {
    /// Creates a simulator with the full noise model.
    pub fn new(device: Device) -> Self {
        Self {
            device,
            config: NoiseConfig::default(),
            engine: Engine::Auto,
            schedule: seed_schedule_from_env(),
        }
    }

    /// Creates a simulator with an explicit noise configuration.
    pub fn with_config(device: Device, config: NoiseConfig) -> Self {
        Self {
            device,
            config,
            engine: Engine::Auto,
            schedule: seed_schedule_from_env(),
        }
    }

    /// Creates a simulator pinned to a specific engine.
    pub fn with_engine(device: Device, config: NoiseConfig, engine: Engine) -> Self {
        Self {
            device,
            config,
            engine,
            schedule: seed_schedule_from_env(),
        }
    }

    /// Pins the seed schedule explicitly, overriding the environment
    /// default — the race-free way for tests to compare schedules.
    pub fn with_seed_schedule(mut self, schedule: SeedSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    fn plan(&self, sc: &ScheduledCircuit) -> Result<ExecutionPlan, SimError> {
        ExecutionPlan::build(sc, &self.device, &self.config)
    }

    /// Runs one trajectory; returns the final state and classical bits.
    ///
    /// Phase attribution: per-shot parameter draws, bank accrual, and
    /// measurement/readout randomness count as *sampling*; statevector
    /// updates (gates, flushed phases, Kraus applications) count as
    /// *propagation* — so the dense rows of the scaling bench report
    /// the same phase columns as the frame engines.
    pub(crate) fn trajectory(&self, plan: &ExecutionPlan, rng: &mut StdRng) -> (State, Vec<bool>) {
        let mut phase = PhaseTimer::start();
        let n = plan.sc.num_qubits;
        let shot = ShotNoise::sample(&self.device, &self.config, rng);
        phase.tick_sampling();
        let mut st = State::zero(n);
        let mut bits = vec![false; plan.sc.num_clbits.max(1)];
        let mut pend_rz = vec![0.0f64; n];
        let mut pend_rzz = vec![0.0f64; plan.edge_pairs.len()];
        let mut deco_dt = vec![0.0f64; n];

        let flush_qubit = |q: usize,
                           st: &mut State,
                           pend_rz: &mut [f64],
                           pend_rzz: &mut [f64],
                           deco_dt: &mut [f64],
                           rng: &mut StdRng| {
            if pend_rz[q].abs() > 1e-15 {
                st.apply_rz(pend_rz[q], q);
                pend_rz[q] = 0.0;
            }
            for &e in &plan.incident[q] {
                if pend_rzz[e].abs() > 1e-15 {
                    let (a, b) = plan.edge_pairs[e];
                    st.apply_rzz(pend_rzz[e], a, b);
                    pend_rzz[e] = 0.0;
                }
            }
            if self.config.decoherence && deco_dt[q] > 0.0 {
                let cal = &self.device.calibration.qubits[q];
                let dt = deco_dt[q];
                deco_dt[q] = 0.0;
                let p_damp = damping_prob(dt, cal.t1_us);
                if p_damp > 0.0 {
                    st.apply_kraus_1q(&amplitude_damping_kraus(p_damp), q, rng);
                }
                let p_z = dephasing_prob(dt, t_phi_us(cal.t1_us, cal.t2_us));
                if p_z > 0.0 && rng.random::<f64>() < p_z {
                    st.apply_rz(std::f64::consts::PI, q);
                }
            }
        };

        for op in &plan.ops {
            match *op {
                PlanOp::Segment(i) => {
                    let seg = &plan.segments[i];
                    for &(q, th) in &seg.rz_static {
                        pend_rz[q] += th;
                    }
                    for &(e, th) in &plan.seg_edges[i] {
                        pend_rzz[e] += th;
                    }
                    for q in 0..n {
                        let rate = shot.z_rate_khz(&self.device, q);
                        if rate != 0.0 {
                            pend_rz[q] += phase_rad(rate, seg.signed_dt(q));
                        }
                        deco_dt[q] += seg.dt();
                    }
                    phase.tick_sampling();
                }
                PlanOp::Project { item } => {
                    let si = &plan.sc.items[item];
                    let q = si.instruction.qubits[0];
                    flush_qubit(q, &mut st, &mut pend_rz, &mut pend_rzz, &mut deco_dt, rng);
                    phase.tick_propagation();
                    match si.instruction.gate {
                        Gate::Measure => {
                            let outcome = st.measure(q, rng);
                            let recorded = if self.config.readout_error {
                                let p = self.device.calibration.qubits[q].readout_err;
                                if rng.random::<f64>() < p {
                                    !outcome
                                } else {
                                    outcome
                                }
                            } else {
                                outcome
                            };
                            if let Some(c) = si.instruction.clbit {
                                bits[c] = recorded;
                            }
                        }
                        Gate::Reset => st.reset(q, rng),
                        _ => unreachable!(), // ca-lint: allow(panic) -- plan stage rejects unknown ops before execution
                    }
                    phase.tick_sampling();
                }
                PlanOp::Apply { item } => {
                    let si = &plan.sc.items[item];
                    let instr = &si.instruction;
                    if let Some(cond) = instr.condition {
                        if bits[cond.clbit] != cond.value {
                            continue;
                        }
                    }
                    let gate = instr.gate;
                    if !gate.is_unitary() {
                        continue;
                    }
                    if !gate.is_diagonal() {
                        for &q in &instr.qubits {
                            flush_qubit(q, &mut st, &mut pend_rz, &mut pend_rzz, &mut deco_dt, rng);
                        }
                    }
                    match instr.qubits.len() {
                        1 => {
                            let q = instr.qubits[0];
                            if let Gate::Rz(th) = gate {
                                st.apply_rz(th, q);
                            } else {
                                // ca-lint: allow(panic) -- plan stage validated gate arity and unitarity
                                st.apply_1q(&gate.matrix1().expect("1q unitary"), q);
                            }
                            if self.config.gate_error && !gate.is_virtual() && !instr.merged {
                                let p = self.device.calibration.qubits[q].gate_err_1q;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(0..3usize);
                                    let pg = [Gate::X, Gate::Y, Gate::Z][k];
                                    st.apply_1q(&pg.matrix1().unwrap(), q); // ca-lint: allow(panic) -- Pauli gates always have defined 1q unitaries
                                }
                            }
                        }
                        2 => {
                            let (a, b) = (instr.qubits[0], instr.qubits[1]);
                            if let Gate::Rzz(th) = gate {
                                st.apply_rzz(th, a, b);
                            } else {
                                // ca-lint: allow(panic) -- plan stage validated gate arity and unitarity
                                st.apply_2q(&gate.matrix2().expect("2q unitary"), a, b);
                            }
                            if self.config.gate_error {
                                let scale = plan.sc.durations.two_qubit_error_scale(&gate);
                                let p = self.device.calibration.gate_err_2q(a, b) * scale;
                                if p > 0.0 && rng.random::<f64>() < p {
                                    let k = rng.random_range(1..16usize);
                                    let pa = k % 4;
                                    let pb = k / 4;
                                    let paulis =
                                        [None, Some(Gate::X), Some(Gate::Y), Some(Gate::Z)];
                                    if let Some(g) = paulis[pa] {
                                        st.apply_1q(&g.matrix1().unwrap(), a); // ca-lint: allow(panic) -- Pauli gates always have defined 1q unitaries
                                    }
                                    if let Some(g) = paulis[pb] {
                                        st.apply_1q(&g.matrix1().unwrap(), b); // ca-lint: allow(panic) -- Pauli gates always have defined 1q unitaries
                                    }
                                }
                            }
                        }
                        // Every public entry point runs
                        // `check_gate_arities` first, so operand
                        // lists here are exactly 1 or 2 long.
                        _ => unreachable!("gate arity validated before execution"), // ca-lint: allow(panic) -- gate arity validated before execution
                    }
                    phase.tick_propagation();
                }
            }
        }
        // Final flush so the returned state carries all trailing noise.
        for q in 0..n {
            flush_qubit(q, &mut st, &mut pend_rz, &mut pend_rzz, &mut deco_dt, rng);
        }
        phase.tick_propagation();
        phase.finish();
        (st, bits)
    }

    /// Runs `shots` and gathers classical-bit counts, dispatching to
    /// the engine the [`Engine`] policy selects for this circuit.
    /// Unsupported circuits yield a [`SimError`], never a panic.
    pub fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        self.engine_for(sc)?.run_counts(sc, shots, seed)
    }

    /// Averages the quantum expectation values of the given Pauli
    /// strings over `shots`, dispatching like [`Self::run_counts`].
    pub fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        self.engine_for(sc)?.expect_paulis(sc, paulis, shots, seed)
    }

    /// Runs `shots` trajectories on the dense statevector engine.
    /// Callers (the [`crate::StatevectorEngine`] trait impl) validate
    /// arity and the qubit cap first.
    pub(crate) fn run_counts_dense(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        let plan = self.plan(sc)?;
        self.run_counts_dense_plan(&plan, shots, seed, None)
    }

    /// [`Self::run_counts_dense`] over a prebuilt plan — the entry the
    /// compiled-artifact layer uses so cached plans skip replanning.
    /// `cancel` is polled at shot-chunk boundaries.
    pub(crate) fn run_counts_dense_plan(
        &self,
        plan: &ExecutionPlan,
        shots: usize,
        seed: u64,
        cancel: Option<&crate::cancel::CancelToken>,
    ) -> Result<RunResult, SimError> {
        debug_assert!(plan.sc.num_qubits <= crate::engine::DENSE_MAX_QUBITS);
        let nbits = plan.sc.num_clbits;
        let parts = map_shots(
            shots,
            seed,
            cancel,
            std::collections::BTreeMap::<u64, usize>::new,
            |rng, counts| {
                let (_, bits) = self.trajectory(plan, rng);
                *counts.entry(pack_bits(&bits, nbits)).or_insert(0) += 1;
            },
        )?;
        Ok(time_engine_phase("reduction", || {
            RunResult::from_parts(shots, nbits, parts)
        }))
    }

    /// Dense-engine Pauli expectations (no sampling noise beyond the
    /// stochastic noise processes themselves).
    pub(crate) fn expect_paulis_dense(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        let plan = self.plan(sc)?;
        self.expect_paulis_dense_plan(&plan, paulis, shots, seed, None)
    }

    /// [`Self::expect_paulis_dense`] over a prebuilt plan. `cancel` is
    /// polled at shot-chunk boundaries.
    pub(crate) fn expect_paulis_dense_plan(
        &self,
        plan: &ExecutionPlan,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
        cancel: Option<&crate::cancel::CancelToken>,
    ) -> Result<Vec<f64>, SimError> {
        debug_assert!(plan.sc.num_qubits <= crate::engine::DENSE_MAX_QUBITS);
        let parts = map_shots(
            shots,
            seed,
            cancel,
            || vec![0.0; paulis.len()],
            |rng, acc| {
                let (st, _) = self.trajectory(plan, rng);
                for (i, p) in paulis.iter().enumerate() {
                    acc[i] += st.expect_pauli(p);
                }
            },
        )?;
        Ok(time_engine_phase("reduction", || {
            let mut out = vec![0.0; paulis.len()];
            for part in parts {
                for (o, p) in out.iter_mut().zip(part.iter()) {
                    *o += p;
                }
            }
            for o in &mut out {
                *o /= shots as f64;
            }
            out
        }))
    }

    /// Convenience: single Pauli expectation.
    pub fn expect_pauli(
        &self,
        sc: &ScheduledCircuit,
        pauli: &PauliString,
        shots: usize,
        seed: u64,
    ) -> Result<f64, SimError> {
        Ok(self.expect_paulis(sc, std::slice::from_ref(pauli), shots, seed)?[0])
    }

    /// Runs a single dense trajectory (deterministic for a given seed)
    /// and returns the final state and classical bits. Test hook;
    /// always uses the statevector engine (a tableau has no `State`).
    pub fn run_single(&self, sc: &ScheduledCircuit, seed: u64) -> (State, Vec<bool>) {
        crate::engine::check_gate_arities(sc).expect("run_single: malformed circuit"); // ca-lint: allow(panic) -- run_single is a fail-loud debug entry; batch paths return Result
        let plan = self.plan(sc).expect("run_single: unplannable circuit"); // ca-lint: allow(panic) -- run_single is a fail-loud debug entry; batch paths return Result
        let mut rng = StdRng::seed_from_u64(seed);
        self.trajectory(&plan, &mut rng)
    }
}

/// Packs classical bits little-endian into a u64 key.
pub fn pack_bits(bits: &[bool], nbits: usize) -> u64 {
    let mut k = 0u64;
    for (i, &b) in bits.iter().take(nbits.min(64)).enumerate() {
        if b {
            k |= 1 << i;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations, PauliString};
    use ca_device::{uniform_device, Topology};

    fn ideal_sim(n: usize) -> Simulator {
        Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal())
    }

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn ideal_bell_counts() {
        let sim = ideal_sim(2);
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let res = sim.run_counts(&sched(&qc), 400, 7).unwrap();
        assert_eq!(res.shots, 400);
        let p00 = res.probability(0b00);
        let p11 = res.probability(0b11);
        assert!((p00 + p11 - 1.0).abs() < 1e-12, "only correlated outcomes");
        assert!((p00 - 0.5).abs() < 0.1);
    }

    #[test]
    fn expectation_mode_is_noiseless_for_ideal() {
        let sim = ideal_sim(1);
        let mut qc = Circuit::new(1, 0);
        qc.h(0);
        let x = sim
            .expect_pauli(&sched(&qc), &PauliString::parse("X").unwrap(), 10, 3)
            .unwrap();
        assert!((x - 1.0).abs() < 1e-10);
    }

    #[test]
    fn conditional_gate_fires_on_one() {
        let sim = ideal_sim(2);
        let mut qc = Circuit::new(2, 2);
        // Prepare |1⟩, measure → bit 0 = 1 → X on qubit 1 → measure 1.
        qc.x(0)
            .measure(0, 0)
            .gate_if(Gate::X, [1], 0, true)
            .measure(1, 1);
        let res = sim.run_counts(&sched(&qc), 50, 5).unwrap();
        assert!((res.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_gate_skipped_on_zero() {
        let sim = ideal_sim(2);
        let mut qc = Circuit::new(2, 2);
        qc.measure(0, 0)
            .gate_if(Gate::X, [1], 0, true)
            .measure(1, 1);
        let res = sim.run_counts(&sched(&qc), 50, 5).unwrap();
        assert!((res.probability(0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_crosstalk_dephases_idle_plus_state() {
        // Two idle coupled qubits in |++⟩ accrue U11; Ramsey contrast
        // on qubit 0 oscillates with θ = 2πν·τ.
        let dev = uniform_device(Topology::line(2), 100.0);
        let sim = Simulator::with_config(dev, NoiseConfig::coherent_only());
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1);
        qc.barrier(Vec::<usize>::new());
        qc.delay(2500.0, 0).delay(2500.0, 1);
        let x = sim
            .expect_pauli(&sched(&qc), &PauliString::parse("XI").unwrap(), 1, 2)
            .unwrap();
        // θ = 2π·100kHz·2.5µs = π/2·... = 1.5708 rad; with the Rz(−θ)
        // local terms, ⟨X⟩ = cos(θ)·cos(θ)... measured against exact:
        let theta = ca_device::phase_rad(100.0, 2500.0);
        // Exact: state (|0⟩+|1⟩)/√2 ⊗ same under U11:
        // ⟨X₀⟩ = cos(θ)·cos(θ_z + ...). Compute numerically instead:
        use crate::statevector::State;
        let mut st = State::zero(2);
        let h = ca_circuit::Gate::H.matrix1().unwrap();
        st.apply_1q(&h, 0);
        st.apply_1q(&h, 1);
        st.apply_rzz(theta, 0, 1);
        st.apply_rz(-theta, 0);
        st.apply_rz(-theta, 1);
        let expect = st.expect_pauli(&PauliString::parse("XI").unwrap());
        assert!((x - expect).abs() < 1e-9, "sim {x} vs exact {expect}");
    }

    #[test]
    fn x2_echo_cancels_single_qubit_z_noise() {
        // Quasi-static detuning alone; an X at the middle of the idle
        // refocuses it exactly.
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].quasistatic_khz = 50.0;
        let cfg = NoiseConfig {
            quasistatic: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        // Without echo: big dephasing.
        let mut bare = Circuit::new(1, 0);
        bare.h(0).delay(4000.0, 0).h(0);
        let z_bare = sim
            .expect_pauli(&sched(&bare), &PauliString::parse("Z").unwrap(), 200, 11)
            .unwrap();
        assert!(z_bare < 0.8, "bare Ramsey dephases: {z_bare}");
        // With echo: X in the middle, phases cancel; end with X to undo.
        let mut echo = Circuit::new(1, 0);
        echo.h(0).delay(2000.0, 0).x(0).delay(2000.0, 0).h(0);
        // After refocusing, state is X·|+⟩-path → H·X·|+⟩… measure Z:
        // H X Rz(0) |+⟩ = H X |+⟩ = H|+⟩ = |0⟩ → ⟨Z⟩ = +1.
        let z_echo = sim
            .expect_pauli(&sched(&echo), &PauliString::parse("Z").unwrap(), 200, 11)
            .unwrap();
        assert!(
            (z_echo - 1.0).abs() < 1e-9,
            "echo refocuses exactly: {z_echo}"
        );
    }

    #[test]
    fn staggered_dd_cancels_zz_but_aligned_does_not() {
        let dev = uniform_device(Topology::line(2), 80.0);
        let sim = Simulator::with_config(dev, NoiseConfig::coherent_only());
        // Zero-width pulses make the DD cancellation algebraically
        // exact; realistic pulse widths are exercised elsewhere.
        let durations = GateDurations {
            one_qubit: 0.0,
            ..GateDurations::default()
        };
        let sched = |qc: &Circuit| schedule_asap(qc, durations);
        let tau = 2000.0;
        // Aligned: X on both qubits at the same midpoint.
        let mut aligned = Circuit::new(2, 0);
        aligned.h(0).h(1);
        aligned.barrier(Vec::<usize>::new());
        aligned.delay(tau, 0).delay(tau, 1);
        aligned.x(0).x(1);
        aligned.delay(tau, 0).delay(tau, 1);
        aligned.x(0).x(1);
        aligned.barrier(Vec::<usize>::new());
        aligned.h(0).h(1);
        // Staggered: qubit 1 echoes at the quarter points instead.
        let mut staggered = Circuit::new(2, 0);
        staggered.h(0).h(1);
        staggered.barrier(Vec::<usize>::new());
        staggered.delay(tau, 0);
        staggered.delay(tau / 2.0, 1).x(1).delay(tau, 1);
        staggered.x(0);
        staggered.delay(tau, 0);
        staggered.x(1).delay(tau / 2.0, 1);
        staggered.x(0);
        staggered.barrier(Vec::<usize>::new());
        staggered.h(0).h(1);
        let z = PauliString::parse("ZI").unwrap();
        let za = sim.expect_pauli(&sched(&aligned), &z, 1, 1).unwrap();
        let zs = sim.expect_pauli(&sched(&staggered), &z, 1, 1).unwrap();
        // Aligned cancels local Z but leaves ZZ: ⟨Z₀⟩ = cos(θ_zz_total).
        let theta = ca_device::phase_rad(80.0, 2.0 * tau);
        assert!((za - theta.cos()).abs() < 1e-9, "aligned leaves ZZ: {za}");
        assert!(
            (zs - 1.0).abs() < 1e-9,
            "staggered cancels everything: {zs}"
        );
    }

    #[test]
    fn t1_decay_statistics() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].t1_us = 50.0;
        dev.calibration.qubits[0].t2_us = 100.0;
        let cfg = NoiseConfig {
            decoherence: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        let mut qc = Circuit::new(1, 1);
        qc.x(0).delay(50_000.0, 0).measure(0, 0);
        let res = sim.run_counts(&sched(&qc), 2000, 13).unwrap();
        let p1 = res.probability(1);
        let expect = (-1.0f64).exp(); // decay over exactly T1.
        assert!((p1 - expect).abs() < 0.05, "p1 {p1} vs {expect}");
    }

    #[test]
    fn readout_error_flips_bits() {
        let mut dev = uniform_device(Topology::line(1), 0.0);
        dev.calibration.qubits[0].readout_err = 0.2;
        let cfg = NoiseConfig {
            readout_error: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        let mut qc = Circuit::new(1, 1);
        qc.measure(0, 0);
        let res = sim.run_counts(&sched(&qc), 3000, 17).unwrap();
        let p1 = res.probability(1);
        assert!((p1 - 0.2).abs() < 0.03, "readout flips ~20%: {p1}");
    }

    #[test]
    fn measurement_neighbor_accrues_conditional_phase() {
        // Fig. 9 physics: measuring q0 while q1 idles next to it makes
        // q1 pick up Rz(±θ) conditioned on the outcome.
        let dev = uniform_device(Topology::line(2), 50.0);
        let sim = Simulator::with_config(dev, NoiseConfig::coherent_only());
        let mut qc = Circuit::new(2, 1);
        qc.x(0); // deterministic outcome 1
        qc.h(1);
        qc.measure(0, 0);
        let sc = sched(&qc);
        let (st, bits) = sim.run_single(&sc, 5);
        assert!(bits[0]);
        // q1's Bloch vector rotated by the accumulated phase; its X
        // expectation is cos of the total accrued angle.
        let x1 = st.expect_pauli(&PauliString::parse("IX").unwrap());
        assert!(x1 < 0.999, "phase accrued during readout window: {x1}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations, PauliString};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn reset_reinitializes_mid_circuit() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(1), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(1, 1);
        qc.x(0).reset(0).measure(0, 0);
        let res = sim.run_counts(&sched(&qc), 50, 3).unwrap();
        assert!((res.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_measurements_of_entangled_pair_agree() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(2), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let res = sim.run_counts(&sched(&qc), 300, 9).unwrap();
        // Never anti-correlated.
        assert_eq!(res.probability(0b01), 0.0);
        assert_eq!(res.probability(0b10), 0.0);
    }

    #[test]
    fn gate_error_statistics_scale_with_rate() {
        let mut dev = uniform_device(Topology::line(2), 0.0);
        let keys: Vec<_> = dev.calibration.edges.keys().copied().collect();
        for k in keys {
            dev.calibration.edges.get_mut(&k).unwrap().gate_err_2q = 0.25;
        }
        let cfg = NoiseConfig {
            gate_error: true,
            ..NoiseConfig::ideal()
        };
        let sim = Simulator::with_config(dev, cfg);
        // Identity-equivalent pair of ECRs; depolarizing error shows up
        // as a drop in the return probability.
        let mut qc = Circuit::new(2, 2);
        qc.ecr(0, 1).ecr(0, 1).measure(0, 0).measure(1, 1);
        let res = sim.run_counts(&sched(&qc), 2000, 5).unwrap();
        let p00 = res.probability(0b00);
        // Two gates at p=0.25: survival ≈ (1−p)² + small returns.
        assert!(p00 < 0.75, "depolarizing must reduce p00: {p00}");
        assert!(p00 > 0.45, "but not destroy it: {p00}");
    }

    #[test]
    fn virtual_rz_between_halves_shifts_ramsey_phase() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(1), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(1, 0);
        qc.h(0).rz(1.234, 0).h(0);
        let z = sim
            .expect_pauli(&sched(&qc), &PauliString::parse("Z").unwrap(), 1, 1)
            .unwrap();
        assert!((z - 1.234f64.cos()).abs() < 1e-10);
    }

    #[test]
    fn barrier_only_circuit_is_identity() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(2), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 0);
        qc.barrier(Vec::<usize>::new());
        let (st, _) = sim.run_single(&sched(&qc), 1);
        assert!((st.amps[0].norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pack_bits_is_little_endian() {
        assert_eq!(pack_bits(&[true, false, true], 3), 0b101);
        assert_eq!(pack_bits(&[false, true], 2), 0b10);
    }
}

//! Per-shot Pauli insertions — the execution hook probabilistic error
//! cancellation is built on.
//!
//! PEC samples, for every shot, a set of Pauli operators from the
//! quasi-probability inverse of a learned noise channel and inserts
//! them at layer boundaries. Naively that means compiling thousands of
//! distinct circuits. In the Pauli-frame picture an inserted Pauli is
//! just an XOR into the shot's frame at the right point of the op
//! stream, so **one** compiled plan serves every sampled instance: the
//! caller describes the insertions as data ([`PauliInsertion`]), the
//! engines apply them frame-side, and — because applying them draws no
//! randomness — the serial stabilizer path and the bit-parallel batch
//! path stay bit-identical for any seed, shot count, and worker count.
//!
//! ## Anchoring semantics
//!
//! An insertion is anchored to a scheduled *item* (an index into
//! `ScheduledCircuit::items`) and applied immediately after that
//! item's unitary — after the item's own depolarizing-error draw, so
//! an insertion can never change the RNG stream. The anchor item must
//! be a unitary gate (not a barrier, delay, measurement, or reset);
//! the inserted Pauli may act on **any** qubit, which is what lets a
//! single per-layer anchor carry the insertions of every partition of
//! that layer, including partitions of idle qubits.
//!
//! Within an inter-layer window this choice is exact, not an
//! approximation: frames ignore signs, so reordering a Pauli insertion
//! past the window's other single-qubit Paulis (DD pulses, twirl
//! gates) or past a stochastic flush changes nothing observable.
//!
//! Two insertions of the same Pauli at the same `(shot, item, qubit)`
//! multiply — i.e. cancel — exactly as the operators would.

use crate::error::SimError;
use ca_circuit::pauli::Pauli;
use ca_circuit::ScheduledCircuit;

/// One Pauli inserted into one shot's frame immediately after a
/// scheduled item's unitary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauliInsertion {
    /// Global shot index the insertion applies to.
    pub shot: usize,
    /// Anchor: index into `ScheduledCircuit::items` of a unitary gate
    /// item; the Pauli is applied right after it.
    pub item: usize,
    /// Qubit the Pauli acts on (need not be an operand of the anchor).
    pub qubit: usize,
    /// The inserted Pauli (`I` is allowed and is a no-op).
    pub pauli: Pauli,
}

/// A validated, item-indexed batch of per-shot Pauli insertions,
/// shared by the serial and bit-parallel frame engines.
#[derive(Clone, Debug, Default)]
pub struct InsertionSet {
    /// `by_item[item]` = insertions anchored there, sorted by shot.
    by_item: Vec<Vec<(usize, usize, Pauli)>>,
    len: usize,
}

impl InsertionSet {
    /// The empty set: every run method treats it as "no insertions".
    pub fn empty() -> Self {
        Self::default()
    }

    /// Validates and indexes `insertions` against the circuit they
    /// will run on. Fails with [`SimError::InvalidInsertion`] when an
    /// anchor is out of range, anchors a non-unitary item, or names a
    /// qubit outside the circuit.
    pub fn build(sc: &ScheduledCircuit, insertions: &[PauliInsertion]) -> Result<Self, SimError> {
        let mut by_item: Vec<Vec<(usize, usize, Pauli)>> = vec![Vec::new(); sc.items.len()];
        for ins in insertions {
            let Some(si) = sc.items.get(ins.item) else {
                return Err(SimError::InvalidInsertion {
                    shot: ins.shot,
                    item: ins.item,
                    reason: "anchor item index out of range",
                });
            };
            // `is_unitary` excludes Barrier, Delay, Measure, Reset —
            // exactly the items the engines' Apply arms never visit.
            if !si.instruction.gate.is_unitary() {
                return Err(SimError::InvalidInsertion {
                    shot: ins.shot,
                    item: ins.item,
                    reason: "anchor item is not a unitary gate",
                });
            }
            if ins.qubit >= sc.num_qubits {
                return Err(SimError::InvalidInsertion {
                    shot: ins.shot,
                    item: ins.item,
                    reason: "inserted qubit outside the circuit",
                });
            }
            by_item[ins.item].push((ins.shot, ins.qubit, ins.pauli));
        }
        for list in &mut by_item {
            list.sort_by_key(|&(shot, qubit, _)| (shot, qubit));
        }
        Ok(Self {
            by_item,
            len: insertions.len(),
        })
    }

    /// Number of insertions in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set carries no insertions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insertions anchored at `item` for shots in `[base, end)`,
    /// sorted by shot. Items beyond the indexed range (possible only
    /// for the empty set) have none.
    pub(crate) fn in_shot_range(
        &self,
        item: usize,
        base: usize,
        end: usize,
    ) -> &[(usize, usize, Pauli)] {
        let Some(list) = self.by_item.get(item) else {
            return &[];
        };
        let lo = list.partition_point(|&(s, _, _)| s < base);
        let hi = list.partition_point(|&(s, _, _)| s < end);
        &list[lo..hi]
    }

    /// Insertions anchored at `item` for exactly `shot`.
    pub(crate) fn for_shot(&self, item: usize, shot: usize) -> &[(usize, usize, Pauli)] {
        self.in_shot_range(item, shot, shot + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, Gate, GateDurations};

    fn sched() -> ScheduledCircuit {
        let mut qc = Circuit::new(2, 1);
        qc.h(0).cx(0, 1).delay(500.0, 0).measure(0, 0);
        schedule_asap(&qc, GateDurations::default())
    }

    fn item_of(sc: &ScheduledCircuit, gate: Gate) -> usize {
        sc.items
            .iter()
            .position(|si| si.instruction.gate == gate)
            .unwrap()
    }

    #[test]
    fn builds_and_indexes_sorted_by_shot() {
        let sc = sched();
        let h = item_of(&sc, Gate::H);
        let ins = [
            PauliInsertion {
                shot: 5,
                item: h,
                qubit: 1,
                pauli: Pauli::X,
            },
            PauliInsertion {
                shot: 2,
                item: h,
                qubit: 0,
                pauli: Pauli::Z,
            },
        ];
        let set = InsertionSet::build(&sc, &ins).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.for_shot(h, 2), &[(2, 0, Pauli::Z)]);
        assert_eq!(set.for_shot(h, 5), &[(5, 1, Pauli::X)]);
        assert_eq!(set.in_shot_range(h, 0, 10).len(), 2);
        assert!(set.for_shot(h, 3).is_empty());
    }

    #[test]
    fn rejects_bad_anchors_and_qubits() {
        let sc = sched();
        let mk = |item, qubit| PauliInsertion {
            shot: 0,
            item,
            qubit,
            pauli: Pauli::Y,
        };
        let err = InsertionSet::build(&sc, &[mk(sc.items.len(), 0)]).unwrap_err();
        assert!(matches!(err, SimError::InvalidInsertion { .. }));
        let measure = item_of(&sc, Gate::Measure);
        let err = InsertionSet::build(&sc, &[mk(measure, 0)]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidInsertion {
                reason: "anchor item is not a unitary gate",
                ..
            }
        ));
        let h = item_of(&sc, Gate::H);
        let err = InsertionSet::build(&sc, &[mk(h, 7)]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidInsertion {
                reason: "inserted qubit outside the circuit",
                ..
            }
        ));
    }

    #[test]
    fn empty_set_serves_any_item() {
        let set = InsertionSet::empty();
        assert!(set.is_empty());
        assert!(set.in_shot_range(99, 0, 1000).is_empty());
    }
}

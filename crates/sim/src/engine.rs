//! The engine abstraction: shot execution behind a trait, with two
//! implementations and an auto-selection policy.
//!
//! * [`StatevectorEngine`] — the dense trajectory executor: exact for
//!   every gate and for coherent context-dependent noise, but
//!   exponential in qubits (hard cap 24).
//! * [`crate::StabilizerEngine`] — CHP tableau + Pauli frames: linear
//!   scaling to hundreds of qubits for Clifford circuits, with
//!   coherent noise mapped to its Pauli twirl at layer boundaries.
//!
//! ## Selection rules (`Engine::Auto`, the default)
//!
//! 1. Non-Clifford circuit, feed-forward, or anything else the
//!    tableau cannot represent → statevector.
//! 2. Clifford circuit on more than [`AUTO_DENSE_MAX_QUBITS`] qubits
//!    → stabilizer (the dense engine would be infeasible).
//! 3. Clifford circuit that the dense engine *can* afford →
//!    statevector, because it treats coherent crosstalk exactly where
//!    the tableau engine applies the twirl approximation. Force
//!    `Engine::Stabilizer` to study the twirled model at small sizes.

use crate::executor::Simulator;
use crate::pauli_frame::{stabilizer_supports, StabilizerEngine};
use crate::result::RunResult;
use ca_circuit::{PauliString, ScheduledCircuit};

/// Hard qubit cap of the dense statevector engine (2ⁿ amplitudes).
pub const DENSE_MAX_QUBITS: usize = 24;

/// Largest qubit count for which `Auto` still prefers the dense
/// engine on Clifford circuits: exactly the dense feasibility cap, so
/// `Auto` only trades exact coherent-noise treatment for the twirl
/// approximation when the dense engine genuinely cannot run.
pub const AUTO_DENSE_MAX_QUBITS: usize = DENSE_MAX_QUBITS;

/// Which engine a [`Simulator`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Pick per circuit: see the module-level selection rules.
    #[default]
    Auto,
    /// Always the dense statevector engine.
    Statevector,
    /// Always the stabilizer/Pauli-frame engine (panics on
    /// non-Clifford circuits).
    Stabilizer,
}

/// Shot execution abstracted over backends.
pub trait SimEngine {
    /// Engine name for logs and reports.
    fn name(&self) -> &'static str;

    /// True when this engine can execute the scheduled circuit.
    fn supports(&self, sc: &ScheduledCircuit) -> bool;

    /// Runs `shots` and gathers classical-bit counts.
    fn run_counts(&self, sc: &ScheduledCircuit, shots: usize, seed: u64) -> RunResult;

    /// Averages quantum Pauli expectations over `shots`.
    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Vec<f64>;

    /// Convenience: a single Pauli expectation.
    fn expect_pauli(
        &self,
        sc: &ScheduledCircuit,
        pauli: &PauliString,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.expect_paulis(sc, std::slice::from_ref(pauli), shots, seed)[0]
    }
}

/// The dense statevector engine, borrowing a simulator configuration.
pub struct StatevectorEngine<'a> {
    /// The owning simulator (device + noise configuration).
    pub sim: &'a Simulator,
}

impl SimEngine for StatevectorEngine<'_> {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn supports(&self, sc: &ScheduledCircuit) -> bool {
        sc.num_qubits <= DENSE_MAX_QUBITS
    }

    fn run_counts(&self, sc: &ScheduledCircuit, shots: usize, seed: u64) -> RunResult {
        self.sim.run_counts_dense(sc, shots, seed)
    }

    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Vec<f64> {
        self.sim.expect_paulis_dense(sc, paulis, shots, seed)
    }
}

impl SimEngine for StabilizerEngine<'_> {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn supports(&self, sc: &ScheduledCircuit) -> bool {
        stabilizer_supports(sc)
    }

    fn run_counts(&self, sc: &ScheduledCircuit, shots: usize, seed: u64) -> RunResult {
        StabilizerEngine::run_counts(self, sc, shots, seed)
    }

    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Vec<f64> {
        StabilizerEngine::expect_paulis(self, sc, paulis, shots, seed)
    }
}

impl Simulator {
    /// Resolves the engine for a circuit according to the simulator's
    /// [`Engine`] setting and the module-level selection rules.
    pub fn engine_for<'a>(&'a self, sc: &ScheduledCircuit) -> Box<dyn SimEngine + 'a> {
        match self.engine {
            Engine::Statevector => Box::new(StatevectorEngine { sim: self }),
            Engine::Stabilizer => Box::new(StabilizerEngine::new(self)),
            Engine::Auto => {
                if stabilizer_supports(sc) && sc.num_qubits > AUTO_DENSE_MAX_QUBITS {
                    Box::new(StabilizerEngine::new(self))
                } else {
                    Box::new(StatevectorEngine { sim: self })
                }
            }
        }
    }

    /// The engine name `Auto` would resolve to for this circuit.
    pub fn engine_name_for(&self, sc: &ScheduledCircuit) -> &'static str {
        self.engine_for(sc).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ca_circuit::ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn auto_prefers_dense_at_small_sizes() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(2), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        assert_eq!(sim.engine_name_for(&sched(&qc)), "statevector");
    }

    #[test]
    fn auto_selects_stabilizer_at_scale() {
        let n = 40;
        let sim =
            Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(n, 0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        assert_eq!(sim.engine_name_for(&sched(&qc)), "stabilizer");
        // A non-Clifford rotation forces dense even at scale.
        qc.rz(0.3, 0);
        assert_eq!(sim.engine_name_for(&sched(&qc)), "statevector");
    }

    #[test]
    fn forced_engines_are_respected() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut sim = Simulator::with_config(dev, NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        sim.engine = Engine::Stabilizer;
        assert_eq!(sim.engine_name_for(&sched(&qc)), "stabilizer");
        sim.engine = Engine::Statevector;
        assert_eq!(sim.engine_name_for(&sched(&qc)), "statevector");
    }

    #[test]
    fn both_engines_agree_on_ideal_bell() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let sim = Simulator::with_config(dev, NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let sc = sched(&qc);
        for engine in [Engine::Statevector, Engine::Stabilizer] {
            let mut s = sim.clone();
            s.engine = engine;
            let res = s.run_counts(&sc, 1000, 7);
            let p00 = res.probability(0b00);
            assert!((p00 + res.probability(0b11) - 1.0).abs() < 1e-12);
            assert!((p00 - 0.5).abs() < 0.08, "{engine:?}: {p00}");
        }
    }
}

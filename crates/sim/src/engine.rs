//! The engine abstraction: shot execution behind a trait, with three
//! implementations and an auto-selection policy. Dispatch is
//! panic-free: every entry point validates the circuit up front and
//! returns a structured [`SimError`] instead of crashing.
//!
//! * [`StatevectorEngine`] — the dense trajectory executor: exact for
//!   every gate and for coherent context-dependent noise, but
//!   exponential in qubits (hard cap 24).
//! * [`crate::StabilizerEngine`] — CHP tableau + serial Pauli frames:
//!   linear scaling for Clifford circuits, one frame per shot. The
//!   reference implementation for the frame model.
//! * [`crate::BatchedFrameEngine`] — the same frame model propagated
//!   64 shots per machine word with bit-identical seeded counts;
//!   the engine the large-scale workloads run on.
//!
//! ## Selection rules (`Engine::Auto`, the default)
//!
//! The frame engines' circuit class is *Clifford + diagonal
//! rotations + classical feed-forward*: Clifford gates conjugate the
//! frames, arbitrary-angle diagonal rotations (`Rz`, `Rzz`, `T`)
//! fold into the coherent phase banks, conditional Pauli gates are
//! exact feed-forward, and conditional diagonal rotations rewrite
//! into bank terms against their measured source qubit (see
//! [`crate::pauli_frame`]). The rules:
//!
//! 1. A circuit outside that class — a non-diagonal non-Clifford
//!    gate (`Rx(θ)`, `T`-free `U`, `Can`), or a conditional wrapping
//!    a non-Pauli non-diagonal gate → statevector, **if** it fits
//!    the dense cap; otherwise no engine supports the circuit and
//!    dispatch returns [`SimError::NoSupportingEngine`] naming both
//!    the cap and the offending gate.
//! 2. A frame-representable circuit (feed-forward included) on more
//!    than [`AUTO_DENSE_MAX_QUBITS`] qubits → the batched frame
//!    engine (the dense engine would be infeasible; the serial frame
//!    engine would leave a ~64× factor on the table). Dynamic
//!    circuits never trigger a dense fallback at scale.
//! 3. A circuit the dense engine *can* afford → statevector, because
//!    it treats coherent crosstalk (and arbitrary-angle rotations)
//!    exactly where the frame engines apply the twirl approximation.
//!    Force `Engine::FrameBatch`/`Engine::Stabilizer` to study the
//!    twirled model at small sizes.

use crate::error::SimError;
use crate::executor::Simulator;
use crate::frame_batch::BatchedFrameEngine;
use crate::pauli_frame::{stabilizer_check, stabilizer_supports, StabilizerEngine};
use crate::result::RunResult;
use ca_circuit::{PauliString, ScheduledCircuit};

/// Hard qubit cap of the dense statevector engine (2ⁿ amplitudes).
pub const DENSE_MAX_QUBITS: usize = 24;

/// Largest qubit count for which `Auto` still prefers the dense
/// engine on Clifford circuits: exactly the dense feasibility cap, so
/// `Auto` only trades exact coherent-noise treatment for the twirl
/// approximation when the dense engine genuinely cannot run.
pub const AUTO_DENSE_MAX_QUBITS: usize = DENSE_MAX_QUBITS;

/// Which engine a [`Simulator`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Pick per circuit: see the module-level selection rules.
    #[default]
    Auto,
    /// Always the dense statevector engine.
    Statevector,
    /// Always the serial stabilizer/Pauli-frame engine (errors on
    /// circuits outside the Clifford + diagonal + feed-forward class).
    Stabilizer,
    /// Always the bit-parallel batched frame engine: 64 shots per
    /// word, bit-identical seeded counts to [`Engine::Stabilizer`]
    /// (errors on circuits outside the Clifford + diagonal +
    /// feed-forward class).
    FrameBatch,
}

/// Validates that every instruction's operand list matches its gate's
/// declared arity. Shared pre-flight for all engines: the simulators'
/// inner loops assume 1- and 2-qubit operand lists and must never see
/// a malformed instruction (constructible in release builds, where
/// the circuit builder's debug assertion is compiled out).
pub fn check_gate_arities(sc: &ScheduledCircuit) -> Result<(), SimError> {
    for si in &sc.items {
        let gate = si.instruction.gate;
        let expected = gate.num_qubits();
        // Barrier is variadic (reports 0); everything else is exact.
        if expected != 0 && si.instruction.qubits.len() != expected {
            return Err(SimError::UnsupportedGateArity {
                gate: gate.name(),
                expected,
                got: si.instruction.qubits.len(),
            });
        }
    }
    Ok(())
}

/// Shot execution abstracted over backends. All execution methods
/// validate the circuit and return [`SimError`] rather than panic.
pub trait SimEngine {
    /// Engine name for logs and reports.
    fn name(&self) -> &'static str;

    /// `Ok` when this engine can execute the scheduled circuit;
    /// otherwise the specific constraint it violates.
    fn validate(&self, sc: &ScheduledCircuit) -> Result<(), SimError>;

    /// True when this engine can execute the scheduled circuit.
    fn supports(&self, sc: &ScheduledCircuit) -> bool {
        self.validate(sc).is_ok()
    }

    /// Runs `shots` and gathers classical-bit counts.
    fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError>;

    /// Averages quantum Pauli expectations over `shots`.
    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError>;

    /// Convenience: a single Pauli expectation.
    fn expect_pauli(
        &self,
        sc: &ScheduledCircuit,
        pauli: &PauliString,
        shots: usize,
        seed: u64,
    ) -> Result<f64, SimError> {
        Ok(self.expect_paulis(sc, std::slice::from_ref(pauli), shots, seed)?[0])
    }
}

/// The dense statevector engine, borrowing a simulator configuration.
pub struct StatevectorEngine<'a> {
    /// The owning simulator (device + noise configuration).
    pub sim: &'a Simulator,
}

impl SimEngine for StatevectorEngine<'_> {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn validate(&self, sc: &ScheduledCircuit) -> Result<(), SimError> {
        check_gate_arities(sc)?;
        if sc.num_qubits > DENSE_MAX_QUBITS {
            return Err(SimError::DenseCapExceeded {
                qubits: sc.num_qubits,
                max: DENSE_MAX_QUBITS,
            });
        }
        Ok(())
    }

    fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        self.validate(sc)?;
        self.sim.run_counts_dense(sc, shots, seed)
    }

    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        self.validate(sc)?;
        self.sim.expect_paulis_dense(sc, paulis, shots, seed)
    }
}

impl SimEngine for StabilizerEngine<'_> {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn validate(&self, sc: &ScheduledCircuit) -> Result<(), SimError> {
        stabilizer_check(sc)
    }

    fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        StabilizerEngine::run_counts(self, sc, shots, seed)
    }

    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        StabilizerEngine::expect_paulis(self, sc, paulis, shots, seed)
    }
}

impl SimEngine for BatchedFrameEngine<'_> {
    fn name(&self) -> &'static str {
        "frame-batch"
    }

    fn validate(&self, sc: &ScheduledCircuit) -> Result<(), SimError> {
        stabilizer_check(sc)
    }

    fn run_counts(
        &self,
        sc: &ScheduledCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<RunResult, SimError> {
        BatchedFrameEngine::run_counts(self, sc, shots, seed)
    }

    fn expect_paulis(
        &self,
        sc: &ScheduledCircuit,
        paulis: &[PauliString],
        shots: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        BatchedFrameEngine::expect_paulis(self, sc, paulis, shots, seed)
    }
}

impl Simulator {
    /// Resolves the engine for a circuit according to the simulator's
    /// [`Engine`] setting and the module-level selection rules.
    ///
    /// Forced engines always resolve (their execution methods report
    /// unsupported circuits); `Auto` detects the no-engine case up
    /// front and returns [`SimError::NoSupportingEngine`] naming both
    /// the dense qubit cap and the Clifford requirement.
    pub fn engine_for<'a>(
        &'a self,
        sc: &ScheduledCircuit,
    ) -> Result<Box<dyn SimEngine + 'a>, SimError> {
        match self.engine {
            Engine::Statevector => Ok(Box::new(StatevectorEngine { sim: self })),
            Engine::Stabilizer => Ok(Box::new(StabilizerEngine::new(self))),
            Engine::FrameBatch => Ok(Box::new(BatchedFrameEngine::new(self))),
            Engine::Auto => {
                check_gate_arities(sc)?;
                let frame_ok = stabilizer_supports(sc);
                if frame_ok && sc.num_qubits > AUTO_DENSE_MAX_QUBITS {
                    Ok(Box::new(BatchedFrameEngine::new(self)))
                } else if sc.num_qubits <= DENSE_MAX_QUBITS {
                    Ok(Box::new(StatevectorEngine { sim: self }))
                } else {
                    let blocking_gate = match stabilizer_check(sc) {
                        Err(SimError::NotClifford { gate })
                        | Err(SimError::UnsupportedConditional { gate }) => gate,
                        Err(SimError::ConditionalClbitOutOfRange { .. }) => "feed-forward",
                        _ => "unknown",
                    };
                    Err(SimError::NoSupportingEngine {
                        qubits: sc.num_qubits,
                        dense_max: DENSE_MAX_QUBITS,
                        blocking_gate,
                    })
                }
            }
        }
    }

    /// The engine name [`Self::engine_for`] resolves to for this
    /// circuit, or the dispatch error.
    pub fn engine_name_for(&self, sc: &ScheduledCircuit) -> Result<&'static str, SimError> {
        Ok(self.engine_for(sc)?.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use ca_circuit::{schedule_asap, Circuit, Gate, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ca_circuit::ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn auto_prefers_dense_at_small_sizes() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(2), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "statevector");
    }

    #[test]
    fn auto_selects_frame_batch_at_scale() {
        let n = 40;
        let sim =
            Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(n, 0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "frame-batch");
    }

    #[test]
    fn auto_reports_no_engine_for_wide_non_clifford() {
        // A non-diagonal non-Clifford rotation above the dense cap:
        // no engine can run it, and the error must name both
        // constraints.
        let n = 40;
        let sim =
            Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(n, 0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.append(Gate::Rx(0.3), [0]);
        let sc = sched(&qc);
        let err = match sim.engine_for(&sc) {
            Err(e) => e,
            Ok(engine) => panic!("expected no-engine error, resolved {}", engine.name()),
        };
        assert_eq!(
            err,
            SimError::NoSupportingEngine {
                qubits: n,
                dense_max: DENSE_MAX_QUBITS,
                blocking_gate: "rx",
            }
        );
        // The sampling APIs surface the same error instead of failing
        // deep inside the dense executor at run time.
        assert_eq!(sim.run_counts(&sc, 10, 1).unwrap_err(), err);
        let z = ca_circuit::PauliString::identity(n);
        assert_eq!(sim.expect_paulis(&sc, &[z], 10, 1).unwrap_err(), err);
    }

    #[test]
    fn auto_runs_feed_forward_on_frames_at_scale() {
        // Clifford + feed-forward above the dense cap must resolve to
        // the batched frame engine — no dense fallback for dynamic
        // circuits (the Fig. 9 workload class at device scale).
        let n = 40;
        let sim =
            Simulator::with_config(uniform_device(Topology::line(n), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(n, 1);
        qc.h(0).cx(0, 1).h(0).measure(0, 0);
        qc.gate_if(Gate::Z, [1], 0, true);
        qc.gate_if(Gate::Rz(0.3), [1], 0, true);
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "frame-batch");
    }

    #[test]
    fn auto_names_the_gate_behind_an_unsupported_conditional() {
        // A conditional wrapping a non-Clifford, non-diagonal gate
        // above the dense cap: structured error naming the gate on
        // every engine, never a silent dense fallback.
        let n = 40;
        let mut qc = Circuit::new(n, 1);
        qc.measure(0, 0).gate_if(Gate::Rx(0.3), [1], 0, true);
        let sc = sched(&qc);
        let dev = uniform_device(Topology::line(n), 0.0);
        let auto = Simulator::with_config(dev.clone(), NoiseConfig::ideal());
        assert_eq!(
            auto.run_counts(&sc, 10, 1).unwrap_err(),
            SimError::NoSupportingEngine {
                qubits: n,
                dense_max: DENSE_MAX_QUBITS,
                blocking_gate: "rx",
            }
        );
        for engine in [Engine::Stabilizer, Engine::FrameBatch] {
            let sim = Simulator::with_engine(dev.clone(), NoiseConfig::ideal(), engine);
            assert_eq!(
                sim.run_counts(&sc, 10, 1).unwrap_err(),
                SimError::UnsupportedConditional { gate: "rx" },
                "{engine:?}"
            );
        }
        // The dense engine itself is only stopped by its qubit cap.
        let wide = Simulator::with_engine(dev, NoiseConfig::ideal(), Engine::Statevector);
        assert_eq!(
            wide.run_counts(&sc, 10, 1).unwrap_err(),
            SimError::DenseCapExceeded {
                qubits: n,
                max: DENSE_MAX_QUBITS,
            }
        );
    }

    #[test]
    fn forced_engines_are_respected() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut sim = Simulator::with_config(dev, NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        sim.engine = Engine::Stabilizer;
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "stabilizer");
        sim.engine = Engine::Statevector;
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "statevector");
        sim.engine = Engine::FrameBatch;
        assert_eq!(sim.engine_name_for(&sched(&qc)).unwrap(), "frame-batch");
    }

    #[test]
    fn all_engines_agree_on_ideal_bell() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let sim = Simulator::with_config(dev, NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let sc = sched(&qc);
        for engine in [Engine::Statevector, Engine::Stabilizer, Engine::FrameBatch] {
            let mut s = sim.clone();
            s.engine = engine;
            let res = s.run_counts(&sc, 1000, 7).unwrap();
            let p00 = res.probability(0b00);
            assert!((p00 + res.probability(0b11) - 1.0).abs() < 1e-12);
            assert!((p00 - 0.5).abs() < 0.08, "{engine:?}: {p00}");
        }
    }

    #[test]
    fn dense_engine_rejects_arity_mismatch() {
        let sim =
            Simulator::with_config(uniform_device(Topology::line(3), 0.0), NoiseConfig::ideal());
        let mut qc = Circuit::new(3, 0);
        qc.push(ca_circuit::Instruction {
            gate: Gate::Cz,
            qubits: vec![0, 1, 2],
            clbit: None,
            condition: None,
            merged: false,
        });
        let sc = sched(&qc);
        let err = sim.run_counts(&sc, 5, 3).unwrap_err();
        assert_eq!(
            err,
            SimError::UnsupportedGateArity {
                gate: "cz",
                expected: 2,
                got: 3
            }
        );
    }
}
